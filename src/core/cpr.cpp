#include "core/cpr.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "chaoskit/chaoskit.h"
#include "core/replay/codec.h"
#include "core/replay/plan.h"
#include "core/runtime.h"
#include "core/supervisor.h"
#include "snapstore/chunk.h"
#include "snapstore/shard.h"

namespace checl::cpr {

namespace {

std::string mem_section_name(std::uint64_t id) {
  return "mem." + std::to_string(id);
}

// Where a checkpoint degrades to when the content-addressed pool is
// persistently unwritable: a flat, self-contained snapshot file next to the
// pool.  The manifest name is flattened into a file name.
std::string degraded_ckpt_path(const CheclRuntime& rt, const std::string& name) {
  std::string flat = name;
  for (char& ch : flat)
    if (ch == '/') ch = '_';
  const std::string& root =
      rt.store_root.empty() ? "/tmp/checl_snapstore" : rt.store_root;
  return root + "/" + flat + ".degraded.ckpt";
}

// Runs one I/O attempt under the runtime's io_retry policy (capped backoff +
// jitter + deadline budget; default = single attempt) and counts the retries
// in the supervisor stats.
template <class Fn>
bool io_run(CheclRuntime& rt, Fn&& attempt) {
  unsigned tries = 0;
  const bool ok = rt.io_retry.run([&] {
    ++tries;
    return attempt();
  });
  if (tries > 1) rt.supervisor().stats_mut().io_retries += tries - 1;
  return ok;
}

// Finds a queue on m's context, creating a scratch one when none exists
// (released by the caller when *scratch comes back true).  0 = no way to
// reach the buffer; the caller skips it, same as the stop-the-world path.
proxy::RemoteHandle queue_for_mem(proxy::Client& c, ObjectDB& db,
                                  const MemObj& m, bool* scratch) {
  *scratch = false;
  for (QueueObj* q : db.all_of<QueueObj>())
    if (q->ctx == m.ctx && q->remote != 0) return q->remote;
  proxy::RemoteHandle qh = 0;
  if (m.ctx != nullptr && !m.ctx->devices.empty() &&
      c.create_queue(m.ctx->remote, m.ctx->devices[0]->remote, 0, qh) ==
          CL_SUCCESS) {
    *scratch = true;
    return qh;
  }
  return 0;
}

bool bitmap_bit(const std::vector<std::uint8_t>& bits, std::uint64_t i) {
  return i / 8 < bits.size() && ((bits[i / 8] >> (i % 8)) & 1) != 0;
}

}  // namespace

// The open live pre-copy session: the manifest being streamed into, the
// phase times accumulated so far (precopy side), and — when live_verify is
// on — the hash of the last streamed content per (mem, chunk) slot, which is
// what the post-residue audit compares device hashes against.
struct Engine::LiveSession {
  std::string path;
  std::unique_ptr<snapstore::ManifestSession> man;
  PhaseTimes pt;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> streamed_hash;
};

Engine::Engine(CheclRuntime& rt) : rt_(rt) {}
Engine::~Engine() = default;

std::uint64_t Engine::now_ns() {
  cl_ulong t = 0;
  if (proxy::Client* c = rt_.client(); c != nullptr) c->sim_get_host_time_ns(t);
  return t;
}

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> Engine::serialize_db() {
  return replay::encode_db(rt_.db());
}

// ---------------------------------------------------------------------------
// checkpoint
// ---------------------------------------------------------------------------

snapstore::StoreIface* Engine::store() {
  const std::string& root =
      rt_.store_root.empty() ? "/tmp/checl_snapstore" : rt_.store_root;
  // Environment wins over NodeConfig so a run can be re-pointed at a sharded
  // fleet without touching code (CHECL_SNAP_SHARDS=0 is "unset", not local).
  unsigned shards = snapstore::snap_shards_from_env();
  if (shards == 0) shards = rt_.node().snap_shards;
  unsigned replicas = rt_.node().snap_replicas;
  if (const char* v = std::getenv("CHECL_SNAP_REPLICAS");
      v != nullptr && *v != '\0')
    replicas = snapstore::snap_replicas_from_env();
  const std::string key = root + "|" + std::to_string(shards) + "|" +
                          std::to_string(shards != 0 ? replicas : 0);
  if (store_ != nullptr && store_->is_open() && store_key_ == key)
    return store_.get();
  if (shards == 0) {
    auto st = std::make_unique<snapstore::Store>();
    if (const snapstore::Status s = st->open(root, rt_.store_options);
        !s.ok()) {
      last_error_ = "cannot open snapstore: " + s.message;
      return nullptr;
    }
    store_ = std::move(st);
  } else {
    auto st = std::make_unique<snapstore::ShardedStore>();
    snapstore::ShardOptions so;
    so.store = rt_.store_options;
    so.replicas = replicas;
    if (const snapstore::Status s = st->open_local(root, shards, so);
        !s.ok()) {
      last_error_ = "cannot open sharded snapstore: " + s.message;
      return nullptr;
    }
    store_ = std::move(st);
  }
  store_key_ = key;
  return store_.get();
}

// The public checkpoint/restart entry points share one contract: last_error_
// is cleared on entry (historically restore_fresh and restart_in_place
// disagreed once respawn_proxy failed mid-way), any failure leaves it
// non-empty, and an armed chaos site tags the message so torture runs can
// assert the culprit is named.
std::uint64_t Engine::chain_seq_now() const {
  const Supervisor* s = rt_.supervisor_if_created();
  return s != nullptr ? s->chain_seq() : 0;
}

cl_int Engine::finish_op(const char* op, cl_int err, std::uint64_t chain0) {
  if (err != CL_SUCCESS && last_error_.empty())
    last_error_ = std::string(op) + " failed: " + replay::cl_error_name(err);
  if (err != CL_SUCCESS) {
    // A recovery ran during this op and the op still failed: carry the full
    // chain ("Timeout on opcode X -> respawn epoch 3 -> ...") to the caller.
    if (const Supervisor* s = rt_.supervisor_if_created();
        s != nullptr && s->chain_seq() != chain0 && !s->last_chain().empty())
      last_error_ += " [recovery: " + s->last_chain() + "]";
    chaoskit::Engine::instance().annotate(last_error_);
  }
  return err;
}

cl_int Engine::checkpoint(const std::string& path, PhaseTimes* times) {
  last_error_.clear();
  const std::uint64_t chain0 = chain_seq_now();
  cl_int err;
  if (rt_.live_checkpoints && rt_.store_checkpoints) {
    // Live pre-copy: stream while the queues execute, then stop the world
    // for the residue only.  A failure in either half aborts the session —
    // provisional chunks reclaimed, a previous checkpoint of this name still
    // restorable — and surfaces as a plain checkpoint error.
    err = do_live_begin(path);
    if (err == CL_SUCCESS) err = do_live_finish(path, times);
  } else {
    err = do_checkpoint(path, times);
  }
  return finish_op("checkpoint", err, chain0);
}

cl_int Engine::live_begin(const std::string& path) {
  last_error_.clear();
  const std::uint64_t chain0 = chain_seq_now();
  return finish_op("live_begin", do_live_begin(path), chain0);
}

cl_int Engine::live_finish(const std::string& path, PhaseTimes* times) {
  last_error_.clear();
  const std::uint64_t chain0 = chain_seq_now();
  return finish_op("live_finish", do_live_finish(path, times), chain0);
}

void Engine::live_abort() {
  if (live_ == nullptr) return;
  if (live_->man != nullptr) live_->man->abort();
  live_.reset();
}

cl_int Engine::restart_in_place(const std::string& path,
                                const std::optional<NodeConfig>& new_node,
                                RestartBreakdown* breakdown) {
  last_error_.clear();
  const std::uint64_t chain0 = chain_seq_now();
  return finish_op("restart_in_place",
                   do_restart_in_place(path, new_node, breakdown), chain0);
}

cl_int Engine::restore_fresh(
    const std::string& path, const std::optional<NodeConfig>& new_node,
    RestartBreakdown* breakdown,
    std::unordered_map<std::uint64_t, Object*>* handle_map) {
  last_error_.clear();
  const std::uint64_t chain0 = chain_seq_now();
  return finish_op("restore_fresh",
                   do_restore_fresh(path, new_node, breakdown, handle_map),
                   chain0);
}

cl_int Engine::do_checkpoint(const std::string& path, PhaseTimes* times) {
  if (rt_.ensure_proxy() != CL_SUCCESS) return CL_DEVICE_NOT_AVAILABLE;
  proxy::Client& c = *rt_.client();
  ObjectDB& db = rt_.db();
  PhaseTimes pt;

  // 1. synchronize: drain any client-side batched calls (they may carry
  // kernel-arg and enqueue state the snapshot must reflect), then complete
  // every enqueued command in every queue
  const std::uint64_t t0 = now_ns();
  c.sync();
  for (QueueObj* q : db.all_of<QueueObj>()) {
    if (q->remote != 0) c.finish(q->remote);
  }
  const std::uint64_t t1 = now_ns();
  pt.sync_ns = t1 - t0;

  // Incremental mode: only buffers dirtied since the previous checkpoint are
  // copied out and written; the snapshot references its base for the rest.
  // The skip decision is a whole-buffer (1-chunk) query against the same
  // server-side chunk dirty maps the live engine scans — the coarsest
  // special case of chunk tracking, not a parallel mechanism.  Store mode
  // subsumes it — every buffer is captured, but unchanged chunks dedup
  // against the pool, so each manifest stays self-contained.
  const bool store_mode = rt_.store_checkpoints;
  const bool incremental = !store_mode && rt_.incremental_checkpoints &&
                           !last_checkpoint_path_.empty() &&
                           last_checkpoint_path_ != path;

  // 2. preprocess: copy all user data in device memory to host memory
  const auto queues = db.all_of<QueueObj>();
  for (MemObj* m : db.all_of<MemObj>()) {
    if (m->remote == 0) continue;
    if (incremental && !mem_is_dirty(c, *m)) continue;
    m->snapshot.resize(m->size);
    // find a queue on this context (or make a scratch one)
    proxy::RemoteHandle qh = 0;
    bool scratch = false;
    for (QueueObj* q : queues) {
      if (q->ctx == m->ctx && q->remote != 0) {
        qh = q->remote;
        break;
      }
    }
    if (qh == 0 && m->ctx != nullptr && !m->ctx->devices.empty()) {
      if (c.create_queue(m->ctx->remote, m->ctx->devices[0]->remote, 0, qh) !=
          CL_SUCCESS)
        continue;
      scratch = true;
    }
    if (qh == 0) continue;
    proxy::RemoteHandle ev = 0;
    c.enqueue_read(qh, m->remote, 0, m->size, m->snapshot.data(), false, ev);
    if (scratch) c.retain_release(proxy::Op::ReleaseCommandQueue, qh);
  }
  const std::uint64_t t2 = now_ns();
  pt.pre_ns = t2 - t1;

  // Individual finish/read errors above are tolerated per-object, but a
  // channel death (e.g. a proxy crash whose recovery failed) means the
  // snapshot no longer reflects device state; writing it would silently
  // checkpoint stale bytes.
  if (!c.alive()) {
    last_error_ = "checkpoint aborted: proxy channel died while capturing "
                  "device state";
    return CL_DEVICE_NOT_AVAILABLE;
  }

  // 3. write: dump "the host memory image" — object DB, buffer copies, and
  // the application's registered regions — through the storage model
  slimcr::Snapshot snap;
  snap.set("checl.db", serialize_db());
  if (incremental) {
    snap.set("checl.base",
             std::vector<std::uint8_t>(last_checkpoint_path_.begin(),
                                       last_checkpoint_path_.end()));
  }
  std::uint64_t data_bytes = 0;
  for (const MemObj* m : db.all_of<MemObj>()) {
    if (m->snapshot.empty()) continue;
    snap.set(mem_section_name(m->id), m->snapshot);
    data_bytes += m->snapshot.size();
  }
  for (const auto& reg : rt_.app_regions()) {
    std::vector<std::uint8_t> data(static_cast<const std::uint8_t*>(reg.ptr),
                                   static_cast<const std::uint8_t*>(reg.ptr) + reg.len);
    data_bytes += data.size();
    snap.set("app." + reg.name, std::move(data));
  }
  pt.logical_bytes = snap.payload_bytes();
  if (store_mode) {
    snapstore::StoreIface* st = store();
    if (st == nullptr) return CL_OUT_OF_RESOURCES;  // last_error_ set
    snapstore::PutResult pr;
    const bool ok = io_run(rt_, [&] {
      pr = st->put(path, snap, rt_.node().storage);
      return pr.status.ok();
    });
    if (ok) {
      c.sim_advance_host_ns(pr.duration_ns);
      pt.write_ns = pr.duration_ns;
      pt.file_bytes = pr.stored_bytes;  // post-dedup, post-compression
    } else if (rt_.io_retry.max_attempts > 1) {
      // Retry-then-degrade: the pool stayed unwritable (ENOSPC/EIO) through
      // every retry, but a flat self-contained snapshot beside it may still
      // land — no dedup, no compression, but the checkpoint survives.
      // Gated on an explicit retry policy so default-configured runs keep
      // fail-fast semantics.
      const slimcr::IoResult io =
          snap.save(degraded_ckpt_path(rt_, path), rt_.node().storage);
      if (!io.ok) {
        last_error_ =
            pr.status.message + " (degraded save also failed: " + io.error + ")";
        return CL_OUT_OF_RESOURCES;
      }
      rt_.supervisor().stats_mut().store_degraded_writes++;
      c.sim_advance_host_ns(io.duration_ns);
      pt.write_ns = io.duration_ns;
      pt.file_bytes = io.bytes;
    } else {
      last_error_ = pr.status.message;
      return CL_OUT_OF_RESOURCES;
    }
  } else {
    slimcr::IoResult io;
    io_run(rt_, [&] {
      io = snap.save(path, rt_.node().storage);
      return io.ok;
    });
    if (!io.ok) {
      last_error_ = io.error;
      return CL_OUT_OF_RESOURCES;
    }
    c.sim_advance_host_ns(io.duration_ns);
    pt.write_ns = io.duration_ns;
    pt.file_bytes = io.bytes;
  }

  // 4. postprocess: delete the host copies to save memory
  for (MemObj* m : db.all_of<MemObj>()) {
    m->snapshot.clear();
    m->snapshot.shrink_to_fit();
  }
  // freeing is nearly free: a fixed cost plus memory-bandwidth-ish per byte
  const std::uint64_t post = 20'000 + data_bytes / 50;
  c.sim_advance_host_ns(post);
  pt.post_ns = post;

  // Everything on the device now matches this checkpoint: reset the
  // server-side dirty maps so the next incremental or live delta starts
  // here.  Cleared only on success — a failed write above returned before
  // this point with the maps (and thus the next attempt's copy set) intact.
  clear_dirty_maps(c);
  last_checkpoint_path_ = path;

  if (times != nullptr) *times = pt;
  return CL_SUCCESS;
}

// ---------------------------------------------------------------------------
// live pre-copy checkpointing
// ---------------------------------------------------------------------------

bool Engine::mem_is_dirty(proxy::Client& c, const MemObj& m) {
  std::uint64_t n = 0;
  std::vector<std::uint8_t> bits;
  if (c.mem_dirty_fetch(m.remote, m.size == 0 ? 1 : m.size, false, n, bits) !=
      CL_SUCCESS)
    return true;  // cannot ask -> never skip silently
  return n == 0 || bitmap_bit(bits, 0);
}

void Engine::clear_dirty_maps(proxy::Client& c) {
  for (MemObj* m : rt_.db().all_of<MemObj>()) {
    if (m->remote == 0) continue;
    std::uint64_t n = 0;
    std::vector<std::uint8_t> bits;
    c.mem_dirty_fetch(m->remote, m->size == 0 ? 1 : m->size, true, n, bits);
  }
}

// Reads the chunks of `m` selected by `bits` (all chunks when nullptr) off
// the device — consecutive dirty chunks coalesce into one transfer — and
// streams them into the open manifest.  Adds the logical bytes moved to
// *streamed_bytes and the simulated storage-write time to *write_ns.
cl_int Engine::stream_mem_chunks(proxy::Client& c, MemObj* m,
                                 const std::vector<std::uint8_t>* bits,
                                 std::uint64_t nchunks,
                                 std::uint64_t* streamed_bytes,
                                 std::uint64_t* write_ns) {
  LiveSession& ls = *live_;
  const std::size_t cb = store_->options().chunk_bytes;
  const auto dirty = [&](std::uint64_t i) {
    return bits == nullptr || bitmap_bit(*bits, i);
  };
  bool scratch = false;
  const proxy::RemoteHandle qh = queue_for_mem(c, rt_.db(), *m, &scratch);
  if (qh == 0) return CL_SUCCESS;  // unreachable buffer: skipped, as before
  cl_int err = CL_SUCCESS;
  std::vector<std::uint8_t> buf;
  const std::string section = mem_section_name(m->id);
  std::vector<std::uint64_t>* hashes = nullptr;
  if (rt_.live_verify) {
    hashes = &ls.streamed_hash[m->id];
    hashes->resize(static_cast<std::size_t>(nchunks), 0);
  }
  for (std::uint64_t i = 0; i < nchunks && err == CL_SUCCESS;) {
    if (!dirty(i)) {
      ++i;
      continue;
    }
    std::uint64_t j = i;
    while (j < nchunks && dirty(j)) ++j;
    const std::size_t off = static_cast<std::size_t>(i) * cb;
    const std::size_t len =
        std::min(m->size, static_cast<std::size_t>(j) * cb) - off;
    buf.resize(len);
    proxy::RemoteHandle ev = 0;
    err = c.enqueue_read(qh, m->remote, off, len, buf.data(), false, ev);
    if (err != CL_SUCCESS) break;
    for (std::uint64_t k = i; k < j; ++k) {
      const std::size_t coff = static_cast<std::size_t>(k - i) * cb;
      const std::size_t clen = std::min(cb, len - coff);
      const auto r = ls.man->put_chunk(section, static_cast<std::size_t>(k),
                                       buf.data() + coff, clen,
                                       rt_.node().storage);
      if (!r.status.ok()) {
        last_error_ = r.status.message;
        err = CL_OUT_OF_RESOURCES;
        break;
      }
      *streamed_bytes += clen;
      *write_ns += r.duration_ns;
      if (hashes != nullptr)
        (*hashes)[static_cast<std::size_t>(k)] =
            snapstore::hash64(buf.data() + coff, clen);
    }
    i = j;
  }
  if (scratch) c.retain_release(proxy::Op::ReleaseCommandQueue, qh);
  return err;
}

cl_int Engine::do_live_begin(const std::string& path) {
  if (!rt_.store_checkpoints) {
    last_error_ = "live checkpointing requires store_checkpoints";
    return CL_INVALID_OPERATION;
  }
  if (live_ != nullptr) {
    last_error_ = "a live checkpoint session is already open (" + live_->path +
                  ")";
    return CL_INVALID_OPERATION;
  }
  if (rt_.ensure_proxy() != CL_SUCCESS) return CL_DEVICE_NOT_AVAILABLE;
  proxy::Client& c = *rt_.client();
  snapstore::StoreIface* st = store();
  if (st == nullptr) return CL_OUT_OF_RESOURCES;  // last_error_ set
  auto man = st->begin(path);
  if (man == nullptr) {
    last_error_ = "cannot open streaming manifest '" + path + "'";
    return CL_OUT_OF_RESOURCES;
  }
  live_ = std::make_unique<LiveSession>();
  live_->path = path;
  live_->man = std::move(man);
  PhaseTimes& pt = live_->pt;
  const std::size_t cb = st->options().chunk_bytes;
  auto& chaos = chaoskit::Engine::instance();
  const auto mems = rt_.db().all_of<MemObj>();
  const auto chunks_of = [&](const MemObj* m) -> std::uint64_t {
    return (m->size + cb - 1) / cb;
  };

  const std::uint64_t t0 = now_ns();
  std::uint64_t stream_write_ns = 0;

  // Round 0: reset the dirty maps, then stream EVERY chunk — clean content
  // dedups against the pool at zero storage cost, and the manifest needs all
  // its slots filled.  The queues keep executing throughout; anything that
  // lands after a map reset re-marks (marks follow the mutation) and is
  // caught by a later round or by the residue phase.
  for (MemObj* m : mems) {
    if (m->remote == 0 || m->size == 0) continue;
    std::uint64_t n = 0;
    std::vector<std::uint8_t> bits;
    c.mem_dirty_fetch(m->remote, cb, true, n, bits);
    const cl_int e =
        stream_mem_chunks(c, m, nullptr, chunks_of(m), &pt.precopy_bytes,
                          &stream_write_ns);
    if (e != CL_SUCCESS) {
      live_abort();
      if (last_error_.empty())
        last_error_ = "live pre-copy streaming failed: " +
                      std::string(replay::cl_error_name(e));
      return e;
    }
  }
  pt.rounds = 1;

  // Rounds 1..: re-stream what got dirtied while we streamed, until the
  // convergence policy says the leftover is better taken inside the pause.
  std::uint64_t prev_dirty = ~0ull;
  for (;;) {
    if (chaos.should_fire(chaoskit::Site::PrecopyRoundCrash)) {
      live_abort();
      last_error_ =
          "live checkpoint aborted: pre-copy round crashed at round boundary";
      return CL_OUT_OF_RESOURCES;
    }
    // Peek (no clear): how much would the next round stream?
    std::uint64_t dirty_bytes = 0;
    for (MemObj* m : mems) {
      if (m->remote == 0 || m->size == 0) continue;
      std::uint64_t n = 0;
      std::vector<std::uint8_t> bits;
      if (c.mem_dirty_fetch(m->remote, cb, false, n, bits) != CL_SUCCESS)
        continue;
      for (std::uint64_t i = 0; i < n; ++i)
        if (bitmap_bit(bits, i))
          dirty_bytes += std::min(cb, m->size - static_cast<std::size_t>(i) * cb);
    }
    if (dirty_bytes <= rt_.live_residue_threshold) break;  // residue converged
    if (pt.rounds >= rt_.live_max_rounds) break;           // round cap
    if (dirty_bytes >= prev_dirty) break;  // no progress: dirty rate >= stream rate
    prev_dirty = dirty_bytes;
    for (MemObj* m : mems) {
      if (m->remote == 0 || m->size == 0) continue;
      std::uint64_t n = 0;
      std::vector<std::uint8_t> bits;
      cl_int e = c.mem_dirty_fetch(m->remote, cb, true, n, bits);
      if (e == CL_SUCCESS)
        e = stream_mem_chunks(c, m, &bits, chunks_of(m), &pt.precopy_bytes,
                              &stream_write_ns);
      if (e != CL_SUCCESS) {
        live_abort();
        if (last_error_.empty())
          last_error_ = "live pre-copy streaming failed: " +
                        std::string(replay::cl_error_name(e));
        return e;
      }
    }
    pt.rounds++;
  }

  if (!c.alive()) {
    live_abort();
    last_error_ =
        "live checkpoint aborted: proxy channel died during pre-copy";
    return CL_DEVICE_NOT_AVAILABLE;
  }
  c.sim_advance_host_ns(stream_write_ns);
  pt.precopy_ns = now_ns() - t0;
  return CL_SUCCESS;
}

cl_int Engine::do_live_finish(const std::string& path, PhaseTimes* times) {
  if (live_ == nullptr || live_->path != path) {
    last_error_ = "no live checkpoint session open for '" + path + "'";
    return CL_INVALID_OPERATION;
  }
  proxy::Client* cp = rt_.client();
  if (cp == nullptr || !cp->alive()) {
    live_abort();
    last_error_ = "live checkpoint aborted: proxy gone before the residue "
                  "phase";
    return CL_DEVICE_NOT_AVAILABLE;
  }
  proxy::Client& c = *cp;
  ObjectDB& db = rt_.db();
  PhaseTimes pt = live_->pt;  // carry the precopy-side numbers
  const std::size_t cb = store_->options().chunk_bytes;
  const auto fail = [&](cl_int e, const std::string& msg) {
    live_abort();
    if (!msg.empty()) last_error_ = msg;
    return e;
  };

  // 1. stop the world: drain batched calls + finish every queue
  const std::uint64_t t0 = now_ns();
  c.sync();
  for (QueueObj* q : db.all_of<QueueObj>())
    if (q->remote != 0) c.finish(q->remote);
  const std::uint64_t t1 = now_ns();
  pt.sync_ns = t1 - t0;

  // 2. residue: with the queues drained the fetch-and-clear below sees every
  // mutation since the last round's clear (marks follow mutations), so the
  // bitmap is exactly what the pause must copy.
  std::uint64_t resid_write_ns = 0;
  for (MemObj* m : db.all_of<MemObj>()) {
    if (m->remote == 0 || m->size == 0) continue;
    std::uint64_t n = 0;
    std::vector<std::uint8_t> bits;
    cl_int e = c.mem_dirty_fetch(m->remote, cb, true, n, bits);
    if (e == CL_SUCCESS)
      e = stream_mem_chunks(c, m, &bits, (m->size + cb - 1) / cb,
                            &pt.residue_bytes, &resid_write_ns);
    if (e != CL_SUCCESS)
      return fail(e, last_error_.empty()
                         ? "live residue streaming failed: " +
                               std::string(replay::cl_error_name(e))
                         : last_error_);
  }
  if (!c.alive())
    return fail(CL_DEVICE_NOT_AVAILABLE,
                "live checkpoint aborted: proxy channel died while capturing "
                "the residue");

  // 3. optional audit: with the world stopped, every manifest slot must now
  // hash-match the device.  A mismatch means the dirty map under-reported a
  // write (e.g. an injected desync) — heal by re-streaming that chunk.
  if (rt_.live_verify) {
    for (MemObj* m : db.all_of<MemObj>()) {
      if (m->remote == 0 || m->size == 0) continue;
      const auto it = live_->streamed_hash.find(m->id);
      if (it == live_->streamed_hash.end()) continue;
      std::vector<std::uint64_t> dev;
      if (c.mem_chunk_hashes(m->remote, cb, dev) != CL_SUCCESS) continue;
      std::vector<std::uint8_t> heal_bits((dev.size() + 7) / 8, 0);
      bool any = false;
      for (std::size_t i = 0; i < dev.size() && i < it->second.size(); ++i) {
        if (dev[i] == it->second[i]) continue;
        heal_bits[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
        any = true;
        pt.healed_chunks++;
      }
      if (!any) continue;
      const cl_int e =
          stream_mem_chunks(c, m, &heal_bits, dev.size(), &pt.residue_bytes,
                            &resid_write_ns);
      if (e != CL_SUCCESS)
        return fail(e, "live_verify self-heal failed: " +
                           std::string(replay::cl_error_name(e)));
    }
  }
  const std::uint64_t t2 = now_ns();
  pt.pre_ns = t2 - t1;

  // 4. metadata + seal: object DB and app regions are tiny and change every
  // time, so they go whole into the pause.
  LiveSession& ls = *live_;
  const std::vector<std::uint8_t> dbb = serialize_db();
  auto sres =
      ls.man->put_section("checl.db", dbb.data(), dbb.size(), rt_.node().storage);
  if (!sres.status.ok()) return fail(CL_OUT_OF_RESOURCES, sres.status.message);
  resid_write_ns += sres.duration_ns;
  for (const auto& reg : rt_.app_regions()) {
    sres = ls.man->put_section("app." + reg.name,
                               static_cast<const std::uint8_t*>(reg.ptr),
                               reg.len, rt_.node().storage);
    if (!sres.status.ok()) return fail(CL_OUT_OF_RESOURCES, sres.status.message);
    resid_write_ns += sres.duration_ns;
  }
  snapstore::PutResult pr;
  const bool sealed = io_run(rt_, [&] {
    pr = ls.man->seal(rt_.node().storage);
    return pr.status.ok();
  });
  if (!sealed) return fail(CL_OUT_OF_RESOURCES, pr.status.message);
  c.sim_advance_host_ns(resid_write_ns + pr.duration_ns);
  const std::uint64_t t3 = now_ns();
  pt.write_ns = t3 - t2;
  pt.file_bytes = pr.stored_bytes;   // whole session, post-dedup
  pt.logical_bytes = pr.raw_bytes;   // whole snapshot as restorable

  // 5. postprocess: only the residue-phase scratch lived inside the pause.
  const std::uint64_t post = 20'000 + pt.residue_bytes / 50;
  c.sim_advance_host_ns(post);
  pt.post_ns = post;

  last_checkpoint_path_ = path;
  live_.reset();  // sealed: the destructor's abort is a no-op
  if (times != nullptr) *times = pt;
  return CL_SUCCESS;
}

std::uint64_t Engine::load_with_base_chain(const std::string& path,
                                           const slimcr::StorageModel& storage,
                                           slimcr::Snapshot& out, bool* ok) {
  *ok = false;
  slimcr::IoResult io;
  io_run(rt_, [&] {
    io = out.load(path, storage);
    return io.ok;
  });
  if (!io.ok) {
    last_error_ = io.error;
    return 0;
  }
  std::uint64_t read_ns = io.duration_ns;

  // which mem sections does the DB still need?
  std::vector<std::uint64_t> missing;
  for (const MemObj* m : rt_.db().all_of<MemObj>()) {
    if (out.get(mem_section_name(m->id)) == nullptr) missing.push_back(m->id);
  }
  std::string base_path;
  if (const auto* base = out.get("checl.base"); base != nullptr)
    base_path.assign(base->begin(), base->end());
  int depth = 0;
  while (!missing.empty() && !base_path.empty() && depth++ < 16) {
    slimcr::Snapshot prev;
    io = prev.load(base_path, storage);
    if (!io.ok) {  // broken chain: say exactly which base is gone
      last_error_ = "incremental base snapshot missing or unreadable: " +
                    base_path + " (" + io.error + ")";
      return 0;
    }
    read_ns += io.duration_ns;
    std::vector<std::uint64_t> still_missing;
    for (const std::uint64_t id : missing) {
      if (const auto* data = prev.get(mem_section_name(id)); data != nullptr)
        out.set(mem_section_name(id), *data);
      else
        still_missing.push_back(id);
    }
    missing = std::move(still_missing);
    base_path.clear();
    if (const auto* next = prev.get("checl.base"); next != nullptr)
      base_path.assign(next->begin(), next->end());
  }
  *ok = true;
  return read_ns;
}

// ---------------------------------------------------------------------------
// restart
// ---------------------------------------------------------------------------

cl_int Engine::run_plan(const replay::RestorePlan& plan,
                        RestartBreakdown* breakdown) {
  replay::ExecOptions opts;
  opts.parallel = rt_.restore_parallel;
  opts.workers = rt_.restore_workers;
  opts.batch = rt_.restore_batch;
  replay::Executor ex(rt_, opts);
  std::string err;
  const cl_int e = ex.run(plan, breakdown, err, restore_counters_);
  if (e != CL_SUCCESS) last_error_ = err;
  // Device contents now equal the restored checkpoint: reset the substrate's
  // dirty maps so the next incremental or live delta starts from here (the
  // executor used to clear a per-object bool for the same reason).
  if (e == CL_SUCCESS)
    if (proxy::Client* c = rt_.client(); c != nullptr) clear_dirty_maps(*c);
  return e;
}

cl_int Engine::do_restart_in_place(const std::string& path,
                                   const std::optional<NodeConfig>& new_node,
                                   RestartBreakdown* breakdown) {
  // remember where the timeline was (if the proxy is still reachable)
  const std::uint64_t resume = rt_.proxy_alive() ? now_ns() : 0;

  // Load everything BEFORE touching the proxy or any registered region, so a
  // bad checkpoint leaves the running process fully intact.
  slimcr::Snapshot snap;
  const NodeConfig& target = new_node.value_or(rt_.node());
  std::uint64_t read_ns = 0;
  if (rt_.store_checkpoints) {
    snapstore::StoreIface* st = store();
    if (st == nullptr) return CL_INVALID_VALUE;  // last_error_ set
    snapstore::GetResult gr;
    const bool got = io_run(rt_, [&] {
      gr = st->get(path, snap, target.storage);
      return gr.status.ok();
    });
    if (got) {
      read_ns = gr.duration_ns;
    } else {
      // The put may have degraded to a flat snapshot beside the pool.
      const slimcr::IoResult io =
          snap.load(degraded_ckpt_path(rt_, path), target.storage);
      if (!io.ok) {
        last_error_ = gr.status.message;
        return CL_INVALID_VALUE;
      }
      read_ns = io.duration_ns;
    }
  } else {
    bool load_ok = false;
    read_ns = load_with_base_chain(path, target.storage, snap, &load_ok);
    if (!load_ok) return CL_INVALID_VALUE;
  }

  // Build + validate the restore plan BEFORE touching the proxy: a bad
  // snapshot or object graph must leave the running process — and its live
  // proxy, if any — fully intact.
  replay::RestorePlan plan;
  if (!plan.build(rt_.db().all(), last_error_)) return CL_INVALID_VALUE;

  const cl_int err = rt_.respawn_proxy(target, resume);
  if (err != CL_SUCCESS) return err;
  if (breakdown != nullptr) {
    breakdown->spawn_ns = target.ipc.spawn_ns;
    breakdown->read_ns = read_ns;
  }
  rt_.client()->sim_advance_host_ns(read_ns);
  last_checkpoint_path_ = path;  // future incrementals chain off this file

  // refill buffer snapshots from the checkpoint file
  for (MemObj* m : rt_.db().all_of<MemObj>()) {
    if (const auto* data = snap.get(mem_section_name(m->id)); data != nullptr)
      m->snapshot = *data;
  }
  // restore registered application regions (BLCR would have done this as part
  // of the memory image)
  for (const auto& reg : rt_.app_regions()) {
    if (const auto* data = snap.get("app." + reg.name);
        data != nullptr && data->size() == reg.len)
      std::memcpy(reg.ptr, data->data(), reg.len);
  }

  const cl_int rerr = run_plan(plan, breakdown);
  // The restore replaced the proxy and rewrote device state behind the
  // supervisor's back; give it a fresh base before the app resumes.
  if (rerr == CL_SUCCESS) rt_.resync_supervision();
  return rerr;
}

cl_int Engine::do_restore_fresh(
    const std::string& path, const std::optional<NodeConfig>& new_node,
    RestartBreakdown* breakdown,
    std::unordered_map<std::uint64_t, Object*>* handle_map) {
  slimcr::Snapshot snap;
  const NodeConfig& target = new_node.value_or(rt_.node());
  std::uint64_t initial_read_ns = 0;
  if (rt_.store_checkpoints) {
    snapstore::StoreIface* st = store();
    if (st == nullptr) return CL_INVALID_VALUE;  // last_error_ set
    snapstore::GetResult gr;
    const bool got = io_run(rt_, [&] {
      gr = st->get(path, snap, target.storage);
      return gr.status.ok();
    });
    if (got) {
      initial_read_ns = gr.duration_ns;
    } else {
      const slimcr::IoResult dio =
          snap.load(degraded_ckpt_path(rt_, path), target.storage);
      if (!dio.ok) {
        last_error_ = gr.status.message;
        return CL_INVALID_VALUE;
      }
      initial_read_ns = dio.duration_ns;
    }
  } else {
    slimcr::IoResult io;
    io_run(rt_, [&] {
      io = snap.load(path, target.storage);
      return io.ok;
    });
    if (!io.ok) {
      last_error_ = io.error;
      return CL_INVALID_VALUE;
    }
    initial_read_ns = io.duration_ns;
  }
  const auto* db_bytes = snap.get("checl.db");
  if (db_bytes == nullptr) {
    last_error_ = "checkpoint has no checl.db section";
    return CL_INVALID_VALUE;
  }

  ObjectDB& db = rt_.db();
  replay::DecodeResult dec = replay::decode_db(*db_bytes, db);
  if (!dec.ok) {
    last_error_ = dec.error;
    return CL_INVALID_VALUE;
  }
  // Any failure past this point must tear the decoded objects down again, so
  // the object database reads exactly as it did before the call.
  const auto fail = [&](cl_int e) {
    replay::destroy_decoded(db, dec.created);
    return e;
  };

  // refill buffer snapshots (sections are named by checkpoint-time id)
  std::vector<std::pair<MemObj*, std::uint64_t>> missing_mem_data;
  for (const auto& [old_id, obj] : dec.map) {
    if (obj->otype != ObjType::Mem) continue;
    auto* m = static_cast<MemObj*>(obj);
    if (const auto* data = snap.get(mem_section_name(old_id)); data != nullptr)
      m->snapshot = *data;
    else
      missing_mem_data.emplace_back(m, old_id);  // incremental: in the base chain
  }

  // incremental checkpoints: pull missing buffer data from the base chain
  std::uint64_t chain_read_ns = 0;
  {
    std::string base_path;
    if (const auto* base = snap.get("checl.base"); base != nullptr)
      base_path.assign(base->begin(), base->end());
    int depth = 0;
    while (!missing_mem_data.empty() && !base_path.empty() && depth++ < 16) {
      slimcr::Snapshot prev;
      const slimcr::IoResult bio = prev.load(base_path, target.storage);
      if (!bio.ok) {
        last_error_ = "incremental base snapshot missing or unreadable: " +
                      base_path + " (" + bio.error + ")";
        return fail(CL_INVALID_VALUE);
      }
      chain_read_ns += bio.duration_ns;
      std::vector<std::pair<MemObj*, std::uint64_t>> still_missing;
      for (auto& [m, old_id] : missing_mem_data) {
        if (const auto* data = prev.get(mem_section_name(old_id)); data != nullptr)
          m->snapshot = *data;
        else
          still_missing.emplace_back(m, old_id);
      }
      missing_mem_data = std::move(still_missing);
      base_path.clear();
      if (const auto* next = prev.get("checl.base"); next != nullptr)
        base_path.assign(next->begin(), next->end());
    }
  }

  // Validate dependencies and schedule waves before spawning anything.
  replay::RestorePlan plan;
  if (!plan.build(dec.created, last_error_)) return fail(CL_INVALID_VALUE);

  const cl_int err = rt_.respawn_proxy(target, 0);
  if (err != CL_SUCCESS) return fail(err);
  if (breakdown != nullptr) {
    breakdown->spawn_ns = target.ipc.spawn_ns;
    breakdown->read_ns = initial_read_ns + chain_read_ns;
  }
  rt_.client()->sim_advance_host_ns(initial_read_ns + chain_read_ns);
  last_checkpoint_path_ = path;

  // restore registered app regions if the caller re-registered them
  for (const auto& reg : rt_.app_regions()) {
    if (const auto* data = snap.get("app." + reg.name);
        data != nullptr && data->size() == reg.len)
      std::memcpy(reg.ptr, data->data(), reg.len);
  }

  const cl_int rerr = run_plan(plan, breakdown);
  if (rerr != CL_SUCCESS) return fail(rerr);  // executor already rolled back remotes
  rt_.resync_supervision();
  if (handle_map != nullptr) *handle_map = std::move(dec.map);
  return CL_SUCCESS;
}

}  // namespace checl::cpr
