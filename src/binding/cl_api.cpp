// cl_api.cpp — the single definition of every `cl*` C symbol.
//
// Each entry point trampolines through the installed DispatchTable.  This file
// plays the role of libOpenCL.so in the paper: applications link against these
// symbols and never know whether the native substrate or the CheCL wrapper
// layer serves them.

#include <atomic>

#include "checl/cl.h"
#include "checl/cl_ext.h"
#include "checl/dispatch.h"

namespace simcl {
// Provided by src/simcl/dispatch.cpp; the default ("native OpenCL") table.
const checl_api::DispatchTable& dispatch_table() noexcept;
}  // namespace simcl

namespace checl_api {
namespace {
std::atomic<const DispatchTable*> g_table{nullptr};
}  // namespace

void set_dispatch(const DispatchTable* table) noexcept {
  g_table.store(table, std::memory_order_release);
}

const DispatchTable& dispatch() noexcept {
  const DispatchTable* t = g_table.load(std::memory_order_acquire);
  return t != nullptr ? *t : simcl::dispatch_table();
}

}  // namespace checl_api

namespace {
const checl_api::DispatchTable& D() noexcept { return checl_api::dispatch(); }
}  // namespace

extern "C" {

cl_int clGetPlatformIDs(cl_uint n, cl_platform_id* p, cl_uint* np) {
  return D().GetPlatformIDs(n, p, np);
}
cl_int clGetPlatformInfo(cl_platform_id p, cl_platform_info pn, size_t sz, void* v, size_t* szr) {
  return D().GetPlatformInfo(p, pn, sz, v, szr);
}
cl_int clGetDeviceIDs(cl_platform_id p, cl_device_type t, cl_uint n, cl_device_id* d, cl_uint* nd) {
  return D().GetDeviceIDs(p, t, n, d, nd);
}
cl_int clGetDeviceInfo(cl_device_id d, cl_device_info pn, size_t sz, void* v, size_t* szr) {
  return D().GetDeviceInfo(d, pn, sz, v, szr);
}

cl_context clCreateContext(const cl_context_properties* props, cl_uint nd,
                           const cl_device_id* devs,
                           void (*notify)(const char*, const void*, size_t, void*),
                           void* user, cl_int* err) {
  return D().CreateContext(props, nd, devs, notify, user, err);
}
cl_int clRetainContext(cl_context c) { return D().RetainContext(c); }
cl_int clReleaseContext(cl_context c) { return D().ReleaseContext(c); }
cl_int clGetContextInfo(cl_context c, cl_context_info pn, size_t sz, void* v, size_t* szr) {
  return D().GetContextInfo(c, pn, sz, v, szr);
}

cl_command_queue clCreateCommandQueue(cl_context c, cl_device_id d,
                                      cl_command_queue_properties props, cl_int* err) {
  return D().CreateCommandQueue(c, d, props, err);
}
cl_int clRetainCommandQueue(cl_command_queue q) { return D().RetainCommandQueue(q); }
cl_int clReleaseCommandQueue(cl_command_queue q) { return D().ReleaseCommandQueue(q); }
cl_int clGetCommandQueueInfo(cl_command_queue q, cl_command_queue_info pn, size_t sz, void* v,
                             size_t* szr) {
  return D().GetCommandQueueInfo(q, pn, sz, v, szr);
}
cl_int clFlush(cl_command_queue q) { return D().Flush(q); }
cl_int clFinish(cl_command_queue q) { return D().Finish(q); }

cl_mem clCreateBuffer(cl_context c, cl_mem_flags f, size_t sz, void* host, cl_int* err) {
  return D().CreateBuffer(c, f, sz, host, err);
}
cl_mem clCreateImage2D(cl_context c, cl_mem_flags f, const cl_image_format* fmt, size_t w,
                       size_t h, size_t pitch, void* host, cl_int* err) {
  return D().CreateImage2D(c, f, fmt, w, h, pitch, host, err);
}
cl_int clRetainMemObject(cl_mem m) { return D().RetainMemObject(m); }
cl_int clReleaseMemObject(cl_mem m) { return D().ReleaseMemObject(m); }
cl_int clGetMemObjectInfo(cl_mem m, cl_mem_info pn, size_t sz, void* v, size_t* szr) {
  return D().GetMemObjectInfo(m, pn, sz, v, szr);
}
cl_int clGetImageInfo(cl_mem m, cl_image_info pn, size_t sz, void* v, size_t* szr) {
  return D().GetImageInfo(m, pn, sz, v, szr);
}

cl_sampler clCreateSampler(cl_context c, cl_bool norm, cl_addressing_mode am, cl_filter_mode fm,
                           cl_int* err) {
  return D().CreateSampler(c, norm, am, fm, err);
}
cl_int clRetainSampler(cl_sampler s) { return D().RetainSampler(s); }
cl_int clReleaseSampler(cl_sampler s) { return D().ReleaseSampler(s); }
cl_int clGetSamplerInfo(cl_sampler s, cl_sampler_info pn, size_t sz, void* v, size_t* szr) {
  return D().GetSamplerInfo(s, pn, sz, v, szr);
}

cl_program clCreateProgramWithSource(cl_context c, cl_uint n, const char** strs,
                                     const size_t* lens, cl_int* err) {
  return D().CreateProgramWithSource(c, n, strs, lens, err);
}
cl_program clCreateProgramWithBinary(cl_context c, cl_uint nd, const cl_device_id* devs,
                                     const size_t* lens, const unsigned char** bins,
                                     cl_int* status, cl_int* err) {
  return D().CreateProgramWithBinary(c, nd, devs, lens, bins, status, err);
}
cl_int clRetainProgram(cl_program p) { return D().RetainProgram(p); }
cl_int clReleaseProgram(cl_program p) { return D().ReleaseProgram(p); }
cl_int clBuildProgram(cl_program p, cl_uint nd, const cl_device_id* devs, const char* opts,
                      void (*notify)(cl_program, void*), void* user) {
  return D().BuildProgram(p, nd, devs, opts, notify, user);
}
cl_int clGetProgramInfo(cl_program p, cl_program_info pn, size_t sz, void* v, size_t* szr) {
  return D().GetProgramInfo(p, pn, sz, v, szr);
}
cl_int clGetProgramBuildInfo(cl_program p, cl_device_id d, cl_program_build_info pn, size_t sz,
                             void* v, size_t* szr) {
  return D().GetProgramBuildInfo(p, d, pn, sz, v, szr);
}

cl_kernel clCreateKernel(cl_program p, const char* name, cl_int* err) {
  return D().CreateKernel(p, name, err);
}
cl_int clCreateKernelsInProgram(cl_program p, cl_uint n, cl_kernel* ks, cl_uint* nk) {
  return D().CreateKernelsInProgram(p, n, ks, nk);
}
cl_int clRetainKernel(cl_kernel k) { return D().RetainKernel(k); }
cl_int clReleaseKernel(cl_kernel k) { return D().ReleaseKernel(k); }
cl_int clSetKernelArg(cl_kernel k, cl_uint idx, size_t sz, const void* v) {
  return D().SetKernelArg(k, idx, sz, v);
}
cl_int clGetKernelInfo(cl_kernel k, cl_kernel_info pn, size_t sz, void* v, size_t* szr) {
  return D().GetKernelInfo(k, pn, sz, v, szr);
}
cl_int clGetKernelWorkGroupInfo(cl_kernel k, cl_device_id d, cl_kernel_work_group_info pn,
                                size_t sz, void* v, size_t* szr) {
  return D().GetKernelWorkGroupInfo(k, d, pn, sz, v, szr);
}

cl_int clWaitForEvents(cl_uint n, const cl_event* evs) { return D().WaitForEvents(n, evs); }
cl_int clGetEventInfo(cl_event e, cl_event_info pn, size_t sz, void* v, size_t* szr) {
  return D().GetEventInfo(e, pn, sz, v, szr);
}
cl_int clRetainEvent(cl_event e) { return D().RetainEvent(e); }
cl_int clReleaseEvent(cl_event e) { return D().ReleaseEvent(e); }
cl_int clGetEventProfilingInfo(cl_event e, cl_profiling_info pn, size_t sz, void* v, size_t* szr) {
  return D().GetEventProfilingInfo(e, pn, sz, v, szr);
}

cl_int clEnqueueReadBuffer(cl_command_queue q, cl_mem b, cl_bool blocking, size_t off, size_t cb,
                           void* ptr, cl_uint nw, const cl_event* wl, cl_event* ev) {
  return D().EnqueueReadBuffer(q, b, blocking, off, cb, ptr, nw, wl, ev);
}
cl_int clEnqueueWriteBuffer(cl_command_queue q, cl_mem b, cl_bool blocking, size_t off, size_t cb,
                            const void* ptr, cl_uint nw, const cl_event* wl, cl_event* ev) {
  return D().EnqueueWriteBuffer(q, b, blocking, off, cb, ptr, nw, wl, ev);
}
cl_int clEnqueueCopyBuffer(cl_command_queue q, cl_mem src, cl_mem dst, size_t soff, size_t doff,
                           size_t cb, cl_uint nw, const cl_event* wl, cl_event* ev) {
  return D().EnqueueCopyBuffer(q, src, dst, soff, doff, cb, nw, wl, ev);
}
cl_int clEnqueueNDRangeKernel(cl_command_queue q, cl_kernel k, cl_uint dim, const size_t* off,
                              const size_t* gsz, const size_t* lsz, cl_uint nw,
                              const cl_event* wl, cl_event* ev) {
  return D().EnqueueNDRangeKernel(q, k, dim, off, gsz, lsz, nw, wl, ev);
}
cl_int clEnqueueTask(cl_command_queue q, cl_kernel k, cl_uint nw, const cl_event* wl,
                     cl_event* ev) {
  return D().EnqueueTask(q, k, nw, wl, ev);
}
cl_int clEnqueueMarker(cl_command_queue q, cl_event* ev) { return D().EnqueueMarker(q, ev); }
cl_int clEnqueueBarrier(cl_command_queue q) { return D().EnqueueBarrier(q); }
cl_int clEnqueueWaitForEvents(cl_command_queue q, cl_uint n, const cl_event* evs) {
  return D().EnqueueWaitForEvents(q, n, evs);
}

cl_int clSimGetHostTimeNS(cl_ulong* t) { return D().SimGetHostTimeNS(t); }
cl_int clSimAdvanceHostNS(cl_ulong dt) { return D().SimAdvanceHostNS(dt); }

}  // extern "C"
