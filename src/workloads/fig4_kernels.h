// fig4_kernels.h — the fig4 workload kernels as a standalone corpus.
//
// Each entry is one __kernel drawn verbatim from the fig4 benchmark suite
// (src/workloads/{sdk_basic,sdk_advanced,parboil,shoc}.cpp), bundled with the
// launch geometry and a declarative argument list so it can be compiled and
// executed directly through clc — no OpenCL API, no simcl device model.  Two
// consumers share this table:
//
//   * tests/vm_diff_test.cpp — runs every kernel under both execution engines
//     (tree-walking interpreter vs bytecode VM) and asserts the output buffers
//     are bit-identical;
//   * bench/kernel_micro.cpp — times the same launches per engine and reports
//     the interp/vm speedup per kernel (the "kill Tr" ablation).
//
// Buffer contents are derived deterministically from the argument index (LCG),
// so every run of every consumer sees the same bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "clc/interp.h"

namespace workloads {

struct Fig4Arg {
  enum class K : std::uint8_t {
    FloatBuf,  // __global float* — `elems` floats in [lo, hi]
    UintBuf,   // __global uint*  — `elems` uints in [0, 100)
    Local,     // __local scratch — `elems` BYTES
    Int,       // by-value int
    Float,     // by-value float
  };
  K k = K::Int;
  std::size_t elems = 0;
  bool out = false;  // written by the kernel: compared by the diff test
  std::int32_t i = 0;
  float f = 0.0f;
  float lo = -1.0f, hi = 1.0f;  // FloatBuf fill range
};

struct Fig4Kernel {
  const char* workload;  // fig4 suite entry this kernel is drawn from
  const char* kernel;    // __kernel function name
  const char* source;
  std::uint32_t dim = 1;
  std::size_t global[3] = {1, 1, 1};
  std::size_t local[3] = {1, 1, 1};
  std::vector<Fig4Arg> args;
};

namespace fig4_detail {

inline Fig4Arg fbuf(std::size_t elems, bool out = false, float lo = -1.0f,
                    float hi = 1.0f) {
  Fig4Arg a;
  a.k = Fig4Arg::K::FloatBuf;
  a.elems = elems;
  a.out = out;
  a.lo = lo;
  a.hi = hi;
  return a;
}
inline Fig4Arg ubuf(std::size_t elems, bool out = false) {
  Fig4Arg a;
  a.k = Fig4Arg::K::UintBuf;
  a.elems = elems;
  a.out = out;
  return a;
}
inline Fig4Arg loc(std::size_t bytes) {
  Fig4Arg a;
  a.k = Fig4Arg::K::Local;
  a.elems = bytes;
  return a;
}
inline Fig4Arg si(std::int32_t v) {
  Fig4Arg a;
  a.k = Fig4Arg::K::Int;
  a.i = v;
  return a;
}
inline Fig4Arg sf(float v) {
  Fig4Arg a;
  a.k = Fig4Arg::K::Float;
  a.f = v;
  return a;
}

}  // namespace fig4_detail

// The corpus.  Problem sizes are scaled down from the workloads so a full
// two-engine sweep stays fast, but every control-flow/feature axis of the
// originals is preserved (barriers, __local tiles, private arrays, user
// functions, uint scans, mad/rsqrt/native_cos builtins).
inline const std::vector<Fig4Kernel>& fig4_kernels() {
  using namespace fig4_detail;
  static const std::vector<Fig4Kernel> kCorpus = [] {
    std::vector<Fig4Kernel> v;

    v.push_back({"oclVectorAdd", "VectorAdd", R"CL(
__kernel void VectorAdd(__global const float* a, __global const float* b,
                        __global float* c, int n) {
  int i = get_global_id(0);
  if (i < n) c[i] = a[i] + b[i];
}
)CL",
                 1,
                 {4096, 1, 1},
                 {64, 1, 1},
                 {fbuf(4096), fbuf(4096), fbuf(4096, true), si(4096)}});

    v.push_back({"oclDotProduct", "DotProduct", R"CL(
__kernel void DotProduct(__global const float4* a, __global const float4* b,
                         __global float* partial, __local float* scratch, int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  float acc = 0.0f;
  if (gid < n) {
    float4 x = a[gid];
    float4 y = b[gid];
    acc = dot(x, y);
  }
  scratch[lid] = acc;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {
    if (lid < s) scratch[lid] += scratch[lid + s];
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lid == 0) partial[get_group_id(0)] = scratch[0];
}
)CL",
                 1,
                 {512, 1, 1},
                 {64, 1, 1},
                 {fbuf(4 * 512), fbuf(4 * 512), fbuf(8, true), loc(64 * 4),
                  si(512)}});

    v.push_back({"oclMatrixMul", "MatrixMul", R"CL(
#define TILE 8
__kernel void MatrixMul(__global const float* A, __global const float* B,
                        __global float* C, int n) {
  __local float As[TILE * TILE];
  __local float Bs[TILE * TILE];
  int tx = get_local_id(0);
  int ty = get_local_id(1);
  int col = get_global_id(0);
  int row = get_global_id(1);
  float acc = 0.0f;
  for (int t = 0; t < n / TILE; t = t + 1) {
    As[ty * TILE + tx] = A[row * n + t * TILE + tx];
    Bs[ty * TILE + tx] = B[(t * TILE + ty) * n + col];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < TILE; k = k + 1)
      acc = mad(As[ty * TILE + k], Bs[k * TILE + tx], acc);
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  C[row * n + col] = acc;
}
)CL",
                 2,
                 {32, 32, 1},
                 {8, 8, 1},
                 {fbuf(32 * 32), fbuf(32 * 32), fbuf(32 * 32, true), si(32)}});

    v.push_back({"oclTranspose", "Transpose", R"CL(
#define TILE 8
__kernel void Transpose(__global const float* in, __global float* out, int n) {
  __local float tile[TILE * (TILE + 1)];
  int x = get_global_id(0);
  int y = get_global_id(1);
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  tile[ly * (TILE + 1) + lx] = in[y * n + x];
  barrier(CLK_LOCAL_MEM_FENCE);
  int ox = get_group_id(1) * TILE + lx;
  int oy = get_group_id(0) * TILE + ly;
  out[oy * n + ox] = tile[lx * (TILE + 1) + ly];
}
)CL",
                 2,
                 {32, 32, 1},
                 {8, 8, 1},
                 {fbuf(32 * 32), fbuf(32 * 32, true), si(32)}});

    v.push_back({"oclReduction", "reduce", R"CL(
__kernel void reduce(__global const float* in, __global float* out,
                     __local float* scratch, int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  scratch[lid] = gid < n ? in[gid] : 0.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {
    if (lid < s) scratch[lid] += scratch[lid + s];
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lid == 0) out[get_group_id(0)] = scratch[0];
}
)CL",
                 1,
                 {2048, 1, 1},
                 {64, 1, 1},
                 {fbuf(2048), fbuf(32, true), loc(64 * 4), si(2048)}});

    v.push_back({"oclBlackScholes", "BlackScholes", R"CL(
float cnd(float d) {
  float A1 = 0.31938153f;
  float A2 = -0.356563782f;
  float A3 = 1.781477937f;
  float A4 = -1.821255978f;
  float A5 = 1.330274429f;
  float RSQRT2PI = 0.39894228040143267794f;
  float K = 1.0f / (1.0f + 0.2316419f * fabs(d));
  float v = RSQRT2PI * exp(-0.5f * d * d) *
            (K * (A1 + K * (A2 + K * (A3 + K * (A4 + K * A5)))));
  if (d > 0.0f) v = 1.0f - v;
  return v;
}

__kernel void BlackScholes(__global float* call, __global float* put,
                           __global const float* S, __global const float* X,
                           __global const float* T, float R, float V, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  float sqrtT = sqrt(T[i]);
  float d1 = (log(S[i] / X[i]) + (R + 0.5f * V * V) * T[i]) / (V * sqrtT);
  float d2 = d1 - V * sqrtT;
  float c1 = cnd(d1);
  float c2 = cnd(d2);
  float expRT = exp(-R * T[i]);
  call[i] = S[i] * c1 - X[i] * expRT * c2;
  put[i] = X[i] * expRT * (1.0f - c2) - S[i] * (1.0f - c1);
}
)CL",
                 1,
                 {2048, 1, 1},
                 {64, 1, 1},
                 {fbuf(2048, true), fbuf(2048, true), fbuf(2048, false, 5, 30),
                  fbuf(2048, false, 1, 100), fbuf(2048, false, 0.25f, 10),
                  sf(0.02f), sf(0.30f), si(2048)}});

    v.push_back({"oclDCT8x8", "DCT8x8", R"CL(
__kernel void DCT8x8(__global const float* in, __global float* out, int blocks) {
  int b = get_global_id(0);
  if (b >= blocks) return;
  float tmp[64];
  float pi = 3.14159265358979f;
  for (int u = 0; u < 8; u = u + 1) {
    for (int x = 0; x < 8; x = x + 1) {
      float acc = 0.0f;
      for (int k = 0; k < 8; k = k + 1)
        acc += in[b * 64 + x * 8 + k] *
               native_cos((2.0f * (float)k + 1.0f) * (float)u * pi / 16.0f);
      float cu = u == 0 ? 0.353553390593f : 0.5f;
      tmp[x * 8 + u] = cu * acc;
    }
  }
  for (int v = 0; v < 8; v = v + 1) {
    for (int u = 0; u < 8; u = u + 1) {
      float acc = 0.0f;
      for (int k = 0; k < 8; k = k + 1)
        acc += tmp[k * 8 + u] *
               native_cos((2.0f * (float)k + 1.0f) * (float)v * pi / 16.0f);
      float cv = v == 0 ? 0.353553390593f : 0.5f;
      out[b * 64 + v * 8 + u] = cv * acc;
    }
  }
}
)CL",
                 1,
                 {32, 1, 1},
                 {8, 1, 1},
                 {fbuf(32 * 64), fbuf(32 * 64, true), si(32)}});

    v.push_back({"oclScanLargeGPU", "scanBlock", R"CL(
#define BLOCK 128
__kernel void scanBlock(__global const uint* in, __global uint* out,
                        __global uint* sums, __local uint* temp, int n) {
  int lid = get_local_id(0);
  int gid = get_global_id(0);
  temp[lid] = gid < n ? in[gid] : 0u;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int off = 1; off < BLOCK; off <<= 1) {
    uint add = 0u;
    if (lid >= off) add = temp[lid - off];
    barrier(CLK_LOCAL_MEM_FENCE);
    temp[lid] += add;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (gid < n) out[gid] = temp[lid];
  if (lid == BLOCK - 1) sums[get_group_id(0)] = temp[lid];
}
)CL",
                 1,
                 {1024, 1, 1},
                 {128, 1, 1},
                 {ubuf(1024), ubuf(1024, true), ubuf(8, true), loc(128 * 4),
                  si(1024)}});

    v.push_back({"cp_default", "cenergy", R"CL(
__kernel void cenergy(__global const float* atoms, __global float* grid,
                      int dim, int natoms) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= dim || y >= dim) return;
  float fx = (float)x;
  float fy = (float)y;
  float energy = 0.0f;
  for (int a = 0; a < natoms; a = a + 1) {
    float dx = atoms[4 * a] - fx;
    float dy = atoms[4 * a + 1] - fy;
    float dz = atoms[4 * a + 2];
    float q = atoms[4 * a + 3];
    energy += q * rsqrt(dx * dx + dy * dy + dz * dz);
  }
  grid[y * dim + x] = energy;
}
)CL",
                 2,
                 {32, 32, 1},
                 {8, 8, 1},
                 {fbuf(4 * 64, false, 1, 30), fbuf(32 * 32, true), si(32),
                  si(64)}});

    v.push_back({"SGEMM", "sgemmNN", R"CL(
__kernel void sgemmNN(__global const float* A, __global const float* B,
                      __global float* C, int n, float alpha, float beta) {
  int row = get_global_id(0);
  if (row >= n) return;
  for (int col = 0; col < n; col = col + 1) {
    float acc = 0.0f;
    for (int k = 0; k < n; k = k + 1)
      acc = mad(A[row * n + k], B[k * n + col], acc);
    C[row * n + col] = alpha * acc + beta * C[row * n + col];
  }
}
)CL",
                 1,
                 {48, 1, 1},
                 {8, 1, 1},
                 {fbuf(48 * 48), fbuf(48 * 48), fbuf(48 * 48, true), si(48),
                  sf(1.5f), sf(0.5f)}});

    v.push_back({"Stencil2D", "stencil9", R"CL(
__kernel void stencil9(__global const float* in, __global float* out, int dim) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= dim || y >= dim) return;
  if (x == 0 || y == 0 || x == dim - 1 || y == dim - 1) {
    out[y * dim + x] = in[y * dim + x];
    return;
  }
  float c = in[y * dim + x];
  float n = in[(y - 1) * dim + x];
  float s = in[(y + 1) * dim + x];
  float e = in[y * dim + x + 1];
  float w = in[y * dim + x - 1];
  float ne = in[(y - 1) * dim + x + 1];
  float nw = in[(y - 1) * dim + x - 1];
  float se = in[(y + 1) * dim + x + 1];
  float sw = in[(y + 1) * dim + x - 1];
  out[y * dim + x] =
      0.25f * c + 0.125f * (n + s + e + w) + 0.0625f * (ne + nw + se + sw);
}
)CL",
                 2,
                 {64, 64, 1},
                 {8, 8, 1},
                 {fbuf(64 * 64), fbuf(64 * 64, true), si(64)}});

    v.push_back({"Triad", "triad", R"CL(
__kernel void triad(__global float* a, __global const float* b,
                    __global const float* c, float s, int n) {
  int i = get_global_id(0);
  if (i < n) a[i] = b[i] + s * c[i];
}
)CL",
                 1,
                 {4096, 1, 1},
                 {64, 1, 1},
                 {fbuf(4096, true), fbuf(4096), fbuf(4096), sf(1.75f),
                  si(4096)}});

    v.push_back({"MD", "ljForce", R"CL(
__kernel void ljForce(__global const float* pos, __global float* force,
                      float cutoff2, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  float xi = pos[3 * i];
  float yi = pos[3 * i + 1];
  float zi = pos[3 * i + 2];
  float fx = 0.0f;
  float fy = 0.0f;
  float fz = 0.0f;
  for (int j = 0; j < n; j = j + 1) {
    if (j == i) continue;
    float dx = pos[3 * j] - xi;
    float dy = pos[3 * j + 1] - yi;
    float dz = pos[3 * j + 2] - zi;
    float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 < cutoff2 && r2 > 1e-6f) {
      float inv2 = 1.0f / r2;
      float inv6 = inv2 * inv2 * inv2;
      float f = inv2 * inv6 * (inv6 - 0.5f);
      fx = mad(f, dx, fx);
      fy = mad(f, dy, fy);
      fz = mad(f, dz, fz);
    }
  }
  force[3 * i] = fx;
  force[3 * i + 1] = fy;
  force[3 * i + 2] = fz;
}
)CL",
                 1,
                 {128, 1, 1},
                 {32, 1, 1},
                 {fbuf(3 * 128, false, 0, 10), fbuf(3 * 128, true), sf(16.0f),
                  si(128)}});

    return v;
  }();
  return kCorpus;
}

// Materialized launch state: KernelArgs plus the owned buffer storage they
// point into.  The GlobalPtr args alias `buffers`, so instances must not be
// copied (moving is fine: the inner buffers' heap storage is stable).  For a
// second pristine run, call make_fig4_launch() again — the fill is
// deterministic, so two launches of the same kernel start bit-identical.
struct Fig4Launch {
  std::vector<std::vector<std::uint8_t>> buffers;  // index-aligned with args
  std::vector<clc::KernelArg> args;
  clc::NDRange nd;
};

// Deterministic fill + arg materialization.  Buffer `a` of kernel `k` always
// holds the same bytes, whoever calls this.
inline Fig4Launch make_fig4_launch(const Fig4Kernel& k) {
  Fig4Launch L;
  L.nd.dim = k.dim;
  for (int d = 0; d < 3; ++d) {
    L.nd.global[d] = k.global[d];
    L.nd.local[d] = k.local[d];
  }
  L.buffers.resize(k.args.size());
  std::uint32_t lcg = 0x9E3779B9u;
  for (std::size_t ai = 0; ai < k.args.size(); ++ai) {
    const Fig4Arg& spec = k.args[ai];
    clc::KernelArg a;
    switch (spec.k) {
      case Fig4Arg::K::FloatBuf: {
        std::vector<float> vals(spec.elems);
        for (float& f : vals) {
          lcg = lcg * 1664525u + 1013904223u;
          const float unit =
              static_cast<float>((lcg >> 8) & 0xFFFFu) / 65536.0f;
          f = spec.lo + (spec.hi - spec.lo) * unit;
        }
        L.buffers[ai].resize(vals.size() * sizeof(float));
        std::memcpy(L.buffers[ai].data(), vals.data(), L.buffers[ai].size());
        a.k = clc::KernelArg::K::GlobalPtr;
        a.ptr = L.buffers[ai].data();
        break;
      }
      case Fig4Arg::K::UintBuf: {
        std::vector<std::uint32_t> vals(spec.elems);
        for (std::uint32_t& u : vals) {
          lcg = lcg * 1664525u + 1013904223u;
          u = lcg % 100u;
        }
        L.buffers[ai].resize(vals.size() * sizeof(std::uint32_t));
        std::memcpy(L.buffers[ai].data(), vals.data(), L.buffers[ai].size());
        a.k = clc::KernelArg::K::GlobalPtr;
        a.ptr = L.buffers[ai].data();
        break;
      }
      case Fig4Arg::K::Local:
        a.k = clc::KernelArg::K::LocalAlloc;
        a.local_bytes = spec.elems;
        break;
      case Fig4Arg::K::Int:
        a.k = clc::KernelArg::K::Bytes;
        a.bytes.resize(sizeof(std::int32_t));
        std::memcpy(a.bytes.data(), &spec.i, sizeof(std::int32_t));
        break;
      case Fig4Arg::K::Float:
        a.k = clc::KernelArg::K::Bytes;
        a.bytes.resize(sizeof(float));
        std::memcpy(a.bytes.data(), &spec.f, sizeof(float));
        break;
    }
    L.args.push_back(std::move(a));
  }
  return L;
}

}  // namespace workloads
