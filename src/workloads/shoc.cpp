// shoc.cpp — SHOC 0.9.1-style workloads (serial versions, as in Figure 4).
#include <algorithm>
#include <vector>

#include "workloads/base.h"
#include "workloads/factories.h"

namespace workloads {

namespace {

// ---------------------------------------------------------------------------
// BusSpeedDownload / BusSpeedReadback — one-directional transfers, no kernel
// ---------------------------------------------------------------------------

class BusSpeed final : public Base {
 public:
  explicit BusSpeed(bool download) : download_(download) {}
  std::string name() const override {
    return download_ ? "BusSpeedDownload" : "BusSpeedReadback";
  }
  bool executes_kernel() const override { return false; }

  cl_int setup(Env& env) override {
    bytes_ = (8u << 20) / env.shrink;
    host_.assign(bytes_, 0x3C);
    dev_ = make_buffer(env, CL_MEM_READ_WRITE, bytes_);
    return status();
  }

  cl_int run(Env& env) override {
    for (int i = 0; i < 8; ++i) {
      if (download_)
        write(env, dev_, host_.data(), bytes_);
      else
        read(env, dev_, host_.data(), bytes_);
    }
    return finish(env);
  }

  bool verify(Env&) override { return status() == CL_SUCCESS; }

 private:
  bool download_;
  std::size_t bytes_ = 0;
  std::vector<std::uint8_t> host_;
  cl_mem dev_ = nullptr;
};

// ---------------------------------------------------------------------------
// MaxFlops — mad chains; the long-running kernel that dominates the Figure 5
// synchronization phase
// ---------------------------------------------------------------------------

class MaxFlops final : public Base {
 public:
  std::string name() const override { return "MaxFlops"; }

  cl_int setup(Env& env) override {
    n_ = 8192 / env.shrink;
    static const char* kSrc = R"CL(
__kernel void maxflops(__global float* d, int iters) {
  int i = get_global_id(0);
  float a = d[i];
  float b = 0.9999f;
  for (int it = 0; it < iters; it = it + 1) {
    a = mad(a, b, 0.01f);
    a = mad(a, b, 0.01f);
    a = mad(a, b, 0.01f);
    a = mad(a, b, 0.01f);
  }
  d[i] = a;
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "maxflops");
    in_.assign(n_, 1.0f);
    dd_ = make_buffer(env, CL_MEM_READ_WRITE, n_ * 4);
    iters_ = 256;
    return status();
  }

  cl_int run(Env& env) override {
    write(env, dd_, in_.data(), n_ * 4);
    set_args(k_, dd_, static_cast<cl_int>(iters_));
    launch1d(env, k_, n_, 64);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> out(n_);
    read(env, dd_, out.data(), n_ * 4);
    float a = 1.0f;
    for (std::size_t it = 0; it < iters_; ++it)
      for (int u = 0; u < 4; ++u) a = a * 0.9999f + 0.01f;
    for (const float v : out)
      if (!close(v, a, 1e-3f)) return false;
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0, iters_ = 0;
  std::vector<float> in_;
  cl_mem dd_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// QueueDelay — many tiny kernel launches; API-call-rate bound (big CheCL
// overhead ratio in Figure 4)
// ---------------------------------------------------------------------------

class QueueDelay final : public Base {
 public:
  std::string name() const override { return "QueueDelay"; }

  cl_int setup(Env& env) override {
    static const char* kSrc = R"CL(
__kernel void noopish(__global int* d) {
  int i = get_global_id(0);
  d[i] = d[i] + 1;
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "noopish");
    launches_ = 200 / env.shrink + 8;
    dd_ = make_buffer(env, CL_MEM_READ_WRITE, 64 * 4);
    return status();
  }

  cl_int run(Env& env) override {
    const std::vector<std::int32_t> zeros(64, 0);
    write(env, dd_, zeros.data(), 64 * 4);
    set_args(k_, dd_);
    for (std::size_t i = 0; i < launches_; ++i) launch1d(env, k_, 64, 64);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<std::int32_t> out(64);
    read(env, dd_, out.data(), 64 * 4);
    for (const std::int32_t v : out)
      if (v != static_cast<std::int32_t>(launches_)) return false;
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t launches_ = 0;
  cl_mem dd_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// SHOC Reduction / Scan / Sort — suite variants of the classic primitives
// ---------------------------------------------------------------------------

class ReductionShoc final : public Base {
 public:
  std::string name() const override { return "Reduction"; }

  cl_int setup(Env& env) override {
    n_ = (1 << 17) / env.shrink;
    in_.resize(n_);
    Rng rng(41);
    for (auto& v : in_) v = rng.next_float(0, 1);
    static const char* kSrc = R"CL(
__kernel void reduceAdd(__global const float* in, __global float* out,
                        __local float* sdata, int n) {
  int lid = get_local_id(0);
  int i = get_group_id(0) * get_local_size(0) * 2 + lid;
  float sum = 0.0f;
  if (i < n) sum = in[i];
  if (i + get_local_size(0) < n) sum += in[i + get_local_size(0)];
  sdata[lid] = sum;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {
    if (lid < s) sdata[lid] += sdata[lid + s];
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lid == 0) out[get_group_id(0)] = sdata[0];
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "reduceAdd");
    din_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * 4);
    groups_ = n_ / 256;
    dout_ = make_buffer(env, CL_MEM_WRITE_ONLY, groups_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, din_, in_.data(), n_ * 4);
    set_args(k_, din_, dout_, Local{128 * 4}, static_cast<cl_int>(n_));
    launch1d(env, k_, n_ / 2, 128);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> out(groups_);
    read(env, dout_, out.data(), groups_ * 4);
    double got = 0;
    for (const float v : out) got += v;
    double want = 0;
    for (const float v : in_) want += v;
    return std::fabs(got - want) < 1e-2 * (1 + want) && status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0, groups_ = 0;
  std::vector<float> in_;
  cl_mem din_ = nullptr, dout_ = nullptr;
  cl_kernel k_ = nullptr;
};

class SortShoc final : public Base {
 public:
  std::string name() const override { return "Sort"; }

  cl_int setup(Env& env) override {
    n_ = 8192 / (env.shrink > 4 ? 4 : env.shrink);
    in_.resize(n_);
    Rng rng(42);
    for (auto& v : in_) v = rng.next_u32();
    static const char* kSrc = R"CL(
__kernel void bitonic(__global uint* data, int j, int k, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  int ixj = i ^ j;
  if (ixj > i) {
    uint a = data[i];
    uint b = data[ixj];
    int up = (i & k) == 0;
    if ((up && a > b) || (!up && a < b)) {
      data[i] = b;
      data[ixj] = a;
    }
  }
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "bitonic");
    dd_ = make_buffer(env, CL_MEM_READ_WRITE, n_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, dd_, in_.data(), n_ * 4);
    for (std::size_t k = 2; k <= n_; k <<= 1) {
      for (std::size_t j = k >> 1; j > 0; j >>= 1) {
        set_args(k_, dd_, static_cast<cl_int>(j), static_cast<cl_int>(k),
                 static_cast<cl_int>(n_));
        launch1d(env, k_, n_, 128);  // portable work-group size
      }
    }
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<std::uint32_t> out(n_);
    read(env, dd_, out.data(), n_ * 4);
    std::vector<std::uint32_t> want = in_;
    std::sort(want.begin(), want.end());
    return out == want && status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint32_t> in_;
  cl_mem dd_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// SGEMM — C = alpha*A*B + beta*C, row-per-work-item
// ---------------------------------------------------------------------------

class Sgemm final : public Base {
 public:
  std::string name() const override { return "SGEMM"; }

  cl_int setup(Env& env) override {
    n_ = 96 / (env.shrink > 4 ? 4 : env.shrink);
    n_ = n_ / 16 * 16;
    if (n_ == 0) n_ = 16;
    a_.resize(n_ * n_);
    b_.resize(n_ * n_);
    c_.resize(n_ * n_);
    Rng rng(43);
    for (auto& v : a_) v = rng.next_float(-1, 1);
    for (auto& v : b_) v = rng.next_float(-1, 1);
    for (auto& v : c_) v = rng.next_float(-1, 1);
    static const char* kSrc = R"CL(
__kernel void sgemmNN(__global const float* A, __global const float* B,
                      __global float* C, int n, float alpha, float beta) {
  int row = get_global_id(0);
  if (row >= n) return;
  for (int col = 0; col < n; col = col + 1) {
    float acc = 0.0f;
    for (int k = 0; k < n; k = k + 1)
      acc = mad(A[row * n + k], B[k * n + col], acc);
    C[row * n + col] = alpha * acc + beta * C[row * n + col];
  }
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "sgemmNN");
    da_ = make_buffer(env, CL_MEM_READ_ONLY, a_.size() * 4);
    db_ = make_buffer(env, CL_MEM_READ_ONLY, b_.size() * 4);
    dc_ = make_buffer(env, CL_MEM_READ_WRITE, c_.size() * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, da_, a_.data(), a_.size() * 4);
    write(env, db_, b_.data(), b_.size() * 4);
    write(env, dc_, c_.data(), c_.size() * 4);
    set_args(k_, da_, db_, dc_, static_cast<cl_int>(n_), 1.5f, 0.5f);
    launch1d(env, k_, n_, 16);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> got(c_.size());
    read(env, dc_, got.data(), got.size() * 4);
    Rng rng(44);
    for (int probe = 0; probe < 48; ++probe) {
      const std::size_t row = rng.next_u32() % n_;
      const std::size_t col = rng.next_u32() % n_;
      double acc = 0;
      for (std::size_t k = 0; k < n_; ++k)
        acc += static_cast<double>(a_[row * n_ + k]) * b_[k * n_ + col];
      const float want =
          1.5f * static_cast<float>(acc) + 0.5f * c_[row * n_ + col];
      if (!close(got[row * n_ + col], want, 1e-2f)) return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0;
  std::vector<float> a_, b_, c_;
  cl_mem da_ = nullptr, db_ = nullptr, dc_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// Stencil2D — iterated 9-point stencil; call-rate + transfer mix
// ---------------------------------------------------------------------------

class Stencil2D final : public Base {
 public:
  std::string name() const override { return "Stencil2D"; }

  cl_int setup(Env& env) override {
    dim_ = 128 / (env.shrink > 4 ? 4 : env.shrink);
    iters_ = 10;
    in_.resize(dim_ * dim_);
    Rng rng(45);
    for (auto& v : in_) v = rng.next_float(0, 1);
    static const char* kSrc = R"CL(
__kernel void stencil9(__global const float* in, __global float* out, int dim) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= dim || y >= dim) return;
  if (x == 0 || y == 0 || x == dim - 1 || y == dim - 1) {
    out[y * dim + x] = in[y * dim + x];
    return;
  }
  float c = in[y * dim + x];
  float n = in[(y - 1) * dim + x];
  float s = in[(y + 1) * dim + x];
  float e = in[y * dim + x + 1];
  float w = in[y * dim + x - 1];
  float ne = in[(y - 1) * dim + x + 1];
  float nw = in[(y - 1) * dim + x - 1];
  float se = in[(y + 1) * dim + x + 1];
  float sw = in[(y + 1) * dim + x - 1];
  out[y * dim + x] =
      0.25f * c + 0.125f * (n + s + e + w) + 0.0625f * (ne + nw + se + sw);
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "stencil9");
    da_ = make_buffer(env, CL_MEM_READ_WRITE, in_.size() * 4);
    db_ = make_buffer(env, CL_MEM_READ_WRITE, in_.size() * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, da_, in_.data(), in_.size() * 4);
    cl_mem src = da_;
    cl_mem dst = db_;
    for (std::size_t it = 0; it < iters_; ++it) {
      set_args(k_, src, dst, static_cast<cl_int>(dim_));
      launch2d(env, k_, dim_, dim_, 16, 4);
      std::swap(src, dst);
    }
    result_ = src;
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> got(in_.size());
    read(env, result_, got.data(), got.size() * 4);
    std::vector<float> a = in_;
    std::vector<float> b(a.size());
    const auto dim = static_cast<int>(dim_);
    for (std::size_t it = 0; it < iters_; ++it) {
      for (int y = 0; y < dim; ++y)
        for (int x = 0; x < dim; ++x) {
          const std::size_t i =
              static_cast<std::size_t>(y) * dim_ + static_cast<std::size_t>(x);
          if (x == 0 || y == 0 || x == dim - 1 || y == dim - 1) {
            b[i] = a[i];
            continue;
          }
          b[i] = 0.25f * a[i] +
                 0.125f * (a[i - dim_] + a[i + dim_] + a[i + 1] + a[i - 1]) +
                 0.0625f * (a[i - dim_ + 1] + a[i - dim_ - 1] + a[i + dim_ + 1] +
                            a[i + dim_ - 1]);
        }
      std::swap(a, b);
    }
    return close_span(got.data(), a.data(), got.size(), 1e-3f) &&
           status() == CL_SUCCESS;
  }

 private:
  std::size_t dim_ = 0, iters_ = 0;
  std::vector<float> in_;
  cl_mem da_ = nullptr, db_ = nullptr, result_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// Triad — a = b + s*c streaming; transfer-dominant (Figure 4 worst case)
// ---------------------------------------------------------------------------

class Triad final : public Base {
 public:
  std::string name() const override { return "Triad"; }

  cl_int setup(Env& env) override {
    n_ = (1 << 19) / env.shrink;
    b_.resize(n_);
    c_.resize(n_);
    Rng rng(46);
    for (auto& v : b_) v = rng.next_float(0, 1);
    for (auto& v : c_) v = rng.next_float(0, 1);
    static const char* kSrc = R"CL(
__kernel void triad(__global float* a, __global const float* b,
                    __global const float* c, float s, int n) {
  int i = get_global_id(0);
  if (i < n) a[i] = b[i] + s * c[i];
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "triad");
    da_ = make_buffer(env, CL_MEM_WRITE_ONLY, n_ * 4);
    db_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * 4);
    dc_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    // transfer in, one cheap kernel, transfer out — every iteration
    out_.resize(n_);
    for (int rep = 0; rep < 3; ++rep) {
      write(env, db_, b_.data(), n_ * 4);
      write(env, dc_, c_.data(), n_ * 4);
      set_args(k_, da_, db_, dc_, 1.75f, static_cast<cl_int>(n_));
      launch1d(env, k_, n_, 128);
      read(env, da_, out_.data(), n_ * 4);
    }
    return finish(env);
  }

  bool verify(Env&) override {
    for (std::size_t i = 0; i < n_; ++i)
      if (!close(out_[i], b_[i] + 1.75f * c_[i])) return false;
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0;
  std::vector<float> b_, c_, out_;
  cl_mem da_ = nullptr, db_ = nullptr, dc_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// DeviceMemory — device-to-device copies + a strided-access kernel
// ---------------------------------------------------------------------------

class DeviceMemory final : public Base {
 public:
  std::string name() const override { return "DeviceMemory"; }

  cl_int setup(Env& env) override {
    n_ = (1 << 19) / env.shrink;
    in_.resize(n_);
    Rng rng(47);
    for (auto& v : in_) v = rng.next_float(0, 1);
    static const char* kSrc = R"CL(
__kernel void strided(__global const float* in, __global float* out,
                      int stride, int n) {
  int i = get_global_id(0);
  if (i < n) out[i] = in[(i * stride) % n];
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "strided");
    da_ = make_buffer(env, CL_MEM_READ_WRITE, n_ * 4);
    db_ = make_buffer(env, CL_MEM_READ_WRITE, n_ * 4);
    dc_ = make_buffer(env, CL_MEM_READ_WRITE, n_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, da_, in_.data(), n_ * 4);
    note(clEnqueueCopyBuffer(env.queue, da_, db_, 0, 0, n_ * 4, 0, nullptr, nullptr));
    set_args(k_, db_, dc_, 17, static_cast<cl_int>(n_));
    launch1d(env, k_, n_, 128);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> out(n_);
    read(env, dc_, out.data(), n_ * 4);
    for (std::size_t i = 0; i < n_; i += 173)
      if (out[i] != in_[i * 17 % n_]) return false;
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0;
  std::vector<float> in_;
  cl_mem da_ = nullptr, db_ = nullptr, dc_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// FFT — iterative radix-2 Cooley-Tukey on interleaved complex floats
// ---------------------------------------------------------------------------

class Fft final : public Base {
 public:
  std::string name() const override { return "FFT"; }

  cl_int setup(Env& env) override {
    logn_ = env.shrink > 2 ? 8 : 15;
    n_ = std::size_t{1} << logn_;
    in_.resize(2 * n_);
    Rng rng(48);
    for (auto& v : in_) v = rng.next_float(-1, 1);
    static const char* kSrc = R"CL(
__kernel void fftStep(__global const float* in, __global float* out,
                      int halfSize, int n) {
  int i = get_global_id(0);
  if (i >= n / 2) return;
  int blockIdx = i / halfSize;
  int inBlock = i - blockIdx * halfSize;
  int base = blockIdx * halfSize * 2;
  int a = base + inBlock;
  int b = a + halfSize;
  float angle = -3.14159265358979f * (float)inBlock / (float)halfSize;
  float wr = native_cos(angle);
  float wi = native_sin(angle);
  float ar = in[2 * a];
  float ai = in[2 * a + 1];
  float br = in[2 * b];
  float bi = in[2 * b + 1];
  float tr = wr * br - wi * bi;
  float ti = wr * bi + wi * br;
  out[2 * a] = ar + tr;
  out[2 * a + 1] = ai + ti;
  out[2 * b] = ar - tr;
  out[2 * b + 1] = ai - ti;
}
__kernel void bitrev(__global const float* in, __global float* out,
                     int logn, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  uint r = 0u;
  uint v = (uint)i;
  for (int b = 0; b < logn; b = b + 1) {
    r = (r << 1) | (v & 1u);
    v >>= 1;
  }
  out[2 * r] = in[2 * i];
  out[2 * r + 1] = in[2 * i + 1];
}
)CL";
    cl_program p = make_program(env, kSrc);
    kstep_ = make_kernel(p, "fftStep");
    krev_ = make_kernel(p, "bitrev");
    da_ = make_buffer(env, CL_MEM_READ_WRITE, 2 * n_ * 4);
    db_ = make_buffer(env, CL_MEM_READ_WRITE, 2 * n_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, da_, in_.data(), 2 * n_ * 4);
    set_args(krev_, da_, db_, static_cast<cl_int>(logn_), static_cast<cl_int>(n_));
    launch1d(env, krev_, n_, 64);
    cl_mem src = db_;
    cl_mem dst = da_;
    for (std::size_t half = 1; half < n_; half <<= 1) {
      set_args(kstep_, src, dst, static_cast<cl_int>(half), static_cast<cl_int>(n_));
      launch1d(env, kstep_, n_ / 2, 64);
      std::swap(src, dst);
    }
    result_ = src;
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> got(2 * n_);
    read(env, result_, got.data(), got.size() * 4);
    // host DFT spot-check on a few frequencies
    for (const std::size_t k : {std::size_t{0}, std::size_t{1}, n_ / 2, n_ - 1}) {
      double re = 0;
      double im = 0;
      for (std::size_t t = 0; t < n_; ++t) {
        const double ang = -2.0 * 3.14159265358979 *
                           static_cast<double>(k) * static_cast<double>(t) /
                           static_cast<double>(n_);
        const double xr = in_[2 * t];
        const double xi = in_[2 * t + 1];
        re += xr * std::cos(ang) - xi * std::sin(ang);
        im += xr * std::sin(ang) + xi * std::cos(ang);
      }
      if (!close(got[2 * k], static_cast<float>(re), 5e-2f) ||
          !close(got[2 * k + 1], static_cast<float>(im), 5e-2f))
        return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0, logn_ = 0;
  std::vector<float> in_;
  cl_mem da_ = nullptr, db_ = nullptr, result_ = nullptr;
  cl_kernel kstep_ = nullptr, krev_ = nullptr;
};

// ---------------------------------------------------------------------------
// S3D — chemical-kinetics-style workload with 27 separate program objects
// (the Figure 7 recompile-time outlier)
// ---------------------------------------------------------------------------

class S3d final : public Base {
 public:
  std::string name() const override { return "S3D"; }

  cl_int setup(Env& env) override {
    n_ = (1 << 13) / env.shrink;
    in_.resize(n_);
    Rng rng(49);
    for (auto& v : in_) v = rng.next_float(0.5f, 2.0f);
    // 27 small "reaction rate" programs, each its own cl_program (paper:
    // "the recompilation of S3D takes a long time because it uses 27
    // program objects")
    for (int r = 0; r < 27; ++r) {
      std::string src =
          "__kernel void rate" + std::to_string(r) +
          "(__global float* y, float c, int n) {\n"
          "  int i = get_global_id(0);\n"
          "  if (i >= n) return;\n"
          "  float v = y[i];\n"
          "  float k = exp(-c / (v + 0.3f));\n"
          "  y[i] = v + 0.001f * k * (1.0f - v * 0.1f);\n"
          "}\n"
          "// reaction-network stage " + std::to_string(r) + ": padding that\n"
          "// mimics the real S3D kernels' source sizes so compile-time\n"
          "// modeling sees realistic inputs.\n";
      for (int pad = 0; pad < 6; ++pad)
        src += "float helper" + std::to_string(r) + "_" + std::to_string(pad) +
               "(float x) { return mad(x, 1.0001f, 0.0001f); }\n";
      cl_program p = make_program(env, src.c_str());
      kernels27_.push_back(make_kernel(p, ("rate" + std::to_string(r)).c_str()));
    }
    dy_ = make_buffer(env, CL_MEM_READ_WRITE, n_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, dy_, in_.data(), n_ * 4);
    float c = 0.1f;
    for (cl_kernel k : kernels27_) {
      set_args(k, dy_, c, static_cast<cl_int>(n_));
      launch1d(env, k, n_, 64);
      c += 0.05f;
    }
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> got(n_);
    read(env, dy_, got.data(), n_ * 4);
    std::vector<float> y = in_;
    float c = 0.1f;
    for (int r = 0; r < 27; ++r) {
      for (auto& v : y) {
        const float k = std::exp(-c / (v + 0.3f));
        v = v + 0.001f * k * (1.0f - v * 0.1f);
      }
      c += 0.05f;
    }
    return close_span(got.data(), y.data(), n_, 1e-2f) && status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0;
  std::vector<float> in_;
  std::vector<cl_kernel> kernels27_;
  cl_mem dy_ = nullptr;
};

// ---------------------------------------------------------------------------
// MD — Lennard-Jones neighbours force kernel (also drives Figure 6 via MPI)
// ---------------------------------------------------------------------------

class Md final : public Base {
 public:
  std::string name() const override { return "MD"; }

  cl_int setup(Env& env) override {
    n_ = std::max<std::size_t>(32, 1024 / env.shrink);
    pos_.resize(3 * n_);
    Rng rng(50);
    for (auto& v : pos_) v = rng.next_float(0, 10);
    static const char* kSrc = R"CL(
__kernel void ljForce(__global const float* pos, __global float* force,
                      float cutoff2, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  float xi = pos[3 * i];
  float yi = pos[3 * i + 1];
  float zi = pos[3 * i + 2];
  float fx = 0.0f;
  float fy = 0.0f;
  float fz = 0.0f;
  for (int j = 0; j < n; j = j + 1) {
    if (j == i) continue;
    float dx = pos[3 * j] - xi;
    float dy = pos[3 * j + 1] - yi;
    float dz = pos[3 * j + 2] - zi;
    float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 < cutoff2 && r2 > 1e-6f) {
      float inv2 = 1.0f / r2;
      float inv6 = inv2 * inv2 * inv2;
      float f = inv2 * inv6 * (inv6 - 0.5f);
      fx = mad(f, dx, fx);
      fy = mad(f, dy, fy);
      fz = mad(f, dz, fz);
    }
  }
  force[3 * i] = fx;
  force[3 * i + 1] = fy;
  force[3 * i + 2] = fz;
}
)CL";
    // a second kernel integrates velocities/positions — together with the
    // neighbor-list buffer this gives MD the realistic per-particle state
    // footprint that drives the Figure 6 checkpoint sizes
    static const char* kIntegrate = R"CL(
__kernel void integrate(__global float* pos, __global float* vel,
                        __global const float* force, float dt, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  vel[3 * i] = mad(force[3 * i], dt, vel[3 * i]);
  vel[3 * i + 1] = mad(force[3 * i + 1], dt, vel[3 * i + 1]);
  vel[3 * i + 2] = mad(force[3 * i + 2], dt, vel[3 * i + 2]);
  pos[3 * i] = mad(vel[3 * i], dt, pos[3 * i]);
  pos[3 * i + 1] = mad(vel[3 * i + 1], dt, pos[3 * i + 1]);
  pos[3 * i + 2] = mad(vel[3 * i + 2], dt, pos[3 * i + 2]);
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "ljForce");
    cl_program pi = make_program(env, kIntegrate);
    kint_ = make_kernel(pi, "integrate");
    neighbors_.resize(n_ * 32);
    Rng nrng(52);
    for (auto& v : neighbors_) v = nrng.next_u32() % static_cast<std::uint32_t>(n_);
    dpos_ = make_buffer(env, CL_MEM_READ_WRITE, pos_.size() * 4);
    dforce_ = make_buffer(env, CL_MEM_READ_WRITE, pos_.size() * 4);
    dvel_ = make_buffer(env, CL_MEM_READ_WRITE, pos_.size() * 4);
    dneigh_ = make_buffer(env, CL_MEM_READ_ONLY, neighbors_.size() * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, dpos_, pos_.data(), pos_.size() * 4);
    const std::vector<float> zeros(pos_.size(), 0.0f);
    write(env, dvel_, zeros.data(), zeros.size() * 4);
    write(env, dneigh_, neighbors_.data(), neighbors_.size() * 4);
    set_args(k_, dpos_, dforce_, 9.0f, static_cast<cl_int>(n_));
    launch1d(env, k_, (n_ + 63) / 64 * 64, 64);
    // integrate after the force pass (forces stay consistent with pos_)
    set_args(kint_, dpos_, dvel_, dforce_, 0.001f, static_cast<cl_int>(n_));
    launch1d(env, kint_, (n_ + 63) / 64 * 64, 64);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> got(pos_.size());
    read(env, dforce_, got.data(), got.size() * 4);
    Rng rng(51);
    for (int probe = 0; probe < 16; ++probe) {
      const std::size_t i = rng.next_u32() % n_;
      double fx = 0;
      double fy = 0;
      double fz = 0;
      for (std::size_t j = 0; j < n_; ++j) {
        if (j == i) continue;
        const double dx = pos_[3 * j] - pos_[3 * i];
        const double dy = pos_[3 * j + 1] - pos_[3 * i + 1];
        const double dz = pos_[3 * j + 2] - pos_[3 * i + 2];
        const double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 < 9.0 && r2 > 1e-6) {
          const double inv2 = 1.0 / r2;
          const double inv6 = inv2 * inv2 * inv2;
          const double f = inv2 * inv6 * (inv6 - 0.5);
          fx += f * dx;
          fy += f * dy;
          fz += f * dz;
        }
      }
      if (!close(got[3 * i], static_cast<float>(fx), 5e-2f) ||
          !close(got[3 * i + 1], static_cast<float>(fy), 5e-2f) ||
          !close(got[3 * i + 2], static_cast<float>(fz), 5e-2f))
        return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0;
  std::vector<float> pos_;
  std::vector<std::uint32_t> neighbors_;
  cl_mem dpos_ = nullptr, dforce_ = nullptr, dvel_ = nullptr, dneigh_ = nullptr;
  cl_kernel k_ = nullptr, kint_ = nullptr;
};

}  // namespace

std::unique_ptr<Workload> make_bus_speed_download() {
  return std::make_unique<BusSpeed>(true);
}
std::unique_ptr<Workload> make_bus_speed_readback() {
  return std::make_unique<BusSpeed>(false);
}
std::unique_ptr<Workload> make_maxflops() { return std::make_unique<MaxFlops>(); }
std::unique_ptr<Workload> make_queue_delay() { return std::make_unique<QueueDelay>(); }
std::unique_ptr<Workload> make_reduction_shoc() {
  return std::make_unique<ReductionShoc>();
}
std::unique_ptr<Workload> make_sort_shoc() { return std::make_unique<SortShoc>(); }
std::unique_ptr<Workload> make_sgemm() { return std::make_unique<Sgemm>(); }
std::unique_ptr<Workload> make_stencil2d() { return std::make_unique<Stencil2D>(); }
std::unique_ptr<Workload> make_triad() { return std::make_unique<Triad>(); }
std::unique_ptr<Workload> make_device_memory() {
  return std::make_unique<DeviceMemory>();
}
std::unique_ptr<Workload> make_fft() { return std::make_unique<Fft>(); }
std::unique_ptr<Workload> make_s3d() { return std::make_unique<S3d>(); }
std::unique_ptr<Workload> make_md() { return std::make_unique<Md>(); }

}  // namespace workloads
