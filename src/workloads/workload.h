// workload.h — the benchmark-suite framework.
//
// Each workload is a faithful re-creation of one program from the paper's
// suite (NVIDIA GPU Computing SDK 3.0 samples, SHOC 0.9.1, Parboil ports):
// real OpenCL C kernels submitted through the public cl API, host-side
// verification, deterministic inputs.  The same workload binary runs under
// the native binding and under CheCL — which is the whole point of Figure 4.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "checl/cl.h"

namespace workloads {

// Execution environment prepared by the harness.
struct Env {
  cl_platform_id platform = nullptr;
  cl_device_id device = nullptr;
  cl_context ctx = nullptr;
  cl_command_queue queue = nullptr;
  std::uint64_t device_mem_bytes = 0;  // CL_DEVICE_GLOBAL_MEM_SIZE
  std::size_t max_work_group_size = 0;
  // Problem-size divisor: 1 = bench scale, larger = quicker (tests use 8+).
  unsigned shrink = 1;
};

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  // Workloads that never execute a kernel (pure transfer / compile tests)
  // are excluded from the Figure 5/7/8 experiments, as in the paper.
  [[nodiscard]] virtual bool executes_kernel() const { return true; }

  // Creates all OpenCL state (buffers, programs, kernels).
  virtual cl_int setup(Env& env) = 0;
  // One measured iteration: transfers + kernel launches + clFinish.
  virtual cl_int run(Env& env) = 0;
  // Reads results back and checks them against a host reference.
  virtual bool verify(Env& env) = 0;
  // Releases everything created in setup.
  virtual void teardown(Env& env) = 0;
};

using Factory = std::function<std::unique_ptr<Workload>()>;

struct Entry {
  std::string name;
  Factory make;
};

// The full suite in the paper's figure order.
const std::vector<Entry>& suite();

// nullptr when `name` is unknown.
std::unique_ptr<Workload> create(const std::string& name);

// ---- deterministic host-side RNG (xorshift32) -------------------------------
class Rng {
 public:
  explicit Rng(std::uint32_t seed = 0x1234567u) : s_(seed != 0 ? seed : 1) {}
  std::uint32_t next_u32() noexcept {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 17;
    s_ ^= s_ << 5;
    return s_;
  }
  float next_float(float lo = 0.0f, float hi = 1.0f) noexcept {
    return lo + (hi - lo) *
                    (static_cast<float>(next_u32() & 0xFFFFFF) / 16777216.0f);
  }

 private:
  std::uint32_t s_;
};

}  // namespace workloads
