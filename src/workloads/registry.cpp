// registry.cpp — the suite, in the order of the paper's figures: NVIDIA SDK
// samples, then the Parboil ports, then SHOC (serial versions).
#include "workloads/factories.h"
#include "workloads/workload.h"

namespace workloads {

const std::vector<Entry>& suite() {
  static const std::vector<Entry> kSuite = {
      // NVIDIA GPU Computing SDK 3.0
      {"oclBlackScholes", make_blackscholes},
      {"oclConvolutionSeparable", make_convolution_separable},
      {"oclDXTCompression", make_dxt_compression},
      {"oclDCT8x8", make_dct8x8},
      {"oclDotProduct", make_dot_product},
      {"oclFDTD3d", make_fdtd3d},
      {"oclHistogram", make_histogram},
      {"oclMatVecMul", make_matvecmul},
      {"oclMatrixMul", make_matrixmul},
      {"oclMersenneTwister", make_mersenne_twister},
      {"oclQuasirandomGenerator", make_quasirandom},
      {"oclRadixSort", make_radix_sort},
      {"oclReduction", make_reduction_sdk},
      {"oclSimpleMultiGPU", make_simple_multigpu},
      {"oclSortingNetworks", make_sorting_networks},
      {"oclScanLargeGPU", make_scan_sdk},
      {"oclTranspose", make_transpose},
      {"oclVectorAdd", make_vector_add},
      {"oclBandwidthTest", make_bandwidth_test},
      {"KernelCompile", make_kernel_compile},
      // Parboil ports
      {"cp_default", make_cp_default},
      {"mri-fhd_large", [] { return make_mrifhd(true); }},
      {"mri-fhd_small", [] { return make_mrifhd(false); }},
      {"mri-q_large", [] { return make_mriq(true); }},
      {"mri-q_small", [] { return make_mriq(false); }},
      // SHOC 0.9.1 (serial versions; Spmv omitted, as in the paper)
      {"BusSpeedDownload", make_bus_speed_download},
      {"BusSpeedReadback", make_bus_speed_readback},
      {"DeviceMemory", make_device_memory},
      {"FFT", make_fft},
      {"MaxFlops", make_maxflops},
      {"MD", make_md},
      {"QueueDelay", make_queue_delay},
      {"Reduction", make_reduction_shoc},
      {"S3D", make_s3d},
      {"SGEMM", make_sgemm},
      {"Scan", make_scan_shoc},
      {"Sort", make_sort_shoc},
      {"Stencil2D", make_stencil2d},
      {"Triad", make_triad},
      // repo extra: image2d_t + sampler_t coverage
      {"imageRotate", make_image_rotate},
  };
  return kSuite;
}

std::unique_ptr<Workload> create(const std::string& name) {
  for (const Entry& e : suite())
    if (e.name == name) return e.make();
  return nullptr;
}

}  // namespace workloads
