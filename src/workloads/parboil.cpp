// parboil.cpp — the three CUDA Parboil programs the paper ported to OpenCL:
// cp (Coulomb potential), mri-q and mri-fhd (MRI reconstruction), with the
// _small/_large size variants the figures use.
#include <vector>

#include "workloads/base.h"
#include "workloads/factories.h"

namespace workloads {

namespace {

// ---------------------------------------------------------------------------
// cp — direct Coulomb potential on a 2D grid over point charges
// ---------------------------------------------------------------------------

class Cp final : public Base {
 public:
  std::string name() const override { return "cp_default"; }

  cl_int setup(Env& env) override {
    grid_ = 64 / (env.shrink > 4 ? 4 : env.shrink);
    atoms_ = 128;
    ax_.resize(atoms_ * 4);  // x, y, z, q interleaved
    Rng rng(61);
    for (std::size_t a = 0; a < atoms_; ++a) {
      ax_[4 * a] = rng.next_float(0, static_cast<float>(grid_));
      ax_[4 * a + 1] = rng.next_float(0, static_cast<float>(grid_));
      ax_[4 * a + 2] = rng.next_float(0.5f, 4.0f);
      ax_[4 * a + 3] = rng.next_float(-1, 1);
    }
    static const char* kSrc = R"CL(
__kernel void cenergy(__global const float* atoms, __global float* grid,
                      int dim, int natoms) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= dim || y >= dim) return;
  float fx = (float)x;
  float fy = (float)y;
  float energy = 0.0f;
  for (int a = 0; a < natoms; a = a + 1) {
    float dx = atoms[4 * a] - fx;
    float dy = atoms[4 * a + 1] - fy;
    float dz = atoms[4 * a + 2];
    float q = atoms[4 * a + 3];
    energy += q * rsqrt(dx * dx + dy * dy + dz * dz);
  }
  grid[y * dim + x] = energy;
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "cenergy");
    datoms_ = make_buffer(env, CL_MEM_READ_ONLY, ax_.size() * 4);
    dgrid_ = make_buffer(env, CL_MEM_WRITE_ONLY, grid_ * grid_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, datoms_, ax_.data(), ax_.size() * 4);
    set_args(k_, datoms_, dgrid_, static_cast<cl_int>(grid_),
             static_cast<cl_int>(atoms_));
    launch2d(env, k_, grid_, grid_, 8, 8);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> grid(grid_ * grid_);
    read(env, dgrid_, grid.data(), grid.size() * 4);
    Rng rng(62);
    for (int probe = 0; probe < 24; ++probe) {
      const std::size_t x = rng.next_u32() % grid_;
      const std::size_t y = rng.next_u32() % grid_;
      double want = 0;
      for (std::size_t a = 0; a < atoms_; ++a) {
        const double dx = ax_[4 * a] - static_cast<double>(x);
        const double dy = ax_[4 * a + 1] - static_cast<double>(y);
        const double dz = ax_[4 * a + 2];
        want += ax_[4 * a + 3] / std::sqrt(dx * dx + dy * dy + dz * dz);
      }
      if (!close(grid[y * grid_ + x], static_cast<float>(want), 1e-2f))
        return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t grid_ = 0, atoms_ = 0;
  std::vector<float> ax_;
  cl_mem datoms_ = nullptr, dgrid_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// mri-q — Q matrix computation: Q(x) = sum_k |phi_k| * exp(i 2pi k.x)
// ---------------------------------------------------------------------------

class MriQ final : public Base {
 public:
  explicit MriQ(bool large) : large_(large) {}
  std::string name() const override { return large_ ? "mri-q_large" : "mri-q_small"; }

  cl_int setup(Env& env) override {
    nx_ = (large_ ? 8192 : 4096) / env.shrink;
    nk_ = large_ ? 128 : 64;
    kx_.resize(3 * nk_);
    phi_.resize(nk_);
    x_.resize(3 * nx_);
    Rng rng(63);
    for (auto& v : kx_) v = rng.next_float(-0.5f, 0.5f);
    for (auto& v : phi_) v = rng.next_float(0, 1);
    for (auto& v : x_) v = rng.next_float(-1, 1);
    static const char* kSrc = R"CL(
__kernel void computeQ(__global const float* kspace, __global const float* phi,
                       __global const float* x, __global float* Qr,
                       __global float* Qi, int nk, int nx) {
  int i = get_global_id(0);
  if (i >= nx) return;
  float xr = x[3 * i];
  float xi2 = x[3 * i + 1];
  float xz = x[3 * i + 2];
  float qr = 0.0f;
  float qi = 0.0f;
  for (int k = 0; k < nk; k = k + 1) {
    float expArg = 6.2831853f * (kspace[3 * k] * xr +
                                 kspace[3 * k + 1] * xi2 +
                                 kspace[3 * k + 2] * xz);
    float mag = phi[k] * phi[k];
    qr = mad(mag, native_cos(expArg), qr);
    qi = mad(mag, native_sin(expArg), qi);
  }
  Qr[i] = qr;
  Qi[i] = qi;
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "computeQ");
    dk_ = make_buffer(env, CL_MEM_READ_ONLY, kx_.size() * 4);
    dphi_ = make_buffer(env, CL_MEM_READ_ONLY, phi_.size() * 4);
    dx_ = make_buffer(env, CL_MEM_READ_ONLY, x_.size() * 4);
    dqr_ = make_buffer(env, CL_MEM_WRITE_ONLY, nx_ * 4);
    dqi_ = make_buffer(env, CL_MEM_WRITE_ONLY, nx_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, dk_, kx_.data(), kx_.size() * 4);
    write(env, dphi_, phi_.data(), phi_.size() * 4);
    write(env, dx_, x_.data(), x_.size() * 4);
    set_args(k_, dk_, dphi_, dx_, dqr_, dqi_, static_cast<cl_int>(nk_),
             static_cast<cl_int>(nx_));
    launch1d(env, k_, (nx_ + 63) / 64 * 64, 64);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> qr(nx_);
    read(env, dqr_, qr.data(), nx_ * 4);
    Rng rng(64);
    for (int probe = 0; probe < 16; ++probe) {
      const std::size_t i = rng.next_u32() % nx_;
      double want = 0;
      for (std::size_t k = 0; k < nk_; ++k) {
        const double arg = 6.2831853 * (kx_[3 * k] * x_[3 * i] +
                                        kx_[3 * k + 1] * x_[3 * i + 1] +
                                        kx_[3 * k + 2] * x_[3 * i + 2]);
        want += static_cast<double>(phi_[k]) * phi_[k] * std::cos(arg);
      }
      if (!close(qr[i], static_cast<float>(want), 2e-2f)) return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  bool large_;
  std::size_t nx_ = 0, nk_ = 0;
  std::vector<float> kx_, phi_, x_;
  cl_mem dk_ = nullptr, dphi_ = nullptr, dx_ = nullptr, dqr_ = nullptr,
         dqi_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// mri-fhd — F^H d computation (same access pattern, complex input samples)
// ---------------------------------------------------------------------------

class MriFhd final : public Base {
 public:
  explicit MriFhd(bool large) : large_(large) {}
  std::string name() const override {
    return large_ ? "mri-fhd_large" : "mri-fhd_small";
  }

  cl_int setup(Env& env) override {
    nx_ = (large_ ? 8192 : 4096) / env.shrink;
    nk_ = large_ ? 128 : 64;
    kx_.resize(3 * nk_);
    rd_.resize(nk_);
    id_.resize(nk_);
    x_.resize(3 * nx_);
    Rng rng(65);
    for (auto& v : kx_) v = rng.next_float(-0.5f, 0.5f);
    for (auto& v : rd_) v = rng.next_float(-1, 1);
    for (auto& v : id_) v = rng.next_float(-1, 1);
    for (auto& v : x_) v = rng.next_float(-1, 1);
    static const char* kSrc = R"CL(
__kernel void computeFHd(__global const float* kspace, __global const float* rd,
                         __global const float* id, __global const float* x,
                         __global float* rfhd, __global float* ifhd,
                         int nk, int nx) {
  int i = get_global_id(0);
  if (i >= nx) return;
  float xr = x[3 * i];
  float xy = x[3 * i + 1];
  float xz = x[3 * i + 2];
  float racc = 0.0f;
  float iacc = 0.0f;
  for (int k = 0; k < nk; k = k + 1) {
    float expArg = 6.2831853f * (kspace[3 * k] * xr +
                                 kspace[3 * k + 1] * xy +
                                 kspace[3 * k + 2] * xz);
    float c = native_cos(expArg);
    float s = native_sin(expArg);
    racc += rd[k] * c - id[k] * s;
    iacc += id[k] * c + rd[k] * s;
  }
  rfhd[i] = racc;
  ifhd[i] = iacc;
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "computeFHd");
    dk_ = make_buffer(env, CL_MEM_READ_ONLY, kx_.size() * 4);
    drd_ = make_buffer(env, CL_MEM_READ_ONLY, rd_.size() * 4);
    did_ = make_buffer(env, CL_MEM_READ_ONLY, id_.size() * 4);
    dx_ = make_buffer(env, CL_MEM_READ_ONLY, x_.size() * 4);
    drf_ = make_buffer(env, CL_MEM_WRITE_ONLY, nx_ * 4);
    dif_ = make_buffer(env, CL_MEM_WRITE_ONLY, nx_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, dk_, kx_.data(), kx_.size() * 4);
    write(env, drd_, rd_.data(), rd_.size() * 4);
    write(env, did_, id_.data(), id_.size() * 4);
    write(env, dx_, x_.data(), x_.size() * 4);
    set_args(k_, dk_, drd_, did_, dx_, drf_, dif_, static_cast<cl_int>(nk_),
             static_cast<cl_int>(nx_));
    launch1d(env, k_, (nx_ + 63) / 64 * 64, 64);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> rf(nx_);
    read(env, drf_, rf.data(), nx_ * 4);
    Rng rng(66);
    for (int probe = 0; probe < 16; ++probe) {
      const std::size_t i = rng.next_u32() % nx_;
      double want = 0;
      for (std::size_t k = 0; k < nk_; ++k) {
        const double arg = 6.2831853 * (kx_[3 * k] * x_[3 * i] +
                                        kx_[3 * k + 1] * x_[3 * i + 1] +
                                        kx_[3 * k + 2] * x_[3 * i + 2]);
        want += rd_[k] * std::cos(arg) - id_[k] * std::sin(arg);
      }
      if (!close(rf[i], static_cast<float>(want), 2e-2f)) return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  bool large_;
  std::size_t nx_ = 0, nk_ = 0;
  std::vector<float> kx_, rd_, id_, x_;
  cl_mem dk_ = nullptr, drd_ = nullptr, did_ = nullptr, dx_ = nullptr,
         drf_ = nullptr, dif_ = nullptr;
  cl_kernel k_ = nullptr;
};

}  // namespace

std::unique_ptr<Workload> make_cp_default() { return std::make_unique<Cp>(); }
std::unique_ptr<Workload> make_mriq(bool large) {
  return std::make_unique<MriQ>(large);
}
std::unique_ptr<Workload> make_mrifhd(bool large) {
  return std::make_unique<MriFhd>(large);
}

}  // namespace workloads
