// base.h — shared plumbing for workload implementations: tracked resource
// creation (released in teardown), sticky error status, terse argument
// setting, and approximate-compare helpers for verification.
#pragma once

#include <cmath>
#include <cstring>

#include "workloads/workload.h"

namespace workloads {

// clSetKernelArg sugar: scalars by value, cl_mem/cl_sampler as handles,
// Local{n} as a __local allocation of n bytes.
struct Local {
  std::size_t bytes;
};

class Base : public Workload {
 public:
  void teardown(Env&) override { release_all(); }

 protected:
  [[nodiscard]] cl_int status() const noexcept { return status_; }
  void note(cl_int err) noexcept {
    if (status_ == CL_SUCCESS && err != CL_SUCCESS) status_ = err;
  }

  cl_program make_program(Env& env, const char* src, const char* opts = "") {
    cl_int err = CL_SUCCESS;
    cl_program p = clCreateProgramWithSource(env.ctx, 1, &src, nullptr, &err);
    note(err);
    if (p == nullptr) return nullptr;
    programs_.push_back(p);
    note(clBuildProgram(p, 1, &env.device, opts, nullptr, nullptr));
    return p;
  }

  cl_kernel make_kernel(cl_program p, const char* name) {
    if (p == nullptr) return nullptr;
    cl_int err = CL_SUCCESS;
    cl_kernel k = clCreateKernel(p, name, &err);
    note(err);
    if (k != nullptr) kernels_.push_back(k);
    return k;
  }

  cl_mem make_buffer(Env& env, cl_mem_flags flags, std::size_t size,
                     void* host = nullptr) {
    cl_int err = CL_SUCCESS;
    cl_mem m = clCreateBuffer(env.ctx, flags, size, host, &err);
    note(err);
    if (m != nullptr) mems_.push_back(m);
    return m;
  }

  cl_mem make_image2d(Env& env, cl_mem_flags flags, const cl_image_format& fmt,
                      std::size_t w, std::size_t h, void* host = nullptr) {
    cl_int err = CL_SUCCESS;
    cl_mem m = clCreateImage2D(env.ctx, flags, &fmt, w, h, 0, host, &err);
    note(err);
    if (m != nullptr) mems_.push_back(m);
    return m;
  }

  cl_sampler make_sampler(Env& env, cl_bool norm, cl_addressing_mode am,
                          cl_filter_mode fm) {
    cl_int err = CL_SUCCESS;
    cl_sampler s = clCreateSampler(env.ctx, norm, am, fm, &err);
    note(err);
    if (s != nullptr) samplers_.push_back(s);
    return s;
  }

  // --- argument helpers -----------------------------------------------------
  static cl_int set_one(cl_kernel k, cl_uint i, cl_mem m) {
    return clSetKernelArg(k, i, sizeof m, &m);
  }
  static cl_int set_one(cl_kernel k, cl_uint i, cl_sampler s) {
    return clSetKernelArg(k, i, sizeof s, &s);
  }
  static cl_int set_one(cl_kernel k, cl_uint i, Local l) {
    return clSetKernelArg(k, i, l.bytes, nullptr);
  }
  template <typename T>
  static cl_int set_one(cl_kernel k, cl_uint i, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return clSetKernelArg(k, i, sizeof v, &v);
  }

  template <typename... Args>
  cl_int set_args(cl_kernel k, Args... args) {
    cl_uint i = 0;
    cl_int err = CL_SUCCESS;
    ((err = err == CL_SUCCESS ? set_one(k, i++, args) : err), ...);
    note(err);
    return err;
  }

  cl_int launch1d(Env& env, cl_kernel k, std::size_t global, std::size_t local) {
    const cl_int err = clEnqueueNDRangeKernel(env.queue, k, 1, nullptr, &global,
                                              local != 0 ? &local : nullptr, 0,
                                              nullptr, nullptr);
    note(err);
    return err;
  }
  cl_int launch2d(Env& env, cl_kernel k, std::size_t gx, std::size_t gy,
                  std::size_t lx, std::size_t ly) {
    const std::size_t g[2] = {gx, gy};
    const std::size_t l[2] = {lx, ly};
    const cl_int err = clEnqueueNDRangeKernel(env.queue, k, 2, nullptr, g,
                                              lx != 0 ? l : nullptr, 0, nullptr,
                                              nullptr);
    note(err);
    return err;
  }

  cl_int write(Env& env, cl_mem m, const void* src, std::size_t n,
               bool blocking = true) {
    const cl_int err = clEnqueueWriteBuffer(
        env.queue, m, blocking ? CL_TRUE : CL_FALSE, 0, n, src, 0, nullptr, nullptr);
    note(err);
    return err;
  }
  cl_int read(Env& env, cl_mem m, void* dst, std::size_t n) {
    const cl_int err = clEnqueueReadBuffer(env.queue, m, CL_TRUE, 0, n, dst, 0,
                                           nullptr, nullptr);
    note(err);
    return err;
  }
  cl_int finish(Env& env) {
    note(clFinish(env.queue));
    return status();  // propagate any error noted during this run
  }

  // --- verification helpers ----------------------------------------------------
  static bool close(float a, float b, float tol = 1e-3f) noexcept {
    const float diff = std::fabs(a - b);
    return diff <= tol * (1.0f + std::fabs(a) + std::fabs(b));
  }
  static bool close_span(const float* a, const float* b, std::size_t n,
                         float tol = 1e-3f) noexcept {
    for (std::size_t i = 0; i < n; ++i)
      if (!close(a[i], b[i], tol)) return false;
    return true;
  }

  void release_all() {
    for (cl_kernel k : kernels_) clReleaseKernel(k);
    for (cl_program p : programs_) clReleaseProgram(p);
    for (cl_sampler s : samplers_) clReleaseSampler(s);
    for (cl_mem m : mems_) clReleaseMemObject(m);
    kernels_.clear();
    programs_.clear();
    samplers_.clear();
    mems_.clear();
    status_ = CL_SUCCESS;
  }

 private:
  cl_int status_ = CL_SUCCESS;
  std::vector<cl_mem> mems_;
  std::vector<cl_kernel> kernels_;
  std::vector<cl_program> programs_;
  std::vector<cl_sampler> samplers_;
};

}  // namespace workloads
