// factories.h — one factory per workload; registry.cpp assembles the suite.
#pragma once

#include <memory>

#include "workloads/workload.h"

namespace workloads {

// NVIDIA GPU Computing SDK 3.0 style samples
std::unique_ptr<Workload> make_blackscholes();
std::unique_ptr<Workload> make_convolution_separable();
std::unique_ptr<Workload> make_dxt_compression();
std::unique_ptr<Workload> make_dct8x8();
std::unique_ptr<Workload> make_dot_product();
std::unique_ptr<Workload> make_fdtd3d();
std::unique_ptr<Workload> make_histogram();
std::unique_ptr<Workload> make_matvecmul();
std::unique_ptr<Workload> make_matrixmul();
std::unique_ptr<Workload> make_mersenne_twister();
std::unique_ptr<Workload> make_quasirandom();
std::unique_ptr<Workload> make_radix_sort();
std::unique_ptr<Workload> make_reduction_sdk();
std::unique_ptr<Workload> make_simple_multigpu();
std::unique_ptr<Workload> make_sorting_networks();
std::unique_ptr<Workload> make_scan_sdk();
std::unique_ptr<Workload> make_transpose();
std::unique_ptr<Workload> make_vector_add();
std::unique_ptr<Workload> make_bandwidth_test();
std::unique_ptr<Workload> make_kernel_compile();

// SHOC 0.9.1
std::unique_ptr<Workload> make_bus_speed_download();
std::unique_ptr<Workload> make_bus_speed_readback();
std::unique_ptr<Workload> make_device_memory();
std::unique_ptr<Workload> make_fft();
std::unique_ptr<Workload> make_maxflops();
std::unique_ptr<Workload> make_md();
std::unique_ptr<Workload> make_queue_delay();
std::unique_ptr<Workload> make_reduction_shoc();
std::unique_ptr<Workload> make_s3d();
std::unique_ptr<Workload> make_sgemm();
std::unique_ptr<Workload> make_scan_shoc();
std::unique_ptr<Workload> make_sort_shoc();
std::unique_ptr<Workload> make_stencil2d();
std::unique_ptr<Workload> make_triad();

// Parboil ports (cp, mri-q, mri-fhd) with the paper's size variants
std::unique_ptr<Workload> make_cp_default();
std::unique_ptr<Workload> make_mriq(bool large);
std::unique_ptr<Workload> make_mrifhd(bool large);

// extras exercising image2d_t + sampler_t (the cl_sampler restore path)
std::unique_ptr<Workload> make_image_rotate();

}  // namespace workloads
