// sdk_basic.cpp — NVIDIA SDK-style workloads, part 1: the arithmetic and
// linear-algebra samples plus the transfer-bound ones.
#include <vector>

#include "workloads/base.h"
#include "workloads/factories.h"

namespace workloads {

namespace {

// ---------------------------------------------------------------------------
// oclVectorAdd
// ---------------------------------------------------------------------------

class VectorAdd final : public Base {
 public:
  std::string name() const override { return "oclVectorAdd"; }

  cl_int setup(Env& env) override {
    n_ = (1 << 19) / env.shrink;
    a_.resize(n_);
    b_.resize(n_);
    Rng rng(11);
    for (std::size_t i = 0; i < n_; ++i) {
      a_[i] = rng.next_float(-1, 1);
      b_[i] = rng.next_float(-1, 1);
    }
    static const char* kSrc = R"CL(
__kernel void VectorAdd(__global const float* a, __global const float* b,
                        __global float* c, int n) {
  int i = get_global_id(0);
  if (i < n) c[i] = a[i] + b[i];
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "VectorAdd");
    da_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * 4);
    db_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * 4);
    dc_ = make_buffer(env, CL_MEM_WRITE_ONLY, n_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, da_, a_.data(), n_ * 4);
    write(env, db_, b_.data(), n_ * 4);
    set_args(k_, da_, db_, dc_, static_cast<cl_int>(n_));
    launch1d(env, k_, n_, 64);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> c(n_);
    read(env, dc_, c.data(), n_ * 4);
    for (std::size_t i = 0; i < n_; ++i)
      if (!close(c[i], a_[i] + b_[i])) return false;
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0;
  std::vector<float> a_, b_;
  cl_mem da_ = nullptr, db_ = nullptr, dc_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclDotProduct — float4 inputs with a local-memory tree reduction
// ---------------------------------------------------------------------------

class DotProduct final : public Base {
 public:
  std::string name() const override { return "oclDotProduct"; }

  cl_int setup(Env& env) override {
    n_ = (1 << 16) / env.shrink;
    a_.resize(4 * n_);
    b_.resize(4 * n_);
    Rng rng(12);
    for (auto& v : a_) v = rng.next_float(-1, 1);
    for (auto& v : b_) v = rng.next_float(-1, 1);
    static const char* kSrc = R"CL(
__kernel void DotProduct(__global const float4* a, __global const float4* b,
                         __global float* partial, __local float* scratch, int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  float acc = 0.0f;
  if (gid < n) {
    float4 x = a[gid];
    float4 y = b[gid];
    acc = dot(x, y);
  }
  scratch[lid] = acc;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {
    if (lid < s) scratch[lid] += scratch[lid + s];
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lid == 0) partial[get_group_id(0)] = scratch[0];
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "DotProduct");
    da_ = make_buffer(env, CL_MEM_READ_ONLY, a_.size() * 4);
    db_ = make_buffer(env, CL_MEM_READ_ONLY, b_.size() * 4);
    groups_ = n_ / 64;
    dp_ = make_buffer(env, CL_MEM_WRITE_ONLY, groups_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, da_, a_.data(), a_.size() * 4);
    write(env, db_, b_.data(), b_.size() * 4);
    set_args(k_, da_, db_, dp_, Local{64 * 4}, static_cast<cl_int>(n_));
    launch1d(env, k_, n_, 64);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> partial(groups_);
    read(env, dp_, partial.data(), groups_ * 4);
    double got = 0;
    for (const float v : partial) got += v;
    double want = 0;
    for (std::size_t i = 0; i < 4 * n_; ++i)
      want += static_cast<double>(a_[i]) * b_[i];
    return std::fabs(got - want) <= 1e-2 * (1.0 + std::fabs(want)) &&
           status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0, groups_ = 0;
  std::vector<float> a_, b_;
  cl_mem da_ = nullptr, db_ = nullptr, dp_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclMatrixMul — tiled with __local memory
// ---------------------------------------------------------------------------

class MatrixMul final : public Base {
 public:
  std::string name() const override { return "oclMatrixMul"; }

  cl_int setup(Env& env) override {
    n_ = 128 / (env.shrink > 4 ? 4 : env.shrink);
    a_.resize(n_ * n_);
    b_.resize(n_ * n_);
    Rng rng(13);
    for (auto& v : a_) v = rng.next_float(-1, 1);
    for (auto& v : b_) v = rng.next_float(-1, 1);
    static const char* kSrc = R"CL(
#define TILE 8
__kernel void MatrixMul(__global const float* A, __global const float* B,
                        __global float* C, int n) {
  __local float As[TILE * TILE];
  __local float Bs[TILE * TILE];
  int tx = get_local_id(0);
  int ty = get_local_id(1);
  int col = get_global_id(0);
  int row = get_global_id(1);
  float acc = 0.0f;
  for (int t = 0; t < n / TILE; t = t + 1) {
    As[ty * TILE + tx] = A[row * n + t * TILE + tx];
    Bs[ty * TILE + tx] = B[(t * TILE + ty) * n + col];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < TILE; k = k + 1)
      acc = mad(As[ty * TILE + k], Bs[k * TILE + tx], acc);
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  C[row * n + col] = acc;
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "MatrixMul");
    da_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * n_ * 4);
    db_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * n_ * 4);
    dc_ = make_buffer(env, CL_MEM_WRITE_ONLY, n_ * n_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, da_, a_.data(), a_.size() * 4);
    write(env, db_, b_.data(), b_.size() * 4);
    set_args(k_, da_, db_, dc_, static_cast<cl_int>(n_));
    launch2d(env, k_, n_, n_, 8, 8);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> c(n_ * n_);
    read(env, dc_, c.data(), c.size() * 4);
    // spot-check a deterministic subset (full n^3 host check is wasteful)
    Rng rng(99);
    for (int probe = 0; probe < 64; ++probe) {
      const std::size_t row = rng.next_u32() % n_;
      const std::size_t col = rng.next_u32() % n_;
      double want = 0;
      for (std::size_t k = 0; k < n_; ++k)
        want += static_cast<double>(a_[row * n_ + k]) * b_[k * n_ + col];
      if (!close(c[row * n_ + col], static_cast<float>(want), 1e-2f)) return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0;
  std::vector<float> a_, b_;
  cl_mem da_ = nullptr, db_ = nullptr, dc_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclMatVecMul — problem size determined by device memory (the paper's
// oclFDTD3d/oclMatVecMul note: smaller on the 1 GB-class AMD GPU)
// ---------------------------------------------------------------------------

class MatVecMul final : public Base {
 public:
  std::string name() const override { return "oclMatVecMul"; }

  cl_int setup(Env& env) override {
    // matrix sized to ~1/16 of device memory
    const std::uint64_t budget = env.device_mem_bytes / 16;
    rows_ = 256 / env.shrink;
    cols_ = static_cast<std::size_t>(
        std::min<std::uint64_t>(budget / (rows_ * 4), 4096));
    cols_ = cols_ / 64 * 64;
    if (cols_ == 0) cols_ = 64;
    m_.resize(rows_ * cols_);
    v_.resize(cols_);
    Rng rng(14);
    for (auto& x : m_) x = rng.next_float(-1, 1);
    for (auto& x : v_) x = rng.next_float(-1, 1);
    static const char* kSrc = R"CL(
__kernel void MatVecMul(__global const float* M, __global const float* V,
                        __global float* W, int rows, int cols) {
  int r = get_global_id(0);
  if (r >= rows) return;
  float acc = 0.0f;
  for (int c = 0; c < cols; c = c + 1) acc = mad(M[r * cols + c], V[c], acc);
  W[r] = acc;
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "MatVecMul");
    dm_ = make_buffer(env, CL_MEM_READ_ONLY, m_.size() * 4);
    dv_ = make_buffer(env, CL_MEM_READ_ONLY, v_.size() * 4);
    dw_ = make_buffer(env, CL_MEM_WRITE_ONLY, rows_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, dm_, m_.data(), m_.size() * 4);
    write(env, dv_, v_.data(), v_.size() * 4);
    set_args(k_, dm_, dv_, dw_, static_cast<cl_int>(rows_),
             static_cast<cl_int>(cols_));
    launch1d(env, k_, (rows_ + 63) / 64 * 64, 64);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> w(rows_);
    read(env, dw_, w.data(), rows_ * 4);
    for (std::size_t r = 0; r < rows_; ++r) {
      double want = 0;
      for (std::size_t c = 0; c < cols_; ++c)
        want += static_cast<double>(m_[r * cols_ + c]) * v_[c];
      if (!close(w[r], static_cast<float>(want), 1e-2f)) return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<float> m_, v_;
  cl_mem dm_ = nullptr, dv_ = nullptr, dw_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclTranspose — tiled transpose through __local memory
// ---------------------------------------------------------------------------

class Transpose final : public Base {
 public:
  std::string name() const override { return "oclTranspose"; }

  cl_int setup(Env& env) override {
    n_ = 256 / (env.shrink > 4 ? 4 : env.shrink);
    in_.resize(n_ * n_);
    for (std::size_t i = 0; i < in_.size(); ++i) in_[i] = static_cast<float>(i % 1000);
    static const char* kSrc = R"CL(
#define TILE 8
__kernel void Transpose(__global const float* in, __global float* out, int n) {
  __local float tile[TILE * (TILE + 1)];
  int x = get_global_id(0);
  int y = get_global_id(1);
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  tile[ly * (TILE + 1) + lx] = in[y * n + x];
  barrier(CLK_LOCAL_MEM_FENCE);
  int ox = get_group_id(1) * TILE + lx;
  int oy = get_group_id(0) * TILE + ly;
  out[oy * n + ox] = tile[lx * (TILE + 1) + ly];
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "Transpose");
    din_ = make_buffer(env, CL_MEM_READ_ONLY, in_.size() * 4);
    dout_ = make_buffer(env, CL_MEM_WRITE_ONLY, in_.size() * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, din_, in_.data(), in_.size() * 4);
    set_args(k_, din_, dout_, static_cast<cl_int>(n_));
    launch2d(env, k_, n_, n_, 8, 8);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> out(in_.size());
    read(env, dout_, out.data(), out.size() * 4);
    for (std::size_t y = 0; y < n_; ++y)
      for (std::size_t x = 0; x < n_; ++x)
        if (out[x * n_ + y] != in_[y * n_ + x]) return false;
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0;
  std::vector<float> in_;
  cl_mem din_ = nullptr, dout_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclReduction — two-level tree reduction
// ---------------------------------------------------------------------------

class ReductionSdk final : public Base {
 public:
  std::string name() const override { return "oclReduction"; }

  cl_int setup(Env& env) override {
    n_ = (1 << 18) / env.shrink;
    in_.resize(n_);
    Rng rng(15);
    for (auto& v : in_) v = rng.next_float(0, 1);
    static const char* kSrc = R"CL(
__kernel void reduce(__global const float* in, __global float* out,
                     __local float* scratch, int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  scratch[lid] = gid < n ? in[gid] : 0.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {
    if (lid < s) scratch[lid] += scratch[lid + s];
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lid == 0) out[get_group_id(0)] = scratch[0];
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "reduce");
    din_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * 4);
    groups_ = n_ / 128;
    dpart_ = make_buffer(env, CL_MEM_READ_WRITE, groups_ * 4);
    dout_ = make_buffer(env, CL_MEM_READ_WRITE, 4 * ((groups_ + 127) / 128));
    return status();
  }

  cl_int run(Env& env) override {
    write(env, din_, in_.data(), n_ * 4);
    set_args(k_, din_, dpart_, Local{128 * 4}, static_cast<cl_int>(n_));
    launch1d(env, k_, n_, 128);
    // second level
    set_args(k_, dpart_, dout_, Local{128 * 4}, static_cast<cl_int>(groups_));
    launch1d(env, k_, (groups_ + 127) / 128 * 128, 128);
    return finish(env);
  }

  bool verify(Env& env) override {
    const std::size_t out_n = (groups_ + 127) / 128;
    std::vector<float> out(out_n);
    read(env, dout_, out.data(), out_n * 4);
    double got = 0;
    for (const float v : out) got += v;
    double want = 0;
    for (const float v : in_) want += v;
    return std::fabs(got - want) <= 1e-2 * (1.0 + want) && status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0, groups_ = 0;
  std::vector<float> in_;
  cl_mem din_ = nullptr, dpart_ = nullptr, dout_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclBlackScholes — option pricing (exp/log/sqrt-heavy, two result buffers)
// ---------------------------------------------------------------------------

class BlackScholes final : public Base {
 public:
  std::string name() const override { return "oclBlackScholes"; }

  cl_int setup(Env& env) override {
    n_ = (1 << 16) / env.shrink;
    price_.resize(n_);
    strike_.resize(n_);
    years_.resize(n_);
    Rng rng(16);
    for (std::size_t i = 0; i < n_; ++i) {
      price_[i] = rng.next_float(5, 30);
      strike_[i] = rng.next_float(1, 100);
      years_[i] = rng.next_float(0.25f, 10);
    }
    static const char* kSrc = R"CL(
float cnd(float d) {
  float A1 = 0.31938153f;
  float A2 = -0.356563782f;
  float A3 = 1.781477937f;
  float A4 = -1.821255978f;
  float A5 = 1.330274429f;
  float RSQRT2PI = 0.39894228040143267794f;
  float K = 1.0f / (1.0f + 0.2316419f * fabs(d));
  float v = RSQRT2PI * exp(-0.5f * d * d) *
            (K * (A1 + K * (A2 + K * (A3 + K * (A4 + K * A5)))));
  if (d > 0.0f) v = 1.0f - v;
  return v;
}

__kernel void BlackScholes(__global float* call, __global float* put,
                           __global const float* S, __global const float* X,
                           __global const float* T, float R, float V, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  float sqrtT = sqrt(T[i]);
  float d1 = (log(S[i] / X[i]) + (R + 0.5f * V * V) * T[i]) / (V * sqrtT);
  float d2 = d1 - V * sqrtT;
  float c1 = cnd(d1);
  float c2 = cnd(d2);
  float expRT = exp(-R * T[i]);
  call[i] = S[i] * c1 - X[i] * expRT * c2;
  put[i] = X[i] * expRT * (1.0f - c2) - S[i] * (1.0f - c1);
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "BlackScholes");
    ds_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * 4);
    dx_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * 4);
    dt_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * 4);
    dcall_ = make_buffer(env, CL_MEM_WRITE_ONLY, n_ * 4);
    dput_ = make_buffer(env, CL_MEM_WRITE_ONLY, n_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, ds_, price_.data(), n_ * 4);
    write(env, dx_, strike_.data(), n_ * 4);
    write(env, dt_, years_.data(), n_ * 4);
    set_args(k_, dcall_, dput_, ds_, dx_, dt_, 0.02f, 0.30f,
             static_cast<cl_int>(n_));
    launch1d(env, k_, n_, 64);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> call(n_);
    read(env, dcall_, call.data(), n_ * 4);
    for (std::size_t i = 0; i < n_; i += 97) {
      const float want = host_call(price_[i], strike_[i], years_[i]);
      if (!close(call[i], want, 1e-2f)) return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  static float host_cnd(float d) {
    const float k = 1.0f / (1.0f + 0.2316419f * std::fabs(d));
    float v = 0.39894228040143267794f * std::exp(-0.5f * d * d) *
              (k * (0.31938153f +
                    k * (-0.356563782f +
                         k * (1.781477937f +
                              k * (-1.821255978f + k * 1.330274429f)))));
    if (d > 0.0f) v = 1.0f - v;
    return v;
  }
  static float host_call(float s, float x, float t) {
    const float r = 0.02f;
    const float vol = 0.30f;
    const float sqrt_t = std::sqrt(t);
    const float d1 =
        (std::log(s / x) + (r + 0.5f * vol * vol) * t) / (vol * sqrt_t);
    const float d2 = d1 - vol * sqrt_t;
    return s * host_cnd(d1) - x * std::exp(-r * t) * host_cnd(d2);
  }

  std::size_t n_ = 0;
  std::vector<float> price_, strike_, years_;
  cl_mem ds_ = nullptr, dx_ = nullptr, dt_ = nullptr, dcall_ = nullptr,
         dput_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclBandwidthTest — pure transfers; no kernel (excluded from Figure 5)
// ---------------------------------------------------------------------------

class BandwidthTest final : public Base {
 public:
  std::string name() const override { return "oclBandwidthTest"; }
  bool executes_kernel() const override { return false; }

  cl_int setup(Env& env) override {
    bytes_ = (8u << 20) / env.shrink;
    host_.assign(bytes_, 0x5A);
    dev_ = make_buffer(env, CL_MEM_READ_WRITE, bytes_);
    return status();
  }

  cl_int run(Env& env) override {
    for (int i = 0; i < 4; ++i) {
      write(env, dev_, host_.data(), bytes_);
      read(env, dev_, host_.data(), bytes_);
    }
    return finish(env);
  }

  bool verify(Env&) override { return status() == CL_SUCCESS; }

 private:
  std::size_t bytes_ = 0;
  std::vector<std::uint8_t> host_;
  cl_mem dev_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclSimpleMultiGPU — one queue per device of the platform (falls back to a
// single device when only one exists)
// ---------------------------------------------------------------------------

class SimpleMultiGPU final : public Base {
 public:
  std::string name() const override { return "oclSimpleMultiGPU"; }

  cl_int setup(Env& env) override {
    n_ = (1 << 19) / env.shrink;
    in_.resize(n_);
    Rng rng(17);
    for (auto& v : in_) v = rng.next_float(0, 1);

    cl_uint ndev = 0;
    clGetDeviceIDs(env.platform, CL_DEVICE_TYPE_ALL, 0, nullptr, &ndev);
    devices_.resize(ndev);
    clGetDeviceIDs(env.platform, CL_DEVICE_TYPE_ALL, ndev, devices_.data(), nullptr);
    if (devices_.size() > 2) devices_.resize(2);

    // like the SDK sample: one context spanning every device, one queue each
    cl_int err = CL_SUCCESS;
    multi_ctx_ = clCreateContext(nullptr, static_cast<cl_uint>(devices_.size()),
                                 devices_.data(), nullptr, nullptr, &err);
    note(err);
    if (multi_ctx_ == nullptr) return status();

    static const char* kSrc = R"CL(
__kernel void scaleShift(__global float* d, float s, float t, int n) {
  int i = get_global_id(0);
  if (i < n) d[i] = d[i] * s + t;
}
)CL";
    cl_program p = clCreateProgramWithSource(multi_ctx_, 1, &kSrc, nullptr, &err);
    note(err);
    prog_ = p;
    note(clBuildProgram(p, static_cast<cl_uint>(devices_.size()), devices_.data(),
                        "", nullptr, nullptr));
    k_ = clCreateKernel(p, "scaleShift", &err);
    note(err);
    const std::size_t chunk = n_ / devices_.size();
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      cl_command_queue q = clCreateCommandQueue(multi_ctx_, devices_[d], 0, &err);
      note(err);
      queues_.push_back(q);
      cl_mem m = clCreateBuffer(multi_ctx_, CL_MEM_READ_WRITE, chunk * 4,
                                nullptr, &err);
      note(err);
      bufs_.push_back(m);
    }
    return status();
  }

  cl_int run(Env& env) override {
    const std::size_t chunk = n_ / devices_.size();
    for (std::size_t d = 0; d < queues_.size(); ++d) {
      note(clEnqueueWriteBuffer(queues_[d], bufs_[d], CL_FALSE, 0, chunk * 4,
                                in_.data() + d * chunk, 0, nullptr, nullptr));
      set_args(k_, bufs_[d], 2.0f, 1.0f, static_cast<cl_int>(chunk));
      const std::size_t g = chunk;
      const std::size_t l = 64;
      note(clEnqueueNDRangeKernel(queues_[d], k_, 1, nullptr, &g, &l, 0, nullptr,
                                  nullptr));
    }
    for (cl_command_queue q : queues_) note(clFinish(q));
    (void)env;
    return status();
  }

  bool verify(Env&) override {
    const std::size_t chunk = n_ / devices_.size();
    std::vector<float> out(chunk);
    for (std::size_t d = 0; d < queues_.size(); ++d) {
      note(clEnqueueReadBuffer(queues_[d], bufs_[d], CL_TRUE, 0, chunk * 4,
                               out.data(), 0, nullptr, nullptr));
      for (std::size_t i = 0; i < chunk; ++i)
        if (!close(out[i], in_[d * chunk + i] * 2.0f + 1.0f)) return false;
    }
    return status() == CL_SUCCESS;
  }

  void teardown(Env& env) override {
    if (k_ != nullptr) clReleaseKernel(k_);
    if (prog_ != nullptr) clReleaseProgram(prog_);
    for (cl_mem m : bufs_) clReleaseMemObject(m);
    for (cl_command_queue q : queues_) clReleaseCommandQueue(q);
    if (multi_ctx_ != nullptr) clReleaseContext(multi_ctx_);
    k_ = nullptr;
    prog_ = nullptr;
    multi_ctx_ = nullptr;
    bufs_.clear();
    queues_.clear();
    Base::teardown(env);
  }

 private:
  std::size_t n_ = 0;
  std::vector<float> in_;
  std::vector<cl_device_id> devices_;
  std::vector<cl_command_queue> queues_;
  std::vector<cl_mem> bufs_;
  cl_context multi_ctx_ = nullptr;
  cl_program prog_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclMersenneTwister — per-thread xorshift generator + BoxMuller pass
// (exact 32-bit unsigned wrap-around semantics)
// ---------------------------------------------------------------------------

class MersenneTwister final : public Base {
 public:
  std::string name() const override { return "oclMersenneTwister"; }

  cl_int setup(Env& env) override {
    threads_ = 4096 / env.shrink;
    per_thread_ = 64;
    static const char* kSrc = R"CL(
__kernel void RandomGPU(__global uint* out, int perThread) {
  uint tid = (uint)get_global_id(0);
  uint state = tid * 2654435761u + 1u;
  for (int i = 0; i < perThread; i = i + 1) {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    out[(uint)get_global_size(0) * (uint)i + tid] = state;
  }
}

__kernel void BoxMullerGPU(__global float* fout, __global const uint* in, int n) {
  int i = get_global_id(0);
  if (2 * i + 1 >= n) return;
  float u1 = ((float)(in[2 * i] & 0xFFFFFFu) + 1.0f) / 16777217.0f;
  float u2 = ((float)(in[2 * i + 1] & 0xFFFFFFu) + 1.0f) / 16777217.0f;
  float r = sqrt(-2.0f * log(u1));
  float phi = 6.28318530717958f * u2;
  fout[2 * i] = r * native_cos(phi);
  fout[2 * i + 1] = r * native_sin(phi);
}
)CL";
    cl_program p = make_program(env, kSrc);
    krand_ = make_kernel(p, "RandomGPU");
    kbox_ = make_kernel(p, "BoxMullerGPU");
    total_ = threads_ * per_thread_;
    drand_ = make_buffer(env, CL_MEM_READ_WRITE, total_ * 4);
    dnorm_ = make_buffer(env, CL_MEM_WRITE_ONLY, total_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    set_args(krand_, drand_, static_cast<cl_int>(per_thread_));
    launch1d(env, krand_, threads_, 64);
    set_args(kbox_, dnorm_, drand_, static_cast<cl_int>(total_));
    launch1d(env, kbox_, total_ / 2, 64);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<std::uint32_t> got(total_);
    read(env, drand_, got.data(), total_ * 4);
    // host replication of the per-thread xorshift
    for (std::size_t tid = 0; tid < threads_; tid += 37) {
      std::uint32_t state =
          static_cast<std::uint32_t>(tid) * 2654435761u + 1u;
      for (std::size_t i = 0; i < per_thread_; ++i) {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        if (got[threads_ * i + tid] != state) return false;
      }
    }
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t threads_ = 0, per_thread_ = 0, total_ = 0;
  cl_mem drand_ = nullptr, dnorm_ = nullptr;
  cl_kernel krand_ = nullptr, kbox_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclQuasirandomGenerator — Niederreiter-style table-driven sequence
// ---------------------------------------------------------------------------

class Quasirandom final : public Base {
 public:
  std::string name() const override { return "oclQuasirandomGenerator"; }

  cl_int setup(Env& env) override {
    n_ = (1 << 17) / env.shrink;
    // direction table: 31 entries of a scrambled radical-inverse basis
    table_.resize(31);
    for (std::size_t bit = 0; bit < 31; ++bit)
      table_[bit] = (0x80000000u >> bit) ^ (0x9E3779B9u >> (31 - bit));
    static const char* kSrc = R"CL(
__kernel void Quasirandom(__global float* out, __global const uint* table, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  uint acc = 0u;
  uint idx = (uint)i;
  for (int bit = 0; bit < 31; bit = bit + 1) {
    if ((idx >> bit) & 1u) acc ^= table[bit];
  }
  out[i] = (float)acc * (1.0f / 4294967296.0f);
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "Quasirandom");
    dtable_ = make_buffer(env, CL_MEM_READ_ONLY, table_.size() * 4);
    dout_ = make_buffer(env, CL_MEM_WRITE_ONLY, n_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, dtable_, table_.data(), table_.size() * 4);
    set_args(k_, dout_, dtable_, static_cast<cl_int>(n_));
    launch1d(env, k_, (n_ + 63) / 64 * 64, 64);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> out(n_);
    read(env, dout_, out.data(), n_ * 4);
    for (std::size_t i = 0; i < n_; i += 101) {
      std::uint32_t acc = 0;
      for (int bit = 0; bit < 31; ++bit)
        if ((i >> bit) & 1u) acc ^= table_[static_cast<std::size_t>(bit)];
      const float want = static_cast<float>(acc) * (1.0f / 4294967296.0f);
      if (!close(out[i], want, 1e-5f)) return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint32_t> table_;
  cl_mem dtable_ = nullptr, dout_ = nullptr;
  cl_kernel k_ = nullptr;
};

}  // namespace

std::unique_ptr<Workload> make_vector_add() { return std::make_unique<VectorAdd>(); }
std::unique_ptr<Workload> make_dot_product() { return std::make_unique<DotProduct>(); }
std::unique_ptr<Workload> make_matrixmul() { return std::make_unique<MatrixMul>(); }
std::unique_ptr<Workload> make_matvecmul() { return std::make_unique<MatVecMul>(); }
std::unique_ptr<Workload> make_transpose() { return std::make_unique<Transpose>(); }
std::unique_ptr<Workload> make_reduction_sdk() { return std::make_unique<ReductionSdk>(); }
std::unique_ptr<Workload> make_blackscholes() { return std::make_unique<BlackScholes>(); }
std::unique_ptr<Workload> make_bandwidth_test() { return std::make_unique<BandwidthTest>(); }
std::unique_ptr<Workload> make_simple_multigpu() { return std::make_unique<SimpleMultiGPU>(); }
std::unique_ptr<Workload> make_mersenne_twister() { return std::make_unique<MersenneTwister>(); }
std::unique_ptr<Workload> make_quasirandom() { return std::make_unique<Quasirandom>(); }

}  // namespace workloads
