#include "workloads/harness.h"

#include "checl/cl_ext.h"
#include "core/runtime.h"
#include "simcl/progcache.h"
#include "simcl/runtime.h"

namespace workloads {

void fresh_process(Binding binding, const checl::NodeConfig& node) {
  auto& crt = checl::CheclRuntime::instance();
  crt.reset_all();  // drop CheCL objects + proxy from any previous "process"
  // A fresh "process" starts with a cold in-memory compile cache either way;
  // only an on-disk clc_cache.root survives the boundary (the CheCL path's
  // respawned proxyd applies the same config via Op::Configure).
  simcl::ProgCache::instance().reset();
  simcl::ProgCache::instance().configure(node.clc_cache);
  if (binding == Binding::CheCL) {
    crt.set_node(node);
    checl::bind_checl();
  } else {
    // native: reconfigure the in-process substrate so the next
    // clGetPlatformIDs pays platform bring-up again, like a fresh process
    simcl::Runtime::instance().configure(node.platforms);
    simcl::Runtime::instance().clock().reset();
    checl::bind_native();
  }
  // Both paths start the new "process" at virtual time zero, so a plain
  // now_ns() at the end of a run is the whole-program execution time
  // (including platform bring-up and, under CheCL, the proxy fork).
}

cl_int open_env(Env& env, cl_device_type type, const char* platform_substr) {
  cl_uint np = 0;
  cl_int err = clGetPlatformIDs(0, nullptr, &np);
  if (err != CL_SUCCESS) return err;
  std::vector<cl_platform_id> plats(np);
  err = clGetPlatformIDs(np, plats.data(), nullptr);
  if (err != CL_SUCCESS) return err;

  cl_platform_id chosen = nullptr;
  cl_device_id dev = nullptr;
  for (cl_platform_id p : plats) {
    if (platform_substr != nullptr) {
      char name[256] = {};
      clGetPlatformInfo(p, CL_PLATFORM_NAME, sizeof name, name, nullptr);
      if (std::string(name).find(platform_substr) == std::string::npos) continue;
    }
    cl_device_id d = nullptr;
    if (clGetDeviceIDs(p, type, 1, &d, nullptr) == CL_SUCCESS) {
      chosen = p;
      dev = d;
      break;
    }
  }
  if (chosen == nullptr) return CL_DEVICE_NOT_FOUND;

  env.platform = chosen;
  env.device = dev;
  cl_ulong mem = 0;
  clGetDeviceInfo(dev, CL_DEVICE_GLOBAL_MEM_SIZE, sizeof mem, &mem, nullptr);
  env.device_mem_bytes = mem;
  std::size_t wg = 0;
  clGetDeviceInfo(dev, CL_DEVICE_MAX_WORK_GROUP_SIZE, sizeof wg, &wg, nullptr);
  env.max_work_group_size = wg;

  env.ctx = clCreateContext(nullptr, 1, &dev, nullptr, nullptr, &err);
  if (err != CL_SUCCESS) return err;
  env.queue = clCreateCommandQueue(env.ctx, dev, 0, &err);
  if (err != CL_SUCCESS) {
    clReleaseContext(env.ctx);
    env.ctx = nullptr;
    return err;
  }
  return CL_SUCCESS;
}

void close_env(Env& env) {
  if (env.queue != nullptr) clReleaseCommandQueue(env.queue);
  if (env.ctx != nullptr) clReleaseContext(env.ctx);
  env.queue = nullptr;
  env.ctx = nullptr;
}

std::uint64_t now_ns() {
  cl_ulong t = 0;
  clSimGetHostTimeNS(&t);
  return t;
}

RunResult run_workload(Workload& w, Env& env, int iterations) {
  RunResult res;
  const std::uint64_t t0 = now_ns();
  cl_int err = w.setup(env);
  if (err != CL_SUCCESS) {
    res.error = "setup failed: " + std::to_string(err);
    w.teardown(env);
    return res;
  }
  for (int i = 0; i < iterations; ++i) {
    err = w.run(env);
    if (err != CL_SUCCESS) {
      res.error = "run failed: " + std::to_string(err);
      w.teardown(env);
      return res;
    }
  }
  res.sim_ns = now_ns() - t0;
  res.verified = w.verify(env);
  res.ok = true;
  if (!res.verified) res.error = "verification failed";
  w.teardown(env);
  return res;
}

}  // namespace workloads
