// sdk_advanced.cpp — NVIDIA SDK-style workloads, part 2: stencils, image
// processing, sorting, histograms and the compile-only sample.
#include <algorithm>
#include <vector>

#include "workloads/base.h"
#include "workloads/factories.h"

namespace workloads {

namespace {

// ---------------------------------------------------------------------------
// oclConvolutionSeparable — row + column passes with __local halos
// ---------------------------------------------------------------------------

class ConvolutionSeparable final : public Base {
 public:
  std::string name() const override { return "oclConvolutionSeparable"; }

  cl_int setup(Env& env) override {
    w_ = 192 / (env.shrink > 4 ? 4 : env.shrink) * 2;
    h_ = w_;
    in_.resize(w_ * h_);
    Rng rng(21);
    for (auto& v : in_) v = rng.next_float(0, 1);
    for (int i = -kRadius; i <= kRadius; ++i)
      filter_[static_cast<std::size_t>(i + kRadius)] =
          1.0f / static_cast<float>(2 * kRadius + 1);
    static const char* kSrc = R"CL(
#define RADIUS 4
__kernel void convRows(__global float* dst, __global const float* src,
                       __global const float* filt, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= w || y >= h) return;
  float acc = 0.0f;
  for (int k = -RADIUS; k <= RADIUS; k = k + 1) {
    int xx = clamp(x + k, 0, w - 1);
    acc = mad(src[y * w + xx], filt[k + RADIUS], acc);
  }
  dst[y * w + x] = acc;
}
__kernel void convCols(__global float* dst, __global const float* src,
                       __global const float* filt, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= w || y >= h) return;
  float acc = 0.0f;
  for (int k = -RADIUS; k <= RADIUS; k = k + 1) {
    int yy = clamp(y + k, 0, h - 1);
    acc = mad(src[yy * w + x], filt[k + RADIUS], acc);
  }
  dst[y * w + x] = acc;
}
)CL";
    cl_program p = make_program(env, kSrc);
    krows_ = make_kernel(p, "convRows");
    kcols_ = make_kernel(p, "convCols");
    din_ = make_buffer(env, CL_MEM_READ_ONLY, in_.size() * 4);
    dtmp_ = make_buffer(env, CL_MEM_READ_WRITE, in_.size() * 4);
    dout_ = make_buffer(env, CL_MEM_WRITE_ONLY, in_.size() * 4);
    dfilt_ = make_buffer(env, CL_MEM_READ_ONLY, sizeof filter_);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, din_, in_.data(), in_.size() * 4);
    write(env, dfilt_, filter_, sizeof filter_);
    set_args(krows_, dtmp_, din_, dfilt_, static_cast<cl_int>(w_),
             static_cast<cl_int>(h_));
    launch2d(env, krows_, w_, h_, 16, 4);
    set_args(kcols_, dout_, dtmp_, dfilt_, static_cast<cl_int>(w_),
             static_cast<cl_int>(h_));
    launch2d(env, kcols_, w_, h_, 16, 4);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> out(in_.size());
    read(env, dout_, out.data(), out.size() * 4);
    Rng rng(22);
    for (int probe = 0; probe < 32; ++probe) {
      const int x = static_cast<int>(rng.next_u32() % w_);
      const int y = static_cast<int>(rng.next_u32() % h_);
      float want = 0;
      for (int ky = -kRadius; ky <= kRadius; ++ky) {
        float row = 0;
        const int yy = std::clamp(y + ky, 0, static_cast<int>(h_) - 1);
        for (int kx = -kRadius; kx <= kRadius; ++kx) {
          const int xx = std::clamp(x + kx, 0, static_cast<int>(w_) - 1);
          row += in_[static_cast<std::size_t>(yy) * w_ +
                     static_cast<std::size_t>(xx)] *
                 filter_[static_cast<std::size_t>(kx + kRadius)];
        }
        want += row * filter_[static_cast<std::size_t>(ky + kRadius)];
      }
      if (!close(out[static_cast<std::size_t>(y) * w_ + static_cast<std::size_t>(x)],
                 want, 1e-2f))
        return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  static constexpr int kRadius = 4;
  std::size_t w_ = 0, h_ = 0;
  std::vector<float> in_;
  float filter_[2 * kRadius + 1] = {};
  cl_mem din_ = nullptr, dtmp_ = nullptr, dout_ = nullptr, dfilt_ = nullptr;
  cl_kernel krows_ = nullptr, kcols_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclDCT8x8 — 8x8 block DCT with private arrays
// ---------------------------------------------------------------------------

class Dct8x8 final : public Base {
 public:
  std::string name() const override { return "oclDCT8x8"; }

  cl_int setup(Env& env) override {
    blocks_ = 256 / env.shrink;
    in_.resize(blocks_ * 64);
    Rng rng(23);
    for (auto& v : in_) v = rng.next_float(-128, 128);
    static const char* kSrc = R"CL(
__kernel void DCT8x8(__global const float* in, __global float* out, int blocks) {
  int b = get_global_id(0);
  if (b >= blocks) return;
  float tmp[64];
  float pi = 3.14159265358979f;
  for (int u = 0; u < 8; u = u + 1) {
    for (int x = 0; x < 8; x = x + 1) {
      float acc = 0.0f;
      for (int k = 0; k < 8; k = k + 1)
        acc += in[b * 64 + x * 8 + k] *
               native_cos((2.0f * (float)k + 1.0f) * (float)u * pi / 16.0f);
      float cu = u == 0 ? 0.353553390593f : 0.5f;
      tmp[x * 8 + u] = cu * acc;
    }
  }
  for (int v = 0; v < 8; v = v + 1) {
    for (int u = 0; u < 8; u = u + 1) {
      float acc = 0.0f;
      for (int k = 0; k < 8; k = k + 1)
        acc += tmp[k * 8 + u] *
               native_cos((2.0f * (float)k + 1.0f) * (float)v * pi / 16.0f);
      float cv = v == 0 ? 0.353553390593f : 0.5f;
      out[b * 64 + v * 8 + u] = cv * acc;
    }
  }
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "DCT8x8");
    din_ = make_buffer(env, CL_MEM_READ_ONLY, in_.size() * 4);
    dout_ = make_buffer(env, CL_MEM_WRITE_ONLY, in_.size() * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, din_, in_.data(), in_.size() * 4);
    set_args(k_, din_, dout_, static_cast<cl_int>(blocks_));
    launch1d(env, k_, (blocks_ + 31) / 32 * 32, 32);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> out(in_.size());
    read(env, dout_, out.data(), out.size() * 4);
    // host DCT on block 0 and a middle block
    for (const std::size_t b : {std::size_t{0}, blocks_ / 2}) {
      for (int v = 0; v < 8; ++v) {
        for (int u = 0; u < 8; ++u) {
          double acc = 0;
          for (int y = 0; y < 8; ++y) {
            for (int x = 0; x < 8; ++x) {
              acc += in_[b * 64 + static_cast<std::size_t>(y) * 8 +
                         static_cast<std::size_t>(x)] *
                     std::cos((2 * x + 1) * u * 3.14159265358979 / 16.0) *
                     std::cos((2 * y + 1) * v * 3.14159265358979 / 16.0);
            }
          }
          acc *= (u == 0 ? 0.353553390593 : 0.5) * (v == 0 ? 0.353553390593 : 0.5);
          const float got = out[b * 64 + static_cast<std::size_t>(v) * 8 +
                                static_cast<std::size_t>(u)];
          if (!close(got, static_cast<float>(acc), 2e-2f)) return false;
        }
      }
    }
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t blocks_ = 0;
  std::vector<float> in_;
  cl_mem din_ = nullptr, dout_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclDXTCompression — simplified DXT1-style 4x4 block encoder (uint packing)
// ---------------------------------------------------------------------------

class DxtCompression final : public Base {
 public:
  std::string name() const override { return "oclDXTCompression"; }

  cl_int setup(Env& env) override {
    blocks_ = 16384 / env.shrink;
    in_.resize(blocks_ * 16);  // 16 grayscale texels per block
    Rng rng(24);
    for (auto& v : in_) v = rng.next_u32() & 0xFF;
    static const char* kSrc = R"CL(
__kernel void DXTCompress(__global const uint* texels, __global uint* out,
                          int blocks) {
  int b = get_global_id(0);
  if (b >= blocks) return;
  uint mn = 255u;
  uint mx = 0u;
  for (int i = 0; i < 16; i = i + 1) {
    uint t = texels[b * 16 + i];
    mn = min(mn, t);
    mx = max(mx, t);
  }
  uint mask = 0u;
  uint range = mx - mn;
  for (int i = 0; i < 16; i = i + 1) {
    uint t = texels[b * 16 + i];
    uint code = range == 0u ? 0u : ((t - mn) * 3u + range / 2u) / range;
    mask |= code << (2 * i);
  }
  out[b * 2] = (mx << 8) | mn;
  out[b * 2 + 1] = mask;
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "DXTCompress");
    din_ = make_buffer(env, CL_MEM_READ_ONLY, in_.size() * 4);
    dout_ = make_buffer(env, CL_MEM_WRITE_ONLY, blocks_ * 2 * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, din_, in_.data(), in_.size() * 4);
    set_args(k_, din_, dout_, static_cast<cl_int>(blocks_));
    launch1d(env, k_, (blocks_ + 63) / 64 * 64, 64);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<std::uint32_t> out(blocks_ * 2);
    read(env, dout_, out.data(), out.size() * 4);
    for (std::size_t b = 0; b < blocks_; b += 13) {
      std::uint32_t mn = 255;
      std::uint32_t mx = 0;
      for (int i = 0; i < 16; ++i) {
        mn = std::min(mn, in_[b * 16 + static_cast<std::size_t>(i)]);
        mx = std::max(mx, in_[b * 16 + static_cast<std::size_t>(i)]);
      }
      std::uint32_t mask = 0;
      const std::uint32_t range = mx - mn;
      for (int i = 0; i < 16; ++i) {
        const std::uint32_t t = in_[b * 16 + static_cast<std::size_t>(i)];
        const std::uint32_t code =
            range == 0 ? 0 : ((t - mn) * 3 + range / 2) / range;
        mask |= code << (2 * i);
      }
      if (out[b * 2] != ((mx << 8) | mn) || out[b * 2 + 1] != mask) return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t blocks_ = 0;
  std::vector<std::uint32_t> in_;
  cl_mem din_ = nullptr, dout_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclFDTD3d — 3D finite-difference stencil; volume sized by device memory
// ---------------------------------------------------------------------------

class Fdtd3d final : public Base {
 public:
  std::string name() const override { return "oclFDTD3d"; }

  cl_int setup(Env& env) override {
    // like the paper: the problem size depends on the device memory
    const std::uint64_t budget = env.device_mem_bytes / 24;
    std::size_t dim = 16;
    while ((dim + 8) * (dim + 8) * (dim + 8) * 4 * 2 < budget && dim < 64) dim += 8;
    dim_ = std::max<std::size_t>(8, dim / (env.shrink > 2 ? 2 : 1));
    in_.resize(dim_ * dim_ * dim_);
    Rng rng(25);
    for (auto& v : in_) v = rng.next_float(0, 1);
    static const char* kSrc = R"CL(
__kernel void FDTD3d(__global const float* in, __global float* out, int dim) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  int z = get_global_id(2);
  if (x >= dim || y >= dim || z >= dim) return;
  int idx = (z * dim + y) * dim + x;
  if (x == 0 || y == 0 || z == 0 || x == dim - 1 || y == dim - 1 || z == dim - 1) {
    out[idx] = in[idx];
    return;
  }
  float acc = in[idx] * 0.4f;
  acc += in[idx - 1] * 0.1f;
  acc += in[idx + 1] * 0.1f;
  acc += in[idx - dim] * 0.1f;
  acc += in[idx + dim] * 0.1f;
  acc += in[idx - dim * dim] * 0.1f;
  acc += in[idx + dim * dim] * 0.1f;
  out[idx] = acc;
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "FDTD3d");
    din_ = make_buffer(env, CL_MEM_READ_WRITE, in_.size() * 4);
    dout_ = make_buffer(env, CL_MEM_READ_WRITE, in_.size() * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, din_, in_.data(), in_.size() * 4);
    // two time steps, ping-pong
    for (int step = 0; step < 2; ++step) {
      set_args(k_, step == 0 ? din_ : dout_, step == 0 ? dout_ : din_,
               static_cast<cl_int>(dim_));
      const std::size_t g[3] = {dim_, dim_, dim_};
      const std::size_t l[3] = {8, 4, 2};
      note(clEnqueueNDRangeKernel(env.queue, k_, 3, nullptr, g,
                                  dim_ % 8 == 0 ? l : nullptr, 0, nullptr,
                                  nullptr));
    }
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> got(in_.size());
    read(env, din_, got.data(), got.size() * 4);  // after 2 steps: back in din_
    // host reference, 2 steps
    std::vector<float> a = in_;
    std::vector<float> b(a.size());
    const auto dim = static_cast<int>(dim_);
    for (int step = 0; step < 2; ++step) {
      for (int z = 0; z < dim; ++z)
        for (int y = 0; y < dim; ++y)
          for (int x = 0; x < dim; ++x) {
            const std::size_t idx =
                (static_cast<std::size_t>(z) * dim_ + static_cast<std::size_t>(y)) *
                    dim_ +
                static_cast<std::size_t>(x);
            if (x == 0 || y == 0 || z == 0 || x == dim - 1 || y == dim - 1 ||
                z == dim - 1) {
              b[idx] = a[idx];
              continue;
            }
            float acc = a[idx] * 0.4f;
            acc += a[idx - 1] * 0.1f;
            acc += a[idx + 1] * 0.1f;
            acc += a[idx - dim_] * 0.1f;
            acc += a[idx + dim_] * 0.1f;
            acc += a[idx - dim_ * dim_] * 0.1f;
            acc += a[idx + dim_ * dim_] * 0.1f;
            b[idx] = acc;
          }
      std::swap(a, b);
    }
    return close_span(got.data(), a.data(), got.size(), 1e-3f) &&
           status() == CL_SUCCESS;
  }

 private:
  std::size_t dim_ = 0;
  std::vector<float> in_;
  cl_mem din_ = nullptr, dout_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclHistogram — 256-bin histogram with global atomics
// ---------------------------------------------------------------------------

class Histogram final : public Base {
 public:
  std::string name() const override { return "oclHistogram"; }

  cl_int setup(Env& env) override {
    n_ = (1 << 20) / env.shrink;
    in_.resize(n_);
    Rng rng(26);
    for (auto& v : in_) v = rng.next_u32() & 0xFF;
    static const char* kSrc = R"CL(
__kernel void histogram256(__global const uint* data, __global uint* hist, int n) {
  int i = get_global_id(0);
  if (i < n) atomic_add(&hist[data[i] & 0xFFu], 1u);
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "histogram256");
    din_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * 4);
    dhist_ = make_buffer(env, CL_MEM_READ_WRITE, 256 * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, din_, in_.data(), n_ * 4);
    const std::vector<std::uint32_t> zeros(256, 0);
    write(env, dhist_, zeros.data(), 256 * 4);
    set_args(k_, din_, dhist_, static_cast<cl_int>(n_));
    launch1d(env, k_, n_, 128);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<std::uint32_t> hist(256);
    read(env, dhist_, hist.data(), 256 * 4);
    std::vector<std::uint32_t> want(256, 0);
    for (const std::uint32_t v : in_) ++want[v & 0xFF];
    return hist == want && status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint32_t> in_;
  cl_mem din_ = nullptr, dhist_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclScan (ScanLargeArrays) — work-group Blelloch scan + block-offset fixup
// ---------------------------------------------------------------------------

class ScanSdk final : public Base {
 public:
  explicit ScanSdk(std::string label) : label_(std::move(label)) {}
  std::string name() const override { return label_; }

  cl_int setup(Env& env) override {
    n_ = (1 << 14) / env.shrink;
    in_.resize(n_);
    Rng rng(27);
    for (auto& v : in_) v = rng.next_u32() & 0xF;
    static const char* kSrc = R"CL(
#define BLOCK 128
__kernel void scanBlock(__global const uint* in, __global uint* out,
                        __global uint* sums, __local uint* temp, int n) {
  int lid = get_local_id(0);
  int gid = get_global_id(0);
  temp[lid] = gid < n ? in[gid] : 0u;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int off = 1; off < BLOCK; off <<= 1) {
    uint add = 0u;
    if (lid >= off) add = temp[lid - off];
    barrier(CLK_LOCAL_MEM_FENCE);
    temp[lid] += add;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (gid < n) out[gid] = temp[lid];
  if (lid == BLOCK - 1) sums[get_group_id(0)] = temp[lid];
}
__kernel void addOffsets(__global uint* data, __global const uint* sums, int n) {
  int gid = get_global_id(0);
  int grp = get_group_id(0);
  if (gid >= n || grp == 0) return;
  uint acc = 0u;
  for (int g = 0; g < grp; g = g + 1) acc += sums[g];
  data[gid] += acc;
}
)CL";
    cl_program p = make_program(env, kSrc);
    kscan_ = make_kernel(p, "scanBlock");
    kadd_ = make_kernel(p, "addOffsets");
    din_ = make_buffer(env, CL_MEM_READ_ONLY, n_ * 4);
    dout_ = make_buffer(env, CL_MEM_READ_WRITE, n_ * 4);
    groups_ = (n_ + 127) / 128;
    dsums_ = make_buffer(env, CL_MEM_READ_WRITE, groups_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, din_, in_.data(), n_ * 4);
    set_args(kscan_, din_, dout_, dsums_, Local{128 * 4}, static_cast<cl_int>(n_));
    launch1d(env, kscan_, groups_ * 128, 128);
    set_args(kadd_, dout_, dsums_, static_cast<cl_int>(n_));
    launch1d(env, kadd_, groups_ * 128, 128);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<std::uint32_t> out(n_);
    read(env, dout_, out.data(), n_ * 4);
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      acc += in_[i];  // inclusive scan
      if (out[i] != acc) return false;
    }
    return status() == CL_SUCCESS;
  }

 private:
  std::string label_;
  std::size_t n_ = 0, groups_ = 0;
  std::vector<std::uint32_t> in_;
  cl_mem din_ = nullptr, dout_ = nullptr, dsums_ = nullptr;
  cl_kernel kscan_ = nullptr, kadd_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclSortingNetworks — bitonic sort with work-group size 512.  Reproduces the
// paper's portability note: the AMD-like GPU (max 256) rejects the launch.
// ---------------------------------------------------------------------------

class SortingNetworks final : public Base {
 public:
  std::string name() const override { return "oclSortingNetworks"; }

  cl_int setup(Env& env) override {
    n_ = 8192 / (env.shrink > 4 ? 4 : env.shrink);
    local_ = std::min<std::size_t>(512, n_ / 2);
    in_.resize(n_);
    Rng rng(28);
    for (auto& v : in_) v = rng.next_u32() % 100000;
    static const char* kSrc = R"CL(
__kernel void bitonicStep(__global uint* data, int j, int k, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  int ixj = i ^ j;
  if (ixj > i) {
    uint a = data[i];
    uint b = data[ixj];
    int up = (i & k) == 0;
    if ((up && a > b) || (!up && a < b)) {
      data[i] = b;
      data[ixj] = a;
    }
  }
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "bitonicStep");
    dd_ = make_buffer(env, CL_MEM_READ_WRITE, n_ * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, dd_, in_.data(), n_ * 4);
    for (std::size_t k = 2; k <= n_; k <<= 1) {
      for (std::size_t j = k >> 1; j > 0; j >>= 1) {
        set_args(k_, dd_, static_cast<cl_int>(j), static_cast<cl_int>(k),
                 static_cast<cl_int>(n_));
        // deliberately large work-group: 512 like the SDK sample
        launch1d(env, k_, n_, local_);
      }
    }
    return finish(env);
  }

  bool verify(Env& env) override {
    if (status() != CL_SUCCESS) return false;  // e.g. AMD-like GPU: WG too big
    std::vector<std::uint32_t> out(n_);
    read(env, dd_, out.data(), n_ * 4);
    std::vector<std::uint32_t> want = in_;
    std::sort(want.begin(), want.end());
    return out == want;
  }

 private:
  std::size_t n_ = 0, local_ = 0;
  std::vector<std::uint32_t> in_;
  cl_mem dd_ = nullptr;
  cl_kernel k_ = nullptr;
};

// ---------------------------------------------------------------------------
// oclRadixSort — 4-bit LSD radix sort: per-pass count (atomics), exclusive
// scan of 16 buckets, stable scatter by a single ordering pass per bucket
// ---------------------------------------------------------------------------

class RadixSort final : public Base {
 public:
  std::string name() const override { return "oclRadixSort"; }

  cl_int setup(Env& env) override {
    n_ = 32768 / env.shrink;
    in_.resize(n_);
    Rng rng(29);
    for (auto& v : in_) v = rng.next_u32() & 0xFFFF;
    static const char* kSrc = R"CL(
__kernel void radixCount(__global const uint* keys, __global uint* counts,
                         int shift, int n) {
  int i = get_global_id(0);
  if (i < n) atomic_add(&counts[(keys[i] >> shift) & 15u], 1u);
}
__kernel void radixScatter(__global const uint* keys, __global uint* out,
                           __global uint* offsets, int shift, int n) {
  // single work-item stable scatter (keeps the pass stable without a full
  // per-element rank computation; the API-call pattern is what matters here)
  int lid = get_global_id(0);
  if (lid != 0) return;
  for (int i = 0; i < n; i = i + 1) {
    uint d = (keys[i] >> shift) & 15u;
    uint pos = atomic_add(&offsets[d], 1u);
    out[pos] = keys[i];
  }
}
)CL";
    cl_program p = make_program(env, kSrc);
    kcount_ = make_kernel(p, "radixCount");
    kscatter_ = make_kernel(p, "radixScatter");
    da_ = make_buffer(env, CL_MEM_READ_WRITE, n_ * 4);
    db_ = make_buffer(env, CL_MEM_READ_WRITE, n_ * 4);
    dcounts_ = make_buffer(env, CL_MEM_READ_WRITE, 16 * 4);
    return status();
  }

  cl_int run(Env& env) override {
    write(env, da_, in_.data(), n_ * 4);
    cl_mem src = da_;
    cl_mem dst = db_;
    for (int shift = 0; shift < 16; shift += 4) {
      const std::vector<std::uint32_t> zeros(16, 0);
      write(env, dcounts_, zeros.data(), 16 * 4);
      set_args(kcount_, src, dcounts_, shift, static_cast<cl_int>(n_));
      launch1d(env, kcount_, (n_ + 63) / 64 * 64, 64);
      // host-side exclusive scan of 16 counters (many small API calls —
      // exactly the per-pass round trips the SDK sample performs)
      std::vector<std::uint32_t> counts(16);
      read(env, dcounts_, counts.data(), 16 * 4);
      std::vector<std::uint32_t> offsets(16, 0);
      std::uint32_t acc = 0;
      for (int d = 0; d < 16; ++d) {
        offsets[static_cast<std::size_t>(d)] = acc;
        acc += counts[static_cast<std::size_t>(d)];
      }
      write(env, dcounts_, offsets.data(), 16 * 4);
      set_args(kscatter_, src, dst, dcounts_, shift, static_cast<cl_int>(n_));
      launch1d(env, kscatter_, 64, 64);
      std::swap(src, dst);
    }
    result_ = src;
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<std::uint32_t> out(n_);
    read(env, result_, out.data(), n_ * 4);
    std::vector<std::uint32_t> want = in_;
    std::sort(want.begin(), want.end());
    return out == want && status() == CL_SUCCESS;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint32_t> in_;
  cl_mem da_ = nullptr, db_ = nullptr, dcounts_ = nullptr, result_ = nullptr;
  cl_kernel kcount_ = nullptr, kscatter_ = nullptr;
};

// ---------------------------------------------------------------------------
// KernelCompile — builds several programs; never runs one (excluded from
// Figure 5 like oclBandwidthTest)
// ---------------------------------------------------------------------------

class KernelCompile final : public Base {
 public:
  std::string name() const override { return "KernelCompile"; }
  bool executes_kernel() const override { return false; }

  cl_int setup(Env&) override { return CL_SUCCESS; }

  cl_int run(Env& env) override {
    static const char* kTemplates[] = {
        "__kernel void fa(__global float* d) { int i = get_global_id(0); d[i] = d[i] * 2.0f; }",
        "__kernel void fb(__global float* d) { int i = get_global_id(0); d[i] = sqrt(fabs(d[i])); }",
        "__kernel void fc(__global int* d) { int i = get_global_id(0); d[i] = d[i] ^ 0x5A5A; }",
        "__kernel void fd(__global float* a, __global const float* b) {"
        "  int i = get_global_id(0); a[i] = mad(a[i], b[i], 1.0f); }",
    };
    for (const char* src : kTemplates) {
      cl_program p = make_program(env, src);
      (void)p;
    }
    return status();
  }

  bool verify(Env&) override { return status() == CL_SUCCESS; }

 private:
};

// ---------------------------------------------------------------------------
// image_rotate — image2d_t + sampler_t workload (exercises cl_sampler CPR)
// ---------------------------------------------------------------------------

class ImageRotate final : public Base {
 public:
  std::string name() const override { return "imageRotate"; }

  cl_int setup(Env& env) override {
    w_ = 256 / (env.shrink > 4 ? 4 : env.shrink);
    h_ = w_;
    in_.resize(w_ * h_ * 4);
    Rng rng(31);
    for (auto& v : in_) v = rng.next_float(0, 1);
    static const char* kSrc = R"CL(
__kernel void rotate90(__global float* out, image2d_t img, sampler_t smp,
                       int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= w || y >= h) return;
  float4 px = read_imagef(img, smp, (int2)(y, x));
  out[(y * w + x) * 4] = px.x;
  out[(y * w + x) * 4 + 1] = px.y;
  out[(y * w + x) * 4 + 2] = px.z;
  out[(y * w + x) * 4 + 3] = px.w;
}
)CL";
    cl_program p = make_program(env, kSrc);
    k_ = make_kernel(p, "rotate90");
    const cl_image_format fmt{CL_RGBA, CL_FLOAT};
    img_ = make_image2d(env, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR, fmt, w_, h_,
                        in_.data());
    smp_ = make_sampler(env, CL_FALSE, CL_ADDRESS_CLAMP_TO_EDGE, CL_FILTER_NEAREST);
    dout_ = make_buffer(env, CL_MEM_WRITE_ONLY, in_.size() * 4);
    return status();
  }

  cl_int run(Env& env) override {
    set_args(k_, dout_, img_, smp_, static_cast<cl_int>(w_),
             static_cast<cl_int>(h_));
    launch2d(env, k_, w_, h_, 8, 8);
    return finish(env);
  }

  bool verify(Env& env) override {
    std::vector<float> out(in_.size());
    read(env, dout_, out.data(), out.size() * 4);
    for (std::size_t y = 0; y < h_; y += 7)
      for (std::size_t x = 0; x < w_; x += 5)
        for (std::size_t ch = 0; ch < 4; ++ch)
          if (out[(y * w_ + x) * 4 + ch] != in_[(x * w_ + y) * 4 + ch])
            return false;
    return status() == CL_SUCCESS;
  }

 private:
  std::size_t w_ = 0, h_ = 0;
  std::vector<float> in_;
  cl_mem img_ = nullptr, dout_ = nullptr;
  cl_sampler smp_ = nullptr;
  cl_kernel k_ = nullptr;
};

}  // namespace

std::unique_ptr<Workload> make_convolution_separable() {
  return std::make_unique<ConvolutionSeparable>();
}
std::unique_ptr<Workload> make_dct8x8() { return std::make_unique<Dct8x8>(); }
std::unique_ptr<Workload> make_dxt_compression() {
  return std::make_unique<DxtCompression>();
}
std::unique_ptr<Workload> make_fdtd3d() { return std::make_unique<Fdtd3d>(); }
std::unique_ptr<Workload> make_histogram() { return std::make_unique<Histogram>(); }
std::unique_ptr<Workload> make_scan_sdk() {
  return std::make_unique<ScanSdk>("oclScanLargeGPU");
}
std::unique_ptr<Workload> make_scan_shoc() {
  return std::make_unique<ScanSdk>("Scan");
}
std::unique_ptr<Workload> make_sorting_networks() {
  return std::make_unique<SortingNetworks>();
}
std::unique_ptr<Workload> make_radix_sort() { return std::make_unique<RadixSort>(); }
std::unique_ptr<Workload> make_kernel_compile() {
  return std::make_unique<KernelCompile>();
}
std::unique_ptr<Workload> make_image_rotate() { return std::make_unique<ImageRotate>(); }

}  // namespace workloads
