// harness.h — runs workloads under either binding and measures virtual time.
//
// "One program run" in the paper = process start (pays platform init, and
// under CheCL the ~0.08 s proxy fork) + setup + N measured iterations +
// verification.  fresh_process() re-creates that boundary inside one test
// process for both bindings.
#pragma once

#include <string>

#include "core/node.h"
#include "workloads/workload.h"

namespace workloads {

enum class Binding : std::uint8_t { Native, CheCL };

// Resets runtime state as if a new process started on `node`, and installs
// the dispatch table for `binding`.
void fresh_process(Binding binding, const checl::NodeConfig& node);

// Opens an execution environment on the first device of `type` (platform
// selected by substring match on its name when given).
cl_int open_env(Env& env, cl_device_type type,
                const char* platform_substr = nullptr);
void close_env(Env& env);

struct RunResult {
  bool ok = false;         // all API calls succeeded
  bool verified = false;   // results matched the host reference
  std::uint64_t sim_ns = 0;  // virtual time of setup + iterations
  std::string error;
};

// setup + `iterations` runs + verify + teardown, timed on the virtual clock.
RunResult run_workload(Workload& w, Env& env, int iterations);

// Current virtual host time (0 if unavailable).
std::uint64_t now_ns();

}  // namespace workloads
