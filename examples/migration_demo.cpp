// migration_demo.cpp — process migration across heterogeneous nodes
// (Section IV-C): a Stencil2D job starts on the NVIDIA-like node, is
// checkpointed mid-run, migrates to the AMD-like node (different GPU), and
// finally moves onto the CPU device — all with the application's handles
// intact and results verified at every hop.
#include <cstdio>

#include "checl/checl.h"
#include "workloads/factories.h"
#include "workloads/harness.h"

namespace {

const char* device_name(cl_device_id dev) {
  static char name[256];
  clGetDeviceInfo(dev, CL_DEVICE_NAME, sizeof name, name, nullptr);
  return name;
}

}  // namespace

int main() {
  auto& rt = checl::CheclRuntime::instance();
  const char* ckpt = "/tmp/checl_migration_demo.ckpt";

  // start on the NVIDIA-like node
  workloads::fresh_process(workloads::Binding::CheCL, checl::nvidia_node());
  workloads::Env env;
  env.shrink = 2;
  if (workloads::open_env(env, CL_DEVICE_TYPE_GPU) != CL_SUCCESS) {
    std::fprintf(stderr, "no GPU on source node\n");
    return 1;
  }
  std::printf("source node:      %s\n", device_name(env.device));

  auto work = workloads::make_stencil2d();
  if (work->setup(env) != CL_SUCCESS || work->run(env) != CL_SUCCESS) {
    std::fprintf(stderr, "source run failed\n");
    return 1;
  }

  // checkpoint, then "move" to the AMD node (different GPU vendor)
  checl::cpr::PhaseTimes pt;
  if (rt.engine().checkpoint(ckpt, &pt) != CL_SUCCESS) return 1;
  checl::cpr::RestartBreakdown bd;
  if (rt.engine().restart_in_place(ckpt, checl::amd_node(), &bd) != CL_SUCCESS) {
    std::fprintf(stderr, "migration to AMD node failed\n");
    return 1;
  }
  std::printf("migrated to:      %s   (%.1f ms: spawn %.0f, read %.0f, "
              "recreate %.0f — of which programs %.0f)\n",
              device_name(env.device),
              static_cast<double>(bd.total_ns()) / 1e6,
              static_cast<double>(bd.spawn_ns) / 1e6,
              static_cast<double>(bd.read_ns) / 1e6,
              static_cast<double>(bd.recreation_ns()) / 1e6,
              static_cast<double>(bd.class_ns[static_cast<std::size_t>(
                  checl::ObjType::Program)]) / 1e6);

  if (work->run(env) != CL_SUCCESS || !work->verify(env)) {
    std::fprintf(stderr, "verification failed on AMD GPU\n");
    return 1;
  }
  std::printf("verified on AMD GPU\n");

  // second hop: same node, but retarget every device to the CPU
  if (rt.engine().checkpoint(ckpt, &pt) != CL_SUCCESS) return 1;
  rt.retarget_device_type = CL_DEVICE_TYPE_CPU;
  if (rt.engine().restart_in_place(ckpt, std::nullopt, &bd) != CL_SUCCESS) {
    std::fprintf(stderr, "retarget to CPU failed\n");
    return 1;
  }
  rt.retarget_device_type.reset();
  std::printf("retargeted to:    %s\n", device_name(env.device));
  if (work->run(env) != CL_SUCCESS || !work->verify(env)) {
    std::fprintf(stderr, "verification failed on CPU\n");
    return 1;
  }
  std::printf("verified on CPU — migration demo OK\n");

  work->teardown(env);
  workloads::close_env(env);
  return 0;
}
