// mpi_md.cpp — the MPI-version MD program of Figure 6: four thread-ranks run
// independent Lennard-Jones force computations, exchange a global energy-like
// reduction, and take a coordinated checkpoint whose local snapshots are
// aggregated into one global snapshot on NFS.
#include <cstdio>

#include "checl/checl.h"
#include "minimpi/comm.h"
#include "workloads/factories.h"
#include "workloads/harness.h"

int main() {
  checl::NodeConfig node = checl::dual_node();
  node.storage = slimcr::nfs();
  workloads::fresh_process(workloads::Binding::CheCL, node);
  checl::CheclRuntime::instance().checkpoint_path = "/tmp/checl_mpi_md.ckpt";

  const int nranks = 4;
  std::printf("running MD on %d ranks...\n", nranks);

  minimpi::World::run(nranks, [&](minimpi::Comm& comm) {
    workloads::Env env;
    env.shrink = 4;
    if (workloads::open_env(env, CL_DEVICE_TYPE_GPU, "NVIDIA") != CL_SUCCESS) {
      std::fprintf(stderr, "rank %d: no device\n", comm.rank());
      return;
    }
    auto md = workloads::make_md();
    if (md->setup(env) != CL_SUCCESS || md->run(env) != CL_SUCCESS) {
      std::fprintf(stderr, "rank %d: MD failed\n", comm.rank());
      return;
    }
    // an allreduce standing in for the energy exchange step
    const double local = static_cast<double>(comm.rank() + 1);
    const double total = comm.allreduce_sum(local);

    // coordinated checkpoint across all ranks
    const checl::cpr::PhaseTimes pt =
        comm.coordinated_checkpoint("/tmp/checl_mpi_md.ckpt");
    if (comm.rank() == 0) {
      std::printf("allreduce sanity: %.0f (expect %d)\n", total,
                  nranks * (nranks + 1) / 2);
      std::printf("global snapshot: %.2f MB in %.1f ms "
                  "(sync %.1f, pre %.1f, write %.1f, post %.1f)\n",
                  static_cast<double>(pt.file_bytes) / 1e6,
                  static_cast<double>(pt.total_ns()) / 1e6,
                  static_cast<double>(pt.sync_ns) / 1e6,
                  static_cast<double>(pt.pre_ns) / 1e6,
                  static_cast<double>(pt.write_ns) / 1e6,
                  static_cast<double>(pt.post_ns) / 1e6);
    }
    if (!md->verify(env)) std::fprintf(stderr, "rank %d: verify FAILED\n", comm.rank());
    md->teardown(env);
    workloads::close_env(env);
  });

  std::printf("mpi_md OK\n");
  return 0;
}
