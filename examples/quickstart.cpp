// quickstart.cpp — the smallest possible tour of CheCL.
//
// An ordinary OpenCL program (vector add) runs unmodified; the only CheCL-
// specific lines are the node/binding setup and the explicit checkpoint /
// restart trigger (in production the trigger is a SIGUSR1 from the outside
// and the restart is driven by the host checkpointer).
#include <cstdio>
#include <vector>

#include "checl/checl.h"
#include "checl/cl.h"

static const char* kSource = R"CL(
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, int n) {
  int i = get_global_id(0);
  if (i < n) c[i] = a[i] + b[i];
}
)CL";

#define CHECK(x)                                               \
  do {                                                         \
    cl_int err_ = (x);                                         \
    if (err_ != CL_SUCCESS) {                                  \
      std::fprintf(stderr, "%s failed: %d\n", #x, err_);       \
      return 1;                                                \
    }                                                          \
  } while (0)

int main() {
  // --- CheCL setup: pick a node and route cl* through the wrapper layer ----
  auto& rt = checl::CheclRuntime::instance();
  rt.set_node(checl::nvidia_node());
  checl::bind_checl();

  // --- plain OpenCL from here on -------------------------------------------
  cl_platform_id platform;
  CHECK(clGetPlatformIDs(1, &platform, nullptr));
  cl_device_id device;
  CHECK(clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr));
  cl_int err;
  cl_context ctx = clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  CHECK(err);
  cl_command_queue queue = clCreateCommandQueue(ctx, device, 0, &err);
  CHECK(err);

  const int n = 1 << 16;
  std::vector<float> a(n), b(n), c(n);
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = 2.0f * static_cast<float>(i);
  }
  cl_mem da = clCreateBuffer(ctx, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                             n * 4, a.data(), &err);
  CHECK(err);
  cl_mem db = clCreateBuffer(ctx, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                             n * 4, b.data(), &err);
  CHECK(err);
  cl_mem dc = clCreateBuffer(ctx, CL_MEM_WRITE_ONLY, n * 4, nullptr, &err);
  CHECK(err);

  cl_program prog = clCreateProgramWithSource(ctx, 1, &kSource, nullptr, &err);
  CHECK(err);
  CHECK(clBuildProgram(prog, 1, &device, "", nullptr, nullptr));
  cl_kernel kernel = clCreateKernel(prog, "vadd", &err);
  CHECK(err);
  CHECK(clSetKernelArg(kernel, 0, sizeof da, &da));
  CHECK(clSetKernelArg(kernel, 1, sizeof db, &db));
  CHECK(clSetKernelArg(kernel, 2, sizeof dc, &dc));
  CHECK(clSetKernelArg(kernel, 3, sizeof n, &n));

  std::size_t global = n;
  CHECK(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr, 0,
                               nullptr, nullptr));
  CHECK(clFinish(queue));

  // --- transparent checkpoint ------------------------------------------------
  checl::cpr::PhaseTimes times;
  CHECK(rt.engine().checkpoint("/tmp/checl_quickstart.ckpt", &times));
  std::printf("checkpointed: %.2f MB in %.1f ms "
              "(sync %.1f, copy-out %.1f, write %.1f, free %.1f)\n",
              static_cast<double>(times.file_bytes) / 1e6,
              static_cast<double>(times.total_ns()) / 1e6,
              static_cast<double>(times.sync_ns) / 1e6,
              static_cast<double>(times.pre_ns) / 1e6,
              static_cast<double>(times.write_ns) / 1e6,
              static_cast<double>(times.post_ns) / 1e6);

  // --- restart: kill the proxy (the "GPU process" dies), then recover --------
  rt.kill_proxy();
  checl::cpr::RestartBreakdown bd;
  CHECK(rt.engine().restart_in_place("/tmp/checl_quickstart.ckpt", std::nullopt,
                                     &bd));
  std::printf("restarted: %.1f ms object recreation "
              "(mem %.1f ms, programs %.1f ms)\n",
              static_cast<double>(bd.recreation_ns()) / 1e6,
              static_cast<double>(
                  bd.class_ns[static_cast<std::size_t>(checl::ObjType::Mem)]) / 1e6,
              static_cast<double>(
                  bd.class_ns[static_cast<std::size_t>(checl::ObjType::Program)]) / 1e6);

  // --- same handles keep working --------------------------------------------
  CHECK(clEnqueueReadBuffer(queue, dc, CL_TRUE, 0, n * 4, c.data(), 0, nullptr,
                            nullptr));
  for (int i = 0; i < n; ++i) {
    if (c[i] != 3.0f * static_cast<float>(i)) {
      std::fprintf(stderr, "wrong result at %d: %f\n", i, c[i]);
      return 1;
    }
  }
  std::printf("results verified after restart — quickstart OK\n");

  clReleaseKernel(kernel);
  clReleaseProgram(prog);
  clReleaseMemObject(da);
  clReleaseMemObject(db);
  clReleaseMemObject(dc);
  clReleaseCommandQueue(queue);
  clReleaseContext(ctx);
  return 0;
}
