// remote_migration.cpp — migration between two *real* proxy processes over
// TCP (the paper's Section V extension: CheCL wrapper functions talking to a
// remote API proxy via TCP/IP sockets).
//
// Two checl_proxyd daemons play two cluster nodes: "node A" (NVIDIA-like)
// and "node B" (AMD-like). A Stencil2D job runs against node A, checkpoints,
// and restarts against node B — the application process never moves, but its
// entire OpenCL state crosses machines.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "checl/checl.h"
#include "proxy/spawn.h"
#include "workloads/factories.h"
#include "workloads/harness.h"

int main() {
  // Launch the two "nodes".  Each daemon serves exactly one connection, so
  // node B is started when we migrate (a fresh daemon = a fresh node).
  const std::uint16_t port_a = 38531;

  // connect the CheCL runtime to node A over TCP
  auto& rt = checl::CheclRuntime::instance();
  checl::NodeConfig node_a = checl::nvidia_node();
  node_a.name = "node-A (remote, NVIDIA-like)";
  node_a.transport = proxy::Transport::Tcp;
  node_a.tcp_host = "127.0.0.1";
  node_a.tcp_port = port_a;

  // start daemon A in the background (it exits with its single session)
  const pid_t pid_a = ::fork();
  if (pid_a == 0) {
    ::execl(proxy::find_proxyd().c_str(), "checl_proxyd", "--tcp-port", "38531",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }

  rt.reset_all();
  rt.set_node(node_a);
  checl::bind_checl();

  workloads::Env env;
  env.shrink = 4;
  if (workloads::open_env(env, CL_DEVICE_TYPE_GPU) != CL_SUCCESS) {
    std::fprintf(stderr, "cannot reach node A\n");
    return 1;
  }
  char dev_name[256] = {};
  clGetDeviceInfo(env.device, CL_DEVICE_NAME, sizeof dev_name, dev_name, nullptr);
  std::printf("running on %-28s via TCP proxy (pid %d)\n", dev_name,
              static_cast<int>(pid_a));

  auto job = workloads::make_stencil2d();
  if (job->setup(env) != CL_SUCCESS || job->run(env) != CL_SUCCESS) {
    std::fprintf(stderr, "job failed on node A\n");
    return 1;
  }
  checl::cpr::PhaseTimes pt;
  if (rt.engine().checkpoint("/tmp/checl_remote_migration.ckpt", &pt) !=
      CL_SUCCESS) {
    std::fprintf(stderr, "checkpoint failed\n");
    return 1;
  }
  std::printf("checkpointed %.2f MB\n", static_cast<double>(pt.file_bytes) / 1e6);

  // start daemon B and migrate there
  const pid_t pid_b = ::fork();
  if (pid_b == 0) {
    ::execl(proxy::find_proxyd().c_str(), "checl_proxyd", "--tcp-port", "38532",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  checl::NodeConfig node_b = checl::amd_node();
  node_b.name = "node-B (remote, AMD-like)";
  node_b.transport = proxy::Transport::Tcp;
  node_b.tcp_host = "127.0.0.1";
  node_b.tcp_port = 38532;

  checl::cpr::RestartBreakdown bd;
  if (rt.engine().restart_in_place("/tmp/checl_remote_migration.ckpt", node_b,
                                   &bd) != CL_SUCCESS) {
    std::fprintf(stderr, "migration to node B failed\n");
    return 1;
  }
  clGetDeviceInfo(env.device, CL_DEVICE_NAME, sizeof dev_name, dev_name, nullptr);
  std::printf("migrated to  %-28s (%.1f ms total, programs %.1f ms)\n", dev_name,
              static_cast<double>(bd.total_ns()) / 1e6,
              static_cast<double>(bd.class_ns[static_cast<std::size_t>(
                  checl::ObjType::Program)]) / 1e6);

  if (job->run(env) != CL_SUCCESS || !job->verify(env)) {
    std::fprintf(stderr, "verification failed on node B\n");
    return 1;
  }
  std::printf("verified on node B — remote migration OK\n");

  job->teardown(env);
  workloads::close_env(env);
  rt.reset_all();  // closes the TCP session; daemon B exits
  checl::bind_native();
  int status = 0;
  ::waitpid(pid_a, &status, 0);  // daemon A exited when we migrated away
  ::waitpid(pid_b, &status, 0);
  return 0;
}
