// sharded_checkpoint.cpp — checkpointing through the distributed snapstore.
//
// The same vector-add as quickstart, but the checkpoint lands on a fleet of
// four checl_snapd shard daemons (R=2 replication) instead of one local
// directory: NodeConfig::snap_shards is the only extra setup line.  The demo
// then does what the replication exists for — it SIGKILLs one daemon, proves
// the restore still works by failing over to the surviving replicas, and
// runs repair() to return the fleet to full R-way replication.
//
// Environment equivalents of the two config lines (see README):
//   CHECL_SNAP_SHARDS=4 CHECL_SNAP_REPLICAS=2
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "checl/checl.h"
#include "checl/cl.h"
#include "core/stats.h"
#include "snapd/spawn.h"
#include "snapstore/shard.h"

static const char* kSource = R"CL(
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, int n) {
  int i = get_global_id(0);
  if (i < n) c[i] = a[i] + b[i];
}
)CL";

#define CHECK(x)                                               \
  do {                                                         \
    cl_int err_ = (x);                                         \
    if (err_ != CL_SUCCESS) {                                  \
      std::fprintf(stderr, "%s failed: %d\n", #x, err_);       \
      return 1;                                                \
    }                                                          \
  } while (0)

int main() {
  // --- CheCL setup: a node whose checkpoints stripe over 4 shard daemons ---
  auto& rt = checl::CheclRuntime::instance();
  checl::NodeConfig node = checl::nvidia_node();
  node.snap_shards = 4;    // spawn 4 checl_snapd daemons under store_root
  node.snap_replicas = 2;  // every chunk lives on 2 of them
  rt.set_node(node);
  rt.store_checkpoints = true;
  rt.store_root = "/tmp/checl_sharded_example";
  std::filesystem::remove_all(rt.store_root);  // a fresh fleet every run
  checl::bind_checl();

  // --- plain OpenCL from here on -------------------------------------------
  cl_platform_id platform;
  CHECK(clGetPlatformIDs(1, &platform, nullptr));
  cl_device_id device;
  CHECK(clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr));
  cl_int err;
  cl_context ctx = clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  CHECK(err);
  cl_command_queue queue = clCreateCommandQueue(ctx, device, 0, &err);
  CHECK(err);

  const int n = 1 << 16;
  std::vector<float> a(n), b(n), c(n);
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = 2.0f * static_cast<float>(i);
  }
  cl_mem da = clCreateBuffer(ctx, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                             n * 4, a.data(), &err);
  CHECK(err);
  cl_mem db = clCreateBuffer(ctx, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                             n * 4, b.data(), &err);
  CHECK(err);
  cl_mem dc = clCreateBuffer(ctx, CL_MEM_WRITE_ONLY, n * 4, nullptr, &err);
  CHECK(err);

  cl_program prog = clCreateProgramWithSource(ctx, 1, &kSource, nullptr, &err);
  CHECK(err);
  CHECK(clBuildProgram(prog, 1, &device, "", nullptr, nullptr));
  cl_kernel kernel = clCreateKernel(prog, "vadd", &err);
  CHECK(err);
  CHECK(clSetKernelArg(kernel, 0, sizeof da, &da));
  CHECK(clSetKernelArg(kernel, 1, sizeof db, &db));
  CHECK(clSetKernelArg(kernel, 2, sizeof dc, &dc));
  CHECK(clSetKernelArg(kernel, 3, sizeof n, &n));

  std::size_t global = n;
  CHECK(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr, 0,
                               nullptr, nullptr));
  CHECK(clFinish(queue));

  // --- checkpoint onto the fleet --------------------------------------------
  const char* path = "/tmp/checl_sharded_example.ckpt";
  checl::cpr::PhaseTimes times;
  CHECK(rt.engine().checkpoint(path, &times));
  auto* store =
      dynamic_cast<snapstore::ShardedStore*>(rt.engine().store_if_open());
  if (store == nullptr) {
    std::fprintf(stderr, "checkpoint did not go through the sharded store\n");
    return 1;
  }
  std::printf("checkpointed %.2f MB across %u shards (R=%u) in %.1f ms\n",
              static_cast<double>(times.file_bytes) / 1e6,
              store->shard_count(), store->sharded_stats().replicas,
              static_cast<double>(times.total_ns()) / 1e6);

  // --- kill one daemon: real state is gone from that shard ------------------
  snapd::SpawnedShard* victim = store->spawned(1);
  std::printf("killing shard daemon %s (pid %d)\n",
              store->shard_endpoint(1).c_str(), victim->pid);
  snapd::kill_snapd(*victim);

  // --- restart: the restore fails over to the surviving replicas ------------
  rt.kill_proxy();
  CHECK(rt.engine().restart_in_place(path, std::nullopt, nullptr));
  CHECK(clEnqueueReadBuffer(queue, dc, CL_TRUE, 0, n * 4, c.data(), 0, nullptr,
                            nullptr));
  for (int i = 0; i < n; ++i) {
    if (c[i] != 3.0f * static_cast<float>(i)) {
      std::fprintf(stderr, "wrong result at %d: %f\n", i, c[i]);
      return 1;
    }
  }
  std::printf("restored byte-identical with one shard dead (%llu failovers)\n",
              static_cast<unsigned long long>(
                  store->sharded_stats().failovers));

  // --- compute NEW data and checkpoint while the shard is down --------------
  // Fresh chunk content whose replica set includes the dead daemon lands on
  // the survivors only and the manifest records it as under-replicated — the
  // write degrades instead of failing.  (New data matters: re-checkpointing
  // unchanged buffers would dedup against chunks every shard already holds.)
  std::uint32_t lcg = 0x5eed;
  for (int i = 0; i < n; ++i)
    b[i] = static_cast<float>((lcg = lcg * 1664525u + 1013904223u) >> 8);
  CHECK(clEnqueueWriteBuffer(queue, db, CL_TRUE, 0, n * 4, b.data(), 0,
                             nullptr, nullptr));
  CHECK(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr, 0,
                               nullptr, nullptr));
  CHECK(clFinish(queue));
  CHECK(rt.engine().checkpoint(path, &times));
  std::printf("degraded checkpoint: %llu keys under-replicated\n",
              static_cast<unsigned long long>(store->under_replicated_total()));

  // --- revive the shard and repair back to full replication -----------------
  snapd::SpawnedShard revived = snapd::spawn_snapd(store->shard_root(1));
  if (!revived.ok() || !store->reconnect(1, revived.port)) {
    std::fprintf(stderr, "could not revive shard 1: %s\n",
                 revived.error.c_str());
    return 1;
  }
  const snapstore::RepairReport rep = store->repair();
  std::printf("repair: %llu replicas restored, %llu manifests rewritten, "
              "under-replicated now %llu\n",
              static_cast<unsigned long long>(rep.replicas_restored),
              static_cast<unsigned long long>(rep.manifests_rewritten),
              static_cast<unsigned long long>(store->under_replicated_total()));
  if (!rep.status.ok() || rep.replicas_restored == 0 ||
      store->under_replicated_total() != 0) {
    std::fprintf(stderr, "repair left the fleet degraded\n");
    return 1;
  }
  std::printf("stats: %s\n", checl::stats_json(nullptr, store).c_str());
  std::printf("sharded checkpoint demo OK\n");

  clReleaseKernel(kernel);
  clReleaseProgram(prog);
  clReleaseMemObject(da);
  clReleaseMemObject(db);
  clReleaseMemObject(dc);
  clReleaseCommandQueue(queue);
  clReleaseContext(ctx);
  // The revived daemon is ours, not the store's; the store's own fleet shuts
  // down with the runtime.
  rt.reset_all();
  snapd::reap_snapd(revived);
  snapd::kill_snapd(revived);
  return 0;
}
