// processor_selection.cpp — runtime processor selection (Section IV-C): a
// long-running job measures its per-iteration time on the current device,
// estimates the cost of switching devices with the Tm = alpha*M + Tr + beta
// model (checkpoints held on a RAM disk, so alpha is tiny), and migrates
// CPU -> GPU when the predicted payoff beats the migration cost.
#include <cstdio>

#include "checl/checl.h"
#include "workloads/factories.h"
#include "workloads/harness.h"

namespace {

std::uint64_t timed_iteration(workloads::Workload& w, workloads::Env& env) {
  const std::uint64_t t0 = workloads::now_ns();
  w.run(env);
  return workloads::now_ns() - t0;
}

}  // namespace

int main() {
  auto& rt = checl::CheclRuntime::instance();
  checl::NodeConfig node = checl::amd_node();  // AMD: CPU and GPU devices
  node.storage = slimcr::ram_disk();           // volatile storage for device switches
  workloads::fresh_process(workloads::Binding::CheCL, node);
  const char* ckpt = "/tmp/checl_procsel.ckpt";

  // deliberately start the compute-heavy job on the CPU device
  workloads::Env env;
  env.shrink = 2;
  if (workloads::open_env(env, CL_DEVICE_TYPE_CPU) != CL_SUCCESS) {
    std::fprintf(stderr, "no CPU device\n");
    return 1;
  }
  auto job = workloads::make_sgemm();
  if (job->setup(env) != CL_SUCCESS) return 1;

  const std::uint64_t cpu_iter_ns = timed_iteration(*job, env);
  std::printf("iteration on CPU device: %.1f ms\n",
              static_cast<double>(cpu_iter_ns) / 1e6);

  // probe migration cost: checkpoint once to learn the file size, then apply
  // the prediction model with RAM-disk alpha
  checl::cpr::PhaseTimes pt;
  if (rt.engine().checkpoint(ckpt, &pt) != CL_SUCCESS) return 1;
  const slimcr::StorageModel ram = slimcr::ram_disk();
  checl::migration::Model model;
  model.alpha_ns_per_byte = 1e9 / ram.write_bytes_per_sec + 1e9 / ram.read_bytes_per_sec;
  model.beta_ns = static_cast<double>(node.ipc.spawn_ns) + 2e6;
  // Tr estimate: one AMD recompile of this program
  const std::uint64_t tr_est = 95'000'000;
  const std::uint64_t migrate_cost = model.predict_ns(pt.file_bytes, tr_est);
  std::printf("predicted migration cost: %.1f ms (file %.2f MB on RAM disk)\n",
              static_cast<double>(migrate_cost) / 1e6,
              static_cast<double>(pt.file_bytes) / 1e6);

  // a remaining-work model: say 50 more iterations; GPU ~20x faster
  const int remaining = 50;
  const std::uint64_t stay_cost = cpu_iter_ns * remaining;
  const std::uint64_t gpu_iter_est = cpu_iter_ns / 20;
  const std::uint64_t move_cost = migrate_cost + gpu_iter_est * remaining;
  std::printf("stay on CPU: %.1f ms | migrate to GPU: %.1f ms\n",
              static_cast<double>(stay_cost) / 1e6,
              static_cast<double>(move_cost) / 1e6);

  if (move_cost < stay_cost) {
    std::printf("decision: MIGRATE\n");
    rt.retarget_device_type = CL_DEVICE_TYPE_GPU;
    checl::cpr::RestartBreakdown bd;
    if (rt.engine().restart_in_place(ckpt, std::nullopt, &bd) != CL_SUCCESS) {
      std::fprintf(stderr, "device switch failed\n");
      return 1;
    }
    rt.retarget_device_type.reset();
    char name[256] = {};
    clGetDeviceInfo(env.device, CL_DEVICE_NAME, sizeof name, name, nullptr);
    std::printf("actual switch took %.1f ms; now on %s\n",
                static_cast<double>(bd.total_ns()) / 1e6, name);
    const std::uint64_t gpu_iter_ns = timed_iteration(*job, env);
    std::printf("iteration on GPU device: %.1f ms (was %.1f ms) — speedup %.1fx\n",
                static_cast<double>(gpu_iter_ns) / 1e6,
                static_cast<double>(cpu_iter_ns) / 1e6,
                static_cast<double>(cpu_iter_ns) /
                    static_cast<double>(gpu_iter_ns));
    if (!job->verify(env)) {
      std::fprintf(stderr, "verification failed after switch\n");
      return 1;
    }
    std::printf("verified after device switch — processor selection OK\n");
  } else {
    std::printf("decision: STAY (migration would not pay off)\n");
  }

  job->teardown(env);
  workloads::close_env(env);
  return 0;
}
