// survive_demo.cpp — kill -9 the API proxy; the application keeps running.
//
// The same vector-add loop as quickstart, but with the self-healing runtime
// on (CheclRuntime::supervise).  Every few iterations the demo SIGKILLs its
// own forked checl_proxyd — the worst case the paper's API-proxy design can
// face, since *all* OpenCL state lives in that process.  The supervisor
// detects the dead channel mid-call, forks a fresh proxy, re-materializes
// every live object through the restore plan, replays the kernel-argument
// journal, and re-issues the interrupted call.  The loop below never sees
// anything but CL_SUCCESS, and the final vector is bit-exact.
#include <csignal>
#include <cstdio>
#include <vector>

#include "checl/checl.h"
#include "checl/cl.h"
#include "core/stats.h"
#include "core/supervisor.h"

static const char* kSource = R"CL(
__kernel void step(__global float* v, int n) {
  int i = get_global_id(0);
  if (i < n) v[i] = v[i] * 2.0f + 1.0f;
}
)CL";

#define CHECK(x)                                               \
  do {                                                         \
    cl_int err_ = (x);                                         \
    if (err_ != CL_SUCCESS) {                                  \
      std::fprintf(stderr, "%s failed: %d\n", #x, err_);       \
      return 1;                                                \
    }                                                          \
  } while (0)

int main() {
  auto& rt = checl::CheclRuntime::instance();
  rt.set_node(checl::nvidia_node());  // Transport::Process: a real fork+exec
  rt.supervise = true;                // the one self-healing switch
  checl::bind_checl();

  cl_platform_id platform;
  CHECK(clGetPlatformIDs(1, &platform, nullptr));
  cl_device_id device;
  CHECK(clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr));
  cl_int err;
  cl_context ctx = clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  CHECK(err);
  cl_command_queue queue = clCreateCommandQueue(ctx, device, 0, &err);
  CHECK(err);

  const int n = 1 << 12;
  std::vector<float> host(n, 1.0f);
  cl_mem buf = clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                              n * 4, host.data(), &err);
  CHECK(err);
  cl_program prog = clCreateProgramWithSource(ctx, 1, &kSource, nullptr, &err);
  CHECK(err);
  CHECK(clBuildProgram(prog, 1, &device, "", nullptr, nullptr));
  cl_kernel kernel = clCreateKernel(prog, "step", &err);
  CHECK(err);
  CHECK(clSetKernelArg(kernel, 0, sizeof buf, &buf));
  CHECK(clSetKernelArg(kernel, 1, sizeof n, &n));

  float expect = 1.0f;
  std::size_t global = n;
  for (int iter = 0; iter < 9; ++iter) {
    if (iter % 3 == 2) {
      // Murder the proxy between iterations.  The *next* OpenCL call walks
      // straight into the dead channel.
      std::printf("iter %d: kill -9 %d (the proxy)\n", iter,
                  static_cast<int>(rt.proxy_pid()));
      ::kill(rt.proxy_pid(), SIGKILL);
    }
    CHECK(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr,
                                 0, nullptr, nullptr));
    CHECK(clFinish(queue));
    expect = expect * 2.0f + 1.0f;
  }

  CHECK(clEnqueueReadBuffer(queue, buf, CL_TRUE, 0, n * 4, host.data(), 0,
                            nullptr, nullptr));
  for (int i = 0; i < n; ++i)
    if (host[i] != expect) {
      std::fprintf(stderr, "host[%d] = %g, expected %g\n", i, host[i], expect);
      return 1;
    }

  const checl::SupervisorStats& s = rt.supervisor().stats();
  std::printf(
      "survived: %llu recoveries, %llu respawns, %llu objects "
      "re-materialized, last recovery %.2f ms; result bit-exact (%g)\n",
      static_cast<unsigned long long>(s.recoveries),
      static_cast<unsigned long long>(s.respawns),
      static_cast<unsigned long long>(s.replayed_objects),
      static_cast<double>(s.last_recover_ns) / 1e6, expect);
  return 0;
}
