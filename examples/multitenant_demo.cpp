// multitenant_demo.cpp — one checl_proxyd daemon, four tenants sharing it.
//
// PR-2's forked proxy gives every application its own private device process;
// the multi-tenant daemon (src/proxyd) instead runs ONE long-lived event loop
// that any number of applications attach to over a unix socket, each with its
// own shm data plane.  This demo starts the daemon in-process and attaches
// four tenants, each writing its own pattern into its own buffer:
//
//   * namespace isolation — tenant 1 tries to read tenant 0's buffer through
//     a forged handle and gets CL_CHECL_FOREIGN_HANDLE, not someone else's
//     bytes;
//   * fair progress — all four tenants stream concurrently and every one
//     reads its pattern back bit-exact;
//   * accounting — the daemon's per-client ledger (calls, bytes, live
//     handles) shows up in checl::stats_json(), and drops to nothing once
//     the tenants detach.
//
// Against a standalone daemon (`checl_proxyd --socket /tmp/checl-proxyd.sock`)
// the same client code runs unchanged in four separate processes; set
// CHECL_PROXYD_SOCKET and use Transport::Daemon.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "checl/cl_ext.h"
#include "core/stats.h"
#include "proxy/spawn.h"
#include "proxyd/daemon.h"
#include "simcl/specs.h"

namespace {

constexpr int kTenants = 4;
constexpr std::size_t kBytes = 256 * 1024;

std::vector<std::uint8_t> pattern(int seed) {
  std::vector<std::uint8_t> v(kBytes);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::uint8_t>(seed * 131 + i * 7);
  return v;
}

struct Tenant {
  proxy::Spawned conn;
  proxy::RemoteHandle ctx = 0, queue = 0, mem = 0;
  bool ok = false;
};

Tenant attach_tenant(const std::string& socket, int seed) {
  Tenant t;
  proxy::SpawnOptions o;
  o.daemon_socket = socket;
  o.shm_ring_bytes = 4 * kBytes;
  t.conn = proxy::spawn_proxy(proxy::Transport::Daemon, o);
  if (!t.conn.ok()) return t;
  proxy::Client& c = *t.conn.client();
  proxy::IpcCosts costs;
  costs.spawn_ns = 0;
  if (c.configure(simcl::default_platforms(), costs, true) != CL_SUCCESS)
    return t;
  std::vector<proxy::RemoteHandle> plats, devs;
  cl_uint n = 0;
  if (c.get_platform_ids(4, plats, n) != CL_SUCCESS || plats.empty()) return t;
  if (c.get_device_ids(plats[0], CL_DEVICE_TYPE_ALL, 4, devs, n) !=
          CL_SUCCESS ||
      devs.empty())
    return t;
  if (c.create_context({}, {devs.data(), 1}, t.ctx) != CL_SUCCESS) return t;
  if (c.create_queue(t.ctx, devs[0], 0, t.queue) != CL_SUCCESS) return t;
  const std::vector<std::uint8_t> p = pattern(seed);
  if (c.create_buffer(t.ctx, CL_MEM_COPY_HOST_PTR, kBytes, p, t.mem) !=
      CL_SUCCESS)
    return t;
  t.ok = true;
  return t;
}

}  // namespace

int main() {
  const std::string socket =
      "/tmp/checl_multitenant_demo_" + std::to_string(::getpid()) + ".sock";
  proxyd::Daemon daemon(socket, proxyd::options_from_env());
  if (!daemon.ok()) {
    std::fprintf(stderr, "daemon: %s\n", daemon.error().c_str());
    return 1;
  }
  std::thread loop([&daemon] { daemon.run(); });
  std::printf("daemon: pid %d listening on %s\n", static_cast<int>(::getpid()),
              socket.c_str());

  std::vector<Tenant> tenants(kTenants);
  for (int i = 0; i < kTenants; ++i) {
    tenants[i] = attach_tenant(socket, i);
    if (!tenants[i].ok) {
      std::fprintf(stderr, "tenant %d: attach failed (%s)\n", i,
                   tenants[i].conn.error().c_str());
      return 1;
    }
    std::printf("tenant %d: attached\n", i);
  }

  // Isolation: tenant 1 presents tenant 0's buffer handle.  The daemon remaps
  // handles per client, so the forgery is a typed error, never a read of the
  // other tenant's memory.
  {
    std::vector<std::uint8_t> stolen(kBytes);
    proxy::RemoteHandle ev = 0;
    const cl_int err = tenants[1].conn.client()->enqueue_read(
        tenants[1].queue, tenants[0].mem, 0, kBytes, stolen.data(), false, ev);
    std::printf("tenant 1 reading tenant 0's buffer: error %d (%s)\n", err,
                err == CL_CHECL_FOREIGN_HANDLE ? "CL_CHECL_FOREIGN_HANDLE"
                                               : "UNEXPECTED");
    if (err != CL_CHECL_FOREIGN_HANDLE) return 1;
  }

  // Fair progress: all four stream writes+reads concurrently over one daemon.
  std::vector<std::thread> ths;
  std::vector<bool> intact(kTenants, false);
  for (int i = 0; i < kTenants; ++i)
    ths.emplace_back([&tenants, &intact, i] {
      Tenant& t = tenants[static_cast<std::size_t>(i)];
      proxy::Client& c = *t.conn.client();
      const std::vector<std::uint8_t> p = pattern(i);
      proxy::RemoteHandle ev = 0;
      for (int round = 0; round < 8; ++round)
        if (c.enqueue_write(t.queue, t.mem, 0, p, false, ev) != CL_SUCCESS)
          return;
      std::vector<std::uint8_t> back(kBytes);
      if (c.enqueue_read(t.queue, t.mem, 0, kBytes, back.data(), false, ev) !=
          CL_SUCCESS)
        return;
      intact[static_cast<std::size_t>(i)] = back == p;
    });
  for (auto& t : ths) t.join();
  for (int i = 0; i < kTenants; ++i) {
    std::printf("tenant %d: %s\n", i,
                intact[static_cast<std::size_t>(i)] ? "pattern bit-exact"
                                                    : "CORRUPTED");
    if (!intact[static_cast<std::size_t>(i)]) return 1;
  }

  const proxyd::Stats busy = daemon.stats();
  std::printf("daemon ledger: %llu clients attached, %llu calls served\n",
              static_cast<unsigned long long>(busy.clients_current),
              static_cast<unsigned long long>(busy.calls));
  std::printf("stats_json (while attached): %s\n",
              checl::stats_json(nullptr, nullptr).c_str());

  for (auto& t : tenants) t.conn.stop();
  // Disconnects are processed by the event loop, not by stop(); give it a
  // moment to reap all four sessions before reading the ledger.
  proxyd::Stats idle = daemon.stats();
  for (int spin = 0; spin < 200 && idle.clients_current != 0; ++spin) {
    ::usleep(5000);
    idle = daemon.stats();
  }
  std::printf(
      "after detach: %llu clients, %llu leaked handles, per-client entries "
      "%zu\n",
      static_cast<unsigned long long>(idle.clients_current),
      static_cast<unsigned long long>(idle.leaked_handles),
      idle.per_client.size());
  daemon.stop();
  loop.join();
  const bool clean = idle.clients_current == 0 && idle.leaked_handles == 0 &&
                     idle.per_client.empty();
  std::printf("%s\n", clean ? "multitenant_demo: OK"
                            : "multitenant_demo: LEAKED STATE");
  return clean ? 0 : 1;
}
