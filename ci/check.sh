#!/usr/bin/env bash
# ci/check.sh — the one command a PR must pass.
#
# 1. Tier-1 verify: configure, build, full ctest.  The cpr tests share
#    checkpoint paths under /tmp, so a parallel-ctest failure gets one serial
#    rerun before counting as real.
# 2. AddressSanitizer slice: rebuild the snapstore + checkpoint + replay
#    stack with -DCHECL_SANITIZE=address and run its tests plus the
#    snapstore_micro smoke — the store's async pipeline, the chunk codecs,
#    and the parallel restore executor (worker threads recreating a wave
#    concurrently) are exactly the kind of code ASan pays for.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"

echo "== tier-1: ctest =="
if ! (cd build && ctest --output-on-failure -j"${JOBS}"); then
  echo "== tier-1: parallel ctest failed; rerunning failures serially =="
  (cd build && ctest --rerun-failed --output-on-failure)
fi

echo "== asan: configure + build snapstore/checkpoint slice =="
cmake -B build-asan -S . -DCHECL_SANITIZE=address >/dev/null
cmake --build build-asan -j"${JOBS}" \
  --target test_snapstore test_slimcr test_cpr test_replay checl_proxyd \
  snapstore_micro

echo "== asan: run =="
(
  cd build-asan
  export CHECL_PROXYD="${PWD}/src/proxy/checl_proxyd"
  ./tests/test_snapstore
  ./tests/test_slimcr
  ./tests/test_cpr
  ./tests/test_replay
  ./bench/snapstore_micro --smoke
)

echo "ci/check.sh: all green"
