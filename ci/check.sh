#!/usr/bin/env bash
# ci/check.sh — the one command a PR must pass.
#
# 1. Tier-1 verify: configure, build, full ctest over the tier1 label.  The
#    cpr tests share checkpoint paths under /tmp, so a parallel-ctest failure
#    gets one serial rerun before counting as real.
# 2. Chaos slice: the crash-schedule torture tests (ctest label: chaos) with
#    their fixed default seed — deterministic, so a red run here is a real
#    regression, and every failure line carries its own CHECL_CHAOS_SEED
#    repro command.
# 3. AddressSanitizer slice: rebuild the snapstore + checkpoint + replay
#    stack with -DCHECL_SANITIZE=address and run its tests, the
#    snapstore_micro smoke, and a fixed-seed chaos sweep (~1 s, budget 60 s)
#    — fault paths (torn writes, rollbacks, proxy death) exercise exactly
#    the cleanup code ASan pays for.  On a chaos failure the failing seed is
#    saved to an artifact file for the CI run to upload.
# 4. Survival: the survive-eligible slice of the same fixed-seed schedules,
#    with the self-healing runtime ON, still under ASan — every case must
#    complete with zero app-visible CL errors and byte-identical output
#    (recovery/replay paths are where use-after-free bugs would live).
#    Emits BENCH_recovery.json (MTTR distribution); the tier-1 build also
#    emits BENCH_ipc.json (per-RPC trajectory), BENCH_kernel.json
#    (interp-vs-VM kernel speedups), BENCH_proxyd.json (multi-tenant
#    daemon scaling + fairness), and BENCH_ckpt.json (live pre-copy vs
#    stop-the-world checkpoint pause) so all are machine-readable.
# 5. Live slice: the live pre-copy engine's chaos sites
#    (precopy_round_crash, dirty_map_desync) are armed deterministically by
#    tests/live_cpr_test.cpp, which also pins the dirty-map superset
#    property — rerun under ASan because aborting a streaming manifest
#    mid-round is exactly the cleanup path ASan pays for.  The fig5
#    --live --smoke gates (pause ratio, byte parity, identical restore)
#    run in tier-1 ctest and in the bench trajectory above.
# 6. Snapd slice: the distributed snapstore's shard-death / corrupt-replica /
#    repair torture tests (tests/snapd_test.cpp) rerun under ASan — every
#    failover and re-replication walks buffers that just lost their writer —
#    and the fig6 --shards sweep emits BENCH_snapd.json (checkpoint time and
#    restore fan-out along the shard series + the repair probe) in tier-1.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="${PWD}"

JOBS="$(nproc 2>/dev/null || echo 4)"
CHAOS_ARTIFACT="${ROOT}/build-asan/chaos-failing-seed.txt"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"

echo "== tier-1: ctest (label tier1) =="
if ! (cd build && ctest -L tier1 --output-on-failure -j"${JOBS}"); then
  echo "== tier-1: parallel ctest failed; rerunning failures serially =="
  (cd build && ctest --rerun-failed --output-on-failure)
fi

echo "== tier-1: bench trajectory (BENCH_ipc.json, BENCH_kernel.json, BENCH_proxyd.json, BENCH_ckpt.json, BENCH_snapd.json, BENCH_recovery.json) =="
(
  cd build
  export CHECL_PROXYD="${PWD}/src/proxy/checl_proxyd"
  export CHECL_SNAPD="${PWD}/src/snapd/checl_snapd"
  timeout 120 ./bench/ipc_micro --smoke --json-out "${ROOT}/BENCH_ipc.json"
  # Multi-tenant daemon: small-call scaling over a client sweep plus the
  # fairness gate (probe p99 next to a greedy bulk streamer).
  timeout 180 ./bench/proxyd_micro --smoke --json-out "${ROOT}/BENCH_proxyd.json"
  # Interp-vs-VM ablation over the fig4 kernels: fails unless the VM wins on
  # every kernel with bit-identical outputs, and records the speedup table.
  timeout 300 ./bench/kernel_micro --smoke --json-out "${ROOT}/BENCH_kernel.json"
  # Live pre-copy vs stop-the-world checkpoint pause: gates the >=5x pause
  # reduction, stored-byte parity, and byte-identical restore (simulated
  # clock, so the ratios are deterministic).
  timeout 180 ./bench/fig5_checkpoint_overhead --live --smoke \
    --json-out "${ROOT}/BENCH_ckpt.json"
  # Distributed snapstore: the MD checkpoint over 1..4 shard daemons must be
  # non-increasing, the parallel restore must fan out >=2x over the serial
  # store, and the kill-one-daemon repair probe must end fully replicated.
  timeout 180 ./bench/fig6_mpi_checkpoint --shards 4 --smoke \
    --json-out "${ROOT}/BENCH_snapd.json"
  # The release build produces the MTTR numbers of record; the ASan stage
  # below re-runs the same sweep as a correctness gate only (its timings
  # are sanitizer-inflated and stay in build-asan/).
  timeout 120 ./bench/chaos_sweep --smoke --survive \
    --json-out "${ROOT}/BENCH_recovery.json"
)

echo "== chaos: ctest (label chaos, fixed seed) =="
(cd build && ctest -L chaos --output-on-failure)

echo "== asan: configure + build snapstore/checkpoint slice =="
cmake -B build-asan -S . -DCHECL_SANITIZE=address >/dev/null
cmake --build build-asan -j"${JOBS}" \
  --target test_snapstore test_snapd test_slimcr test_cpr test_live_cpr \
  test_replay checl_proxyd checl_snapd snapstore_micro chaos_sweep

echo "== asan: run =="
(
  cd build-asan
  export CHECL_PROXYD="${PWD}/src/proxy/checl_proxyd"
  export CHECL_SNAPD="${PWD}/src/snapd/checl_snapd"
  export CHECL_TEST_DATA="${ROOT}/tests/data"
  ./tests/test_snapstore
  # Distributed snapstore torture slice: fixed-seed shard death, corrupt
  # replicas, and repair — the failover/re-replication paths read buffers
  # whose writer just died, exactly where ASan earns its keep.
  ./tests/test_snapd
  ./tests/test_slimcr
  ./tests/test_cpr
  # Live pre-copy slice: streaming-session abort (precopy_round_crash) and
  # dirty-map under-reporting (dirty_map_desync) armed deterministically,
  # plus the seeded dirty-map superset property — all on cleanup-heavy
  # paths (open-manifest abort, provisional-pin release).  Runs on
  # Transport::Thread (one process = one chaos engine for the proxy-side
  # desync site), so every restart_in_place abandons the dead epoch's
  # in-process server-thread objects — same leak class as the recovery
  # test above, hence detect_leaks=0; ASan still checks every touch.
  ASAN_OPTIONS="detect_leaks=0${ASAN_OPTIONS:+:${ASAN_OPTIONS}}" \
    ./tests/test_live_cpr
  # The proxy-death recovery test abandons the dead epoch's in-process
  # server-thread objects (same class the chaos sweep below documents), so
  # leak checking is off for that one test and on for everything else.
  ./tests/test_replay \
    --gtest_filter='-ReplayRestoreTest.RecoveryChainOnlyTravelsWithFailedOps'
  ASAN_OPTIONS="detect_leaks=0${ASAN_OPTIONS:+:${ASAN_OPTIONS}}" \
    ./tests/test_replay \
    --gtest_filter='ReplayRestoreTest.RecoveryChainOnlyTravelsWithFailedOps'
  ./bench/snapstore_micro --smoke
)

echo "== asan: fixed-seed chaos sweep =="
if ! (
  cd build-asan
  export CHECL_PROXYD="${PWD}/src/proxy/checl_proxyd"
  # Leak detection stays off for the sweep alone: proxy-death faults abandon
  # the in-process server thread mid-operation, orphaning the substrate
  # objects its clients held — under Transport::Process the dying daemon's
  # address space reclaims them.  ASan still checks every touch (UAF,
  # overflows) on the rollback/cleanup paths, which is what this stage is
  # for; leak-freedom is checked by the test binaries above.
  export ASAN_OPTIONS="detect_leaks=0${ASAN_OPTIONS:+:${ASAN_OPTIONS}}"
  timeout 60 ./bench/chaos_sweep --smoke 2> >(tee chaos_sweep.stderr >&2)
); then
  # Save the failing schedule's repro command where CI can pick it up.
  grep -A1 '^FAIL case' build-asan/chaos_sweep.stderr \
    > "${CHAOS_ARTIFACT}" 2>/dev/null || true
  echo "asan chaos sweep failed; repro saved to ${CHAOS_ARTIFACT}:"
  cat "${CHAOS_ARTIFACT}" 2>/dev/null || true
  exit 1
fi

echo "== survival: supervised fixed-seed sweep under asan =="
if ! (
  cd build-asan
  export CHECL_PROXYD="${PWD}/src/proxy/checl_proxyd"
  # Same leak-detection rationale as the sweep above: the proxy-death faults
  # this stage *recovers from* still abandon the dead epoch's server thread.
  export ASAN_OPTIONS="detect_leaks=0${ASAN_OPTIONS:+:${ASAN_OPTIONS}}"
  timeout 120 ./bench/chaos_sweep --smoke --survive \
    --json-out "${ROOT}/build-asan/BENCH_recovery.json" \
    2> >(tee survive_sweep.stderr >&2)
); then
  grep -A1 '^FAIL survive case' build-asan/survive_sweep.stderr \
    > "${CHAOS_ARTIFACT}" 2>/dev/null || true
  echo "survival sweep failed; repro saved to ${CHAOS_ARTIFACT}:"
  cat "${CHAOS_ARTIFACT}" 2>/dev/null || true
  exit 1
fi

echo "ci/check.sh: all green"
