// supervisor_test.cpp — the self-healing runtime, tested at its seams.
//
// Covers the supervision layer from four angles:
//   * the per-opcode replayability table is total (a new opcode added to
//     proxy/opcodes.h without a classification fails here, by construction);
//   * violent proxy deaths in a respawn loop never accumulate zombies
//     (proxy/spawn.cpp's per-pid deferred-reap registry);
//   * a recovery — successful or failed — is narrated end to end: the
//     supervisor's chain for transparent recoveries, Engine::last_error()'s
//     "[recovery: ...]" suffix for ones the engine had to surface;
//   * losing a device across a recovery degrades gracefully onto a surviving
//     one (§IV-C re-placement), counted and named.
//
// Uses the chaos_harness add1 scenario: buffer value == iterations run, so
// "work survived the crash" is a single float comparison.
#include <gtest/gtest.h>
#include <sys/types.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "chaos_harness.h"
#include "core/cpr.h"
#include "core/runtime.h"
#include "core/supervisor.h"
#include "proxy/opcodes.h"
#include "proxy/spawn.h"

namespace {

using chaos_harness::detail::Scenario;

// ---------------------------------------------------------------------------
// replayability table coverage
// ---------------------------------------------------------------------------

TEST(OpcodeTable, EveryOpcodeIsClassifiedAndNamed) {
  using proxy::Op;
  for (std::uint32_t i = static_cast<std::uint32_t>(Op::Configure);
       i < static_cast<std::uint32_t>(Op::kOpCount); ++i) {
    const Op op = static_cast<Op>(i);
    EXPECT_NE(proxy::replayability(op), proxy::Replay::Unclassified)
        << "opcode " << i << " (" << proxy::op_name(op) << ") has no "
        << "replayability classification — the supervisor cannot decide "
        << "whether to re-issue it after a recovery.  Add it to "
        << "replayability() in proxy/opcodes.h.";
    EXPECT_STRNE(proxy::op_name(op), "?")
        << "opcode " << i << " has no name in op_name()";
  }
}

// ---------------------------------------------------------------------------
// zombie control
// ---------------------------------------------------------------------------

// 'Z' in /proc/<pid>/stat field 3 (the char after the comm's closing paren).
bool is_zombie(pid_t pid) {
  std::ifstream f("/proc/" + std::to_string(pid) + "/stat");
  if (!f) return false;  // no proc entry at all: fully reaped
  std::string stat;
  std::getline(f, stat);
  const std::size_t rp = stat.rfind(')');
  if (rp == std::string::npos || rp + 2 >= stat.size()) return false;
  return stat[rp + 2] == 'Z';
}

TEST(ZombieReap, RespawnLoopLeavesNoZombies) {
  proxy::Spawned s = proxy::spawn_proxy(proxy::Transport::Process);
  ASSERT_TRUE(s.ok()) << s.error();

  std::vector<pid_t> killed;
  for (int i = 0; i < 3; ++i) {
    const pid_t pid = s.pid();
    ASSERT_GT(pid, 0);
    ::kill(pid, SIGKILL);  // the "kill -9 the proxy" of the README demo
    killed.push_back(pid);
    ASSERT_TRUE(
        s.revive(proxy::Transport::Process, proxy::spawn_options_from_env()))
        << s.error();
    ASSERT_EQ(s.client()->ping(), CL_SUCCESS);
  }

  // revive() parks corpses for non-blocking reaps; a SIGKILLed child may
  // take a beat to actually exit, so poll instead of asserting instantly.
  for (int i = 0; i < 200 && proxy::pending_children() > 0; ++i) {
    proxy::reap_exited_children();
    ::usleep(10'000);
  }
  EXPECT_EQ(proxy::pending_children(), 0u)
      << "respawn loop left unreaped proxy children";
  for (const pid_t pid : killed)
    EXPECT_FALSE(is_zombie(pid)) << "pid " << pid << " is a zombie";
  s.stop();
}

// ---------------------------------------------------------------------------
// recovery narration
// ---------------------------------------------------------------------------

struct SupervisedScenario {
  checl::CheclRuntime& rt = checl::CheclRuntime::instance();
  chaoskit::Engine& chaos = chaoskit::Engine::instance();
  Scenario sc;

  bool up(checl::NodeConfig node) {
    chaos.disarm();
    rt.reset_all();
    node.transport = proxy::Transport::Thread;  // in-process: one chaos engine
    rt.set_node(node);
    rt.restore_parallel = false;
    rt.supervise = true;
    checl::bind_checl();
    return sc.create();
  }

  // Arms a first-consultation proxy death; the next RPC must absorb it.
  void arm_proxy_death() {
    chaoskit::Fault f;
    f.site = chaoskit::Site::ProxyDieBeforeReply;
    f.actor = chaoskit::Actor::Proxy;
    f.nth = 1;
    chaos.arm(f);
  }

  // One checked iteration: enqueue + finish, both application-visible.
  cl_int iterate() {
    const std::size_t g = static_cast<std::size_t>(sc.n);
    const cl_int e = clEnqueueNDRangeKernel(sc.queue, sc.kernel, 1, nullptr,
                                            &g, nullptr, 0, nullptr, nullptr);
    if (e != CL_SUCCESS) return e;
    return clFinish(sc.queue);
  }

  ~SupervisedScenario() {
    chaos.disarm();
    rt.reset_all();
    checl::bind_native();
  }
};

TEST(RecoveryChain, SuccessfulRecoveryIsNamedAndCounted) {
  SupervisedScenario t;
  ASSERT_TRUE(t.up(checl::dual_node()));
  ASSERT_EQ(t.iterate(), CL_SUCCESS);

  t.arm_proxy_death();
  EXPECT_EQ(t.iterate(), CL_SUCCESS)
      << "proxy death was application-visible despite supervision";
  EXPECT_TRUE(t.chaos.fired());
  t.chaos.disarm();

  checl::Supervisor& sup = t.rt.supervisor();
  EXPECT_GE(sup.stats().recoveries, 1u);
  EXPECT_GE(sup.stats().respawns, 1u);
  EXPECT_GT(sup.stats().last_recover_ns, 0u);
  const std::string& chain = sup.last_chain();
  EXPECT_NE(chain.find("on opcode "), std::string::npos) << chain;
  EXPECT_NE(chain.find("respawn epoch "), std::string::npos) << chain;
  EXPECT_NE(chain.find("objects"), std::string::npos) << chain;
  EXPECT_NE(chain.find("calls"), std::string::npos) << chain;

  // Both iterations survived: the one before the crash and the one across it.
  std::vector<float> out;
  ASSERT_TRUE(t.sc.read_bytes(out));
  EXPECT_EQ(out[0], 2.0f);
}

TEST(RecoveryChain, FailedRecoverySurfacesInEngineLastError) {
  const char* ckpt = "/tmp/checl_supervisor_test.ckpt";
  SupervisedScenario t;
  ASSERT_TRUE(t.up(checl::dual_node()));
  ASSERT_EQ(t.iterate(), CL_SUCCESS);

  // Recovery must give up immediately: the chain then travels with the
  // failed engine operation instead of being absorbed.
  t.rt.supervisor().respawn_policy.max_attempts = 0;
  t.arm_proxy_death();
  auto& eng = t.rt.engine();
  const cl_int e = eng.checkpoint(ckpt, nullptr);
  EXPECT_TRUE(t.chaos.fired()) << "proxy-death fault never reached its site";
  t.chaos.disarm();

  EXPECT_NE(e, CL_SUCCESS);
  EXPECT_GE(t.rt.supervisor().stats().failed_recoveries, 1u);
  const std::string err = eng.last_error();
  EXPECT_NE(err.find("[recovery: "), std::string::npos) << err;
  EXPECT_NE(err.find("on opcode "), std::string::npos) << err;
  EXPECT_NE(err.find("respawn disabled (max_attempts=0)"), std::string::npos)
      << err;
  std::remove(ckpt);
}

// ---------------------------------------------------------------------------
// graceful degradation
// ---------------------------------------------------------------------------

TEST(DegradedPlacement, DeviceGoneReplacedOnSurvivingDevice) {
  SupervisedScenario t;
  // The scenario lands on the dual node's first GPU (the NVIDIA-like one).
  ASSERT_TRUE(t.up(checl::dual_node()));
  ASSERT_EQ(t.iterate(), CL_SUCCESS);

  // The node "loses" that device: the respawned proxy only offers the
  // AMD-like platform, so recovery must re-place everything there.
  checl::NodeConfig survivor = checl::amd_node();
  survivor.transport = proxy::Transport::Thread;
  t.rt.set_node(survivor);

  t.arm_proxy_death();
  EXPECT_EQ(t.iterate(), CL_SUCCESS)
      << "device loss was application-visible despite supervision";
  EXPECT_TRUE(t.chaos.fired());
  t.chaos.disarm();

  checl::Supervisor& sup = t.rt.supervisor();
  EXPECT_GE(sup.stats().degraded_placements, 1u);
  EXPECT_NE(sup.last_chain().find("degraded placement"), std::string::npos)
      << sup.last_chain();

  // The work moved with the placement: both iterations are in the buffer.
  std::vector<float> out;
  ASSERT_TRUE(t.sc.read_bytes(out));
  EXPECT_EQ(out[0], 2.0f);
}

}  // namespace
