// cpr_test.cpp — the checkpoint/restart engine: phase semantics, data
// integrity across restart (rollback), dependency-ordered recreation, dummy
// events, cross-node migration, device retargeting, fresh-process restore,
// DMTCP mode (proxy killed before checkpoint), and failure injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "checl/checl.h"
#include "checl/cl.h"

namespace {

const char* kSrc = R"CL(
__kernel void add1(__global float* d, int n) {
  int i = get_global_id(0);
  if (i < n) d[i] = d[i] + 1.0f;
}
)CL";

struct Scenario {
  cl_platform_id platform = nullptr;
  cl_device_id device = nullptr;
  cl_context ctx = nullptr;
  cl_command_queue queue = nullptr;
  cl_program prog = nullptr;
  cl_kernel kernel = nullptr;
  cl_mem buf = nullptr;
  int n = 2048;

  void create(cl_device_type type = CL_DEVICE_TYPE_GPU) {
    cl_uint np = 0;
    ASSERT_EQ(clGetPlatformIDs(0, nullptr, &np), CL_SUCCESS);
    std::vector<cl_platform_id> plats(np);
    clGetPlatformIDs(np, plats.data(), nullptr);
    for (cl_platform_id p : plats) {
      if (clGetDeviceIDs(p, type, 1, &device, nullptr) == CL_SUCCESS) {
        platform = p;
        break;
      }
    }
    ASSERT_NE(platform, nullptr);
    cl_int err = CL_SUCCESS;
    ctx = clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    queue = clCreateCommandQueue(ctx, device, 0, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    std::vector<float> zeros(static_cast<std::size_t>(n), 0.0f);
    buf = clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                         static_cast<std::size_t>(n) * 4, zeros.data(), &err);
    ASSERT_EQ(err, CL_SUCCESS);
    prog = clCreateProgramWithSource(ctx, 1, &kSrc, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    ASSERT_EQ(clBuildProgram(prog, 1, &device, "", nullptr, nullptr), CL_SUCCESS);
    kernel = clCreateKernel(prog, "add1", &err);
    ASSERT_EQ(err, CL_SUCCESS);
    ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof buf, &buf), CL_SUCCESS);
    ASSERT_EQ(clSetKernelArg(kernel, 1, sizeof n, &n), CL_SUCCESS);
  }

  void run_add1(int times) {
    const std::size_t g = static_cast<std::size_t>(n);
    for (int i = 0; i < times; ++i)
      ASSERT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &g, nullptr, 0,
                                       nullptr, nullptr),
                CL_SUCCESS);
    ASSERT_EQ(clFinish(queue), CL_SUCCESS);
  }

  float first_value() {
    float v = -1;
    EXPECT_EQ(clEnqueueReadBuffer(queue, buf, CL_TRUE, 0, 4, &v, 0, nullptr,
                                  nullptr),
              CL_SUCCESS);
    return v;
  }

  void release() {
    if (kernel != nullptr) clReleaseKernel(kernel);
    if (prog != nullptr) clReleaseProgram(prog);
    if (buf != nullptr) clReleaseMemObject(buf);
    if (queue != nullptr) clReleaseCommandQueue(queue);
    if (ctx != nullptr) clReleaseContext(ctx);
    *this = Scenario{};
  }
};

class CprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& rt = checl::CheclRuntime::instance();
    rt.reset_all();
    checl::NodeConfig node = checl::dual_node();
    node.transport = proxy::Transport::Process;  // the real thing
    rt.set_node(node);
    checl::bind_checl();
  }
  void TearDown() override {
    checl::CheclRuntime::instance().reset_all();
    checl::bind_native();
    std::remove(path());
  }
  static const char* path() { return "/tmp/checl_cpr_test.ckpt"; }
  checl::cpr::Engine& engine() {
    return checl::CheclRuntime::instance().engine();
  }
};

TEST_F(CprTest, CheckpointPhasesAndFile) {
  Scenario s;
  s.create();
  s.run_add1(3);
  checl::cpr::PhaseTimes pt;
  ASSERT_EQ(engine().checkpoint(path(), &pt), CL_SUCCESS);
  EXPECT_GT(pt.file_bytes, static_cast<std::uint64_t>(s.n) * 4);  // buffer dominates
  EXPECT_GT(pt.write_ns, 0u);
  EXPECT_GT(pt.pre_ns, 0u);
  // write >> post (the CheCUDA contrast: no object destruction needed)
  EXPECT_GT(pt.write_ns, pt.post_ns);
  // snapshots were freed in postprocessing
  auto* mobj = checl::as_checl<checl::MemObj>(s.buf);
  EXPECT_TRUE(mobj->snapshot.empty());
  s.release();
}

TEST_F(CprTest, RestartRollsBackDeviceState) {
  Scenario s;
  s.create();
  s.run_add1(3);
  ASSERT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS);
  s.run_add1(2);
  ASSERT_FLOAT_EQ(s.first_value(), 5.0f);
  checl::cpr::RestartBreakdown bd;
  ASSERT_EQ(engine().restart_in_place(path(), std::nullopt, &bd), CL_SUCCESS);
  EXPECT_FLOAT_EQ(s.first_value(), 3.0f);  // rolled back to the checkpoint
  // and the process keeps computing correctly afterwards
  s.run_add1(1);
  EXPECT_FLOAT_EQ(s.first_value(), 4.0f);
  s.release();
}

TEST_F(CprTest, RestartBreakdownCoversClasses) {
  Scenario s;
  s.create();
  s.run_add1(1);
  ASSERT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS);
  checl::cpr::RestartBreakdown bd;
  ASSERT_EQ(engine().restart_in_place(path(), std::nullopt, &bd), CL_SUCCESS);
  EXPECT_EQ(bd.spawn_ns, checl::CheclRuntime::instance().node().ipc.spawn_ns);
  EXPECT_GT(bd.read_ns, 0u);
  // mem upload and program recompilation must both be visible
  EXPECT_GT(bd.class_ns[static_cast<std::size_t>(checl::ObjType::Mem)], 0u);
  EXPECT_GT(bd.class_ns[static_cast<std::size_t>(checl::ObjType::Program)], 0u);
  // recompilation dominates buffer upload for this small buffer (Figure 7)
  EXPECT_GT(bd.class_ns[static_cast<std::size_t>(checl::ObjType::Program)],
            bd.class_ns[static_cast<std::size_t>(checl::ObjType::Mem)]);
  s.release();
}

TEST_F(CprTest, EventObjectsBecomeDummyMarkers) {
  Scenario s;
  s.create();
  const std::size_t g = static_cast<std::size_t>(s.n);
  cl_event ev = nullptr;
  ASSERT_EQ(clEnqueueNDRangeKernel(s.queue, s.kernel, 1, nullptr, &g, nullptr, 0,
                                   nullptr, &ev),
            CL_SUCCESS);
  ASSERT_EQ(clWaitForEvents(1, &ev), CL_SUCCESS);
  ASSERT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS);
  ASSERT_EQ(engine().restart_in_place(path(), std::nullopt, nullptr), CL_SUCCESS);
  // the old event handle still works and reports complete: it never blocks
  cl_int st = -1;
  ASSERT_EQ(clGetEventInfo(ev, CL_EVENT_COMMAND_EXECUTION_STATUS, sizeof st, &st,
                           nullptr),
            CL_SUCCESS);
  EXPECT_EQ(st, CL_COMPLETE);
  ASSERT_EQ(clWaitForEvents(1, &ev), CL_SUCCESS);
  clReleaseEvent(ev);
  s.release();
}

TEST_F(CprTest, MigrationNvidiaToAmdGpu) {
  auto& rt = checl::CheclRuntime::instance();
  checl::NodeConfig nv = checl::nvidia_node();
  nv.transport = proxy::Transport::Process;
  rt.set_node(nv);
  Scenario s;
  s.create();
  s.run_add1(2);
  ASSERT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS);
  checl::NodeConfig amd = checl::amd_node();
  amd.transport = proxy::Transport::Process;
  checl::cpr::RestartBreakdown bd;
  ASSERT_EQ(engine().restart_in_place(path(), amd, &bd), CL_SUCCESS);
  // the same handle now denotes the AMD GPU
  char name[256] = {};
  ASSERT_EQ(clGetDeviceInfo(s.device, CL_DEVICE_NAME, sizeof name, name, nullptr),
            CL_SUCCESS);
  EXPECT_NE(std::string(name).find("HD5870"), std::string::npos);
  EXPECT_FLOAT_EQ(s.first_value(), 2.0f);
  s.run_add1(1);
  EXPECT_FLOAT_EQ(s.first_value(), 3.0f);
  s.release();
}

TEST_F(CprTest, RetargetGpuToCpu) {
  auto& rt = checl::CheclRuntime::instance();
  Scenario s;
  s.create(CL_DEVICE_TYPE_GPU);
  s.run_add1(1);
  ASSERT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS);
  rt.retarget_device_type = CL_DEVICE_TYPE_CPU;
  ASSERT_EQ(engine().restart_in_place(path(), std::nullopt, nullptr), CL_SUCCESS);
  rt.retarget_device_type.reset();
  cl_device_type t = 0;
  ASSERT_EQ(clGetDeviceInfo(s.device, CL_DEVICE_TYPE, sizeof t, &t, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(t, static_cast<cl_device_type>(CL_DEVICE_TYPE_CPU));
  s.run_add1(1);
  EXPECT_FLOAT_EQ(s.first_value(), 2.0f);
  s.release();
}

TEST_F(CprTest, DmtcpModeProxyKilledBeforeCheckpointRestart) {
  // Section V: with DMTCP the API proxy is killed before checkpointing and
  // restarted right after; CheCL must recover through a fresh proxy.
  Scenario s;
  s.create();
  s.run_add1(2);
  ASSERT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS);
  checl::CheclRuntime::instance().kill_proxy();
  ASSERT_EQ(engine().restart_in_place(path(), std::nullopt, nullptr), CL_SUCCESS);
  EXPECT_FLOAT_EQ(s.first_value(), 2.0f);
  s.release();
}

TEST_F(CprTest, RestoreFreshRebuildsEverything) {
  Scenario s;
  s.create();
  s.run_add1(3);
  ASSERT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS);

  // simulate a brand-new process: drop every CheCL object
  auto& rt = checl::CheclRuntime::instance();
  s.release();
  rt.reset_all();
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Process;
  rt.set_node(node);

  std::unordered_map<std::uint64_t, checl::Object*> map;
  checl::cpr::RestartBreakdown bd;
  ASSERT_EQ(engine().restore_fresh(path(), std::nullopt, &bd, &map), CL_SUCCESS);
  EXPECT_GE(map.size(), 7u);  // platform, device, ctx, queue, mem, prog, kernel

  // find the restored queue + buffer and check the data survived
  cl_command_queue q = nullptr;
  cl_mem m = nullptr;
  for (const auto& [old_id, obj] : map) {
    if (obj->otype == checl::ObjType::Queue)
      q = reinterpret_cast<cl_command_queue>(obj);
    if (obj->otype == checl::ObjType::Mem) m = reinterpret_cast<cl_mem>(obj);
  }
  ASSERT_NE(q, nullptr);
  ASSERT_NE(m, nullptr);
  float v = -1;
  ASSERT_EQ(clEnqueueReadBuffer(q, m, CL_TRUE, 0, 4, &v, 0, nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_FLOAT_EQ(v, 3.0f);
  // release the restored objects
  for (const auto& [old_id, obj] : map) {
    switch (obj->otype) {
      case checl::ObjType::Kernel:
        clReleaseKernel(reinterpret_cast<cl_kernel>(obj));
        break;
      case checl::ObjType::Program:
        clReleaseProgram(reinterpret_cast<cl_program>(obj));
        break;
      case checl::ObjType::Mem:
        clReleaseMemObject(reinterpret_cast<cl_mem>(obj));
        break;
      case checl::ObjType::Queue:
        clReleaseCommandQueue(reinterpret_cast<cl_command_queue>(obj));
        break;
      case checl::ObjType::Context:
        clReleaseContext(reinterpret_cast<cl_context>(obj));
        break;
      default: break;
    }
  }
}

TEST_F(CprTest, CorruptCheckpointFileRejected) {
  Scenario s;
  s.create();
  ASSERT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS);
  {
    std::FILE* f = std::fopen(path(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 64, SEEK_SET);
    std::fputc(0xFF, f);
    std::fclose(f);
  }
  EXPECT_NE(engine().restart_in_place(path(), std::nullopt, nullptr), CL_SUCCESS);
  s.release();
}

TEST_F(CprTest, MissingCheckpointFileRejected) {
  Scenario s;
  s.create();
  EXPECT_NE(engine().restart_in_place("/tmp/does_not_exist.ckpt", std::nullopt,
                                      nullptr),
            CL_SUCCESS);
  s.release();
}

TEST_F(CprTest, CheckpointToUnwritablePathFails) {
  Scenario s;
  s.create();
  EXPECT_NE(engine().checkpoint("/nonexistent_dir/x.ckpt", nullptr), CL_SUCCESS);
  // and the runtime remains usable
  s.run_add1(1);
  EXPECT_FLOAT_EQ(s.first_value(), 1.0f);
  s.release();
}

TEST_F(CprTest, ImmediateModeTriggersOnNextApiCall) {
  auto& rt = checl::CheclRuntime::instance();
  rt.mode = checl::CheckpointMode::Immediate;
  rt.checkpoint_path = path();
  Scenario s;
  s.create();
  rt.request_checkpoint();
  // any API call performs the checkpoint first
  cl_uint np = 0;
  ASSERT_EQ(clGetPlatformIDs(0, nullptr, &np), CL_SUCCESS);
  EXPECT_FALSE(rt.checkpoint_pending());
  EXPECT_GT(rt.last_checkpoint_times().file_bytes, 0u);
  rt.mode = checl::CheckpointMode::Delayed;
  s.release();
}

TEST_F(CprTest, DelayedModeWaitsForSyncPoint) {
  auto& rt = checl::CheclRuntime::instance();
  rt.mode = checl::CheckpointMode::Delayed;
  rt.checkpoint_path = path();
  Scenario s;
  s.create();
  rt.request_checkpoint();
  // non-sync calls do not trigger it
  cl_uint np = 0;
  ASSERT_EQ(clGetPlatformIDs(0, nullptr, &np), CL_SUCCESS);
  EXPECT_TRUE(rt.checkpoint_pending());
  // the next clFinish does
  ASSERT_EQ(clFinish(s.queue), CL_SUCCESS);
  EXPECT_FALSE(rt.checkpoint_pending());
  s.release();
}

TEST_F(CprTest, CheckpointWithUncompletedKernelSynchronizesFirst) {
  auto& rt = checl::CheclRuntime::instance();
  rt.checkpoint_path = path();
  Scenario s;
  s.create();
  // enqueue without finishing, then checkpoint fires right after the enqueue
  rt.arm_checkpoint_after_kernel(1);
  const std::size_t g = static_cast<std::size_t>(s.n);
  ASSERT_EQ(clEnqueueNDRangeKernel(s.queue, s.kernel, 1, nullptr, &g, nullptr, 0,
                                   nullptr, nullptr),
            CL_SUCCESS);
  const checl::cpr::PhaseTimes pt = rt.last_checkpoint_times();
  ASSERT_GT(pt.file_bytes, 0u);
  EXPECT_GT(pt.sync_ns, 0u);  // it had to wait for the in-flight kernel
  // the enqueued kernel completed before the snapshot: state includes it
  EXPECT_FLOAT_EQ(s.first_value(), 1.0f);
  s.release();
}

// ---- incremental checkpointing (paper Section IV-D future work) -----------

TEST_F(CprTest, IncrementalCheckpointSkipsCleanBuffers) {
  auto& rt = checl::CheclRuntime::instance();
  rt.incremental_checkpoints = true;
  Scenario s;
  s.create();
  // a second, read-only buffer that the kernel never touches
  const std::size_t big = 1 << 20;
  std::vector<std::uint8_t> blob(big, 0x5A);
  cl_int err = CL_SUCCESS;
  cl_mem cold = clCreateBuffer(s.ctx, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                               big, blob.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);

  s.run_add1(1);
  checl::cpr::PhaseTimes full;
  ASSERT_EQ(engine().checkpoint("/tmp/checl_incr_full.ckpt", &full), CL_SUCCESS);
  ASSERT_GT(full.file_bytes, big);  // the cold buffer is in the full snapshot

  // dirty only the small working buffer, then take an incremental checkpoint
  s.run_add1(1);
  checl::cpr::PhaseTimes incr;
  ASSERT_EQ(engine().checkpoint("/tmp/checl_incr_delta.ckpt", &incr), CL_SUCCESS);
  EXPECT_LT(incr.file_bytes, full.file_bytes / 4);  // cold data not rewritten
  EXPECT_LT(incr.write_ns, full.write_ns / 2);

  // restore from the delta: data comes from the chain, both buffers intact
  ASSERT_EQ(engine().restart_in_place("/tmp/checl_incr_delta.ckpt", std::nullopt,
                                      nullptr),
            CL_SUCCESS);
  EXPECT_FLOAT_EQ(s.first_value(), 2.0f);
  std::vector<std::uint8_t> out(big, 0);
  ASSERT_EQ(clEnqueueReadBuffer(s.queue, cold, CL_TRUE, 0, big, out.data(), 0,
                                nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(out, blob);

  clReleaseMemObject(cold);
  rt.incremental_checkpoints = false;
  s.release();
  std::remove("/tmp/checl_incr_full.ckpt");
  std::remove("/tmp/checl_incr_delta.ckpt");
}

TEST_F(CprTest, ReadOnlyKernelParamsKeepBuffersClean) {
  auto& rt = checl::CheclRuntime::instance();
  rt.incremental_checkpoints = true;
  const char* src = R"CL(
__kernel void copy(__global const float* src, __global float* dst, int n) {
  int i = get_global_id(0);
  if (i < n) dst[i] = src[i];
}
)CL";
  Scenario s;
  s.create();
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(s.ctx, 1, &src, nullptr, &err);
  ASSERT_EQ(clBuildProgram(p, 1, &s.device, "", nullptr, nullptr), CL_SUCCESS);
  cl_kernel k = clCreateKernel(p, "copy", &err);
  const int n = 1024;
  std::vector<float> ones(static_cast<std::size_t>(n), 1.0f);
  cl_mem in = clCreateBuffer(s.ctx, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                             static_cast<std::size_t>(n) * 4, ones.data(), &err);
  cl_mem out = clCreateBuffer(s.ctx, CL_MEM_WRITE_ONLY,
                              static_cast<std::size_t>(n) * 4, nullptr, &err);
  clSetKernelArg(k, 0, sizeof in, &in);
  clSetKernelArg(k, 1, sizeof out, &out);
  clSetKernelArg(k, 2, sizeof n, &n);
  ASSERT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS);  // all clean now

  const std::size_t g = static_cast<std::size_t>(n);
  ASSERT_EQ(clEnqueueNDRangeKernel(s.queue, k, 1, nullptr, &g, nullptr, 0,
                                   nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clFinish(s.queue), CL_SUCCESS);
  // The substrate's chunk dirty map (whole buffer = one chunk) must show the
  // const parameter kept `in` clean while the written `out` went dirty.
  const auto dirty_bit = [&rt](cl_mem mem) {
    auto* m = checl::as_checl<checl::MemObj>(mem);
    std::uint64_t n = 0;
    std::vector<std::uint8_t> bits;
    EXPECT_EQ(rt.client()->mem_dirty_fetch(m->remote, m->size, false, n, bits),
              CL_SUCCESS);
    return n != 0 && !bits.empty() && (bits[0] & 1) != 0;
  };
  EXPECT_FALSE(dirty_bit(in));
  EXPECT_TRUE(dirty_bit(out));

  clReleaseKernel(k);
  clReleaseProgram(p);
  clReleaseMemObject(in);
  clReleaseMemObject(out);
  rt.incremental_checkpoints = false;
  s.release();
}

TEST_F(CprTest, IncrementalChainAcrossMultipleDeltas) {
  auto& rt = checl::CheclRuntime::instance();
  rt.incremental_checkpoints = true;
  Scenario s;
  s.create();
  s.run_add1(1);
  ASSERT_EQ(engine().checkpoint("/tmp/checl_chain_0.ckpt", nullptr), CL_SUCCESS);
  s.run_add1(1);
  ASSERT_EQ(engine().checkpoint("/tmp/checl_chain_1.ckpt", nullptr), CL_SUCCESS);
  s.run_add1(1);
  ASSERT_EQ(engine().checkpoint("/tmp/checl_chain_2.ckpt", nullptr), CL_SUCCESS);
  s.run_add1(5);
  // restore the middle delta: value must roll back to 2 increments
  ASSERT_EQ(engine().restart_in_place("/tmp/checl_chain_1.ckpt", std::nullopt,
                                      nullptr),
            CL_SUCCESS);
  EXPECT_FLOAT_EQ(s.first_value(), 2.0f);
  rt.incremental_checkpoints = false;
  s.release();
  for (const char* f : {"/tmp/checl_chain_0.ckpt", "/tmp/checl_chain_1.ckpt",
                        "/tmp/checl_chain_2.ckpt"})
    std::remove(f);
}

// ---- snapstore-backed checkpoints (content-addressed store mode) ----------

class CprStoreTest : public CprTest {
 protected:
  void SetUp() override {
    CprTest::SetUp();
    std::filesystem::remove_all(store_root());
    auto& rt = checl::CheclRuntime::instance();
    rt.store_checkpoints = true;
    rt.store_root = store_root();
  }
  void TearDown() override {
    std::filesystem::remove_all(store_root());
    CprTest::TearDown();
  }
  static const char* store_root() { return "/tmp/checl_cpr_store_test"; }
};

TEST_F(CprStoreTest, RepeatCheckpointsPayOnlyForChangedBytes) {
  Scenario s;
  s.create();
  // a large, incompressible buffer the kernel never touches — its chunks
  // must dedup (compression alone can't hide it)
  const std::size_t big = 1 << 20;
  std::vector<std::uint8_t> blob(big);
  std::uint32_t lcg = 12345;
  for (auto& b : blob)  // high bits: the low bits of an LCG cycle too fast
    b = static_cast<std::uint8_t>((lcg = lcg * 1664525u + 1013904223u) >> 24);
  cl_int err = CL_SUCCESS;
  cl_mem cold = clCreateBuffer(s.ctx, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                               big, blob.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);

  s.run_add1(1);
  checl::cpr::PhaseTimes first;
  ASSERT_EQ(engine().checkpoint("ckpt_a", &first), CL_SUCCESS);
  EXPECT_GT(first.logical_bytes, big);

  s.run_add1(1);  // dirties only the small working buffer
  checl::cpr::PhaseTimes second;
  ASSERT_EQ(engine().checkpoint("ckpt_b", &second), CL_SUCCESS);
  // logical payload is unchanged, but the store charged only the new chunks
  EXPECT_GT(second.logical_bytes, big);
  EXPECT_LT(second.file_bytes, first.file_bytes / 4);
  EXPECT_LT(second.write_ns, first.write_ns / 2);

  // both manifests are self-contained: restore the OLDER one first
  ASSERT_EQ(engine().restart_in_place("ckpt_a", std::nullopt, nullptr),
            CL_SUCCESS);
  EXPECT_FLOAT_EQ(s.first_value(), 1.0f);
  ASSERT_EQ(engine().restart_in_place("ckpt_b", std::nullopt, nullptr),
            CL_SUCCESS);
  EXPECT_FLOAT_EQ(s.first_value(), 2.0f);
  std::vector<std::uint8_t> out(big, 0);
  ASSERT_EQ(clEnqueueReadBuffer(s.queue, cold, CL_TRUE, 0, big, out.data(), 0,
                                nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(out, blob);

  // GC of the first checkpoint must not break the second (shared chunks)
  snapstore::StoreIface* st = engine().store_if_open();
  ASSERT_NE(st, nullptr);
  ASSERT_TRUE(st->remove("ckpt_a").ok());
  ASSERT_EQ(engine().restart_in_place("ckpt_b", std::nullopt, nullptr),
            CL_SUCCESS);
  EXPECT_FLOAT_EQ(s.first_value(), 2.0f);

  clReleaseMemObject(cold);
  s.release();
}

TEST_F(CprStoreTest, RestoreFreshFromStoreManifest) {
  Scenario s;
  s.create();
  s.run_add1(3);
  ASSERT_EQ(engine().checkpoint("ckpt_fresh", nullptr), CL_SUCCESS);

  auto& rt = checl::CheclRuntime::instance();
  s.release();
  rt.reset_all();
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Process;
  rt.set_node(node);
  rt.store_checkpoints = true;  // reset_all cleared the mode
  rt.store_root = store_root();

  std::unordered_map<std::uint64_t, checl::Object*> map;
  ASSERT_EQ(engine().restore_fresh("ckpt_fresh", std::nullopt, nullptr, &map),
            CL_SUCCESS);
  cl_command_queue q = nullptr;
  cl_mem m = nullptr;
  for (const auto& [old_id, obj] : map) {
    if (obj->otype == checl::ObjType::Queue)
      q = reinterpret_cast<cl_command_queue>(obj);
    if (obj->otype == checl::ObjType::Mem) m = reinterpret_cast<cl_mem>(obj);
  }
  ASSERT_NE(q, nullptr);
  ASSERT_NE(m, nullptr);
  float v = -1;
  ASSERT_EQ(clEnqueueReadBuffer(q, m, CL_TRUE, 0, 4, &v, 0, nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_FLOAT_EQ(v, 3.0f);
  for (const auto& [old_id, obj] : map) {
    switch (obj->otype) {
      case checl::ObjType::Kernel:
        clReleaseKernel(reinterpret_cast<cl_kernel>(obj));
        break;
      case checl::ObjType::Program:
        clReleaseProgram(reinterpret_cast<cl_program>(obj));
        break;
      case checl::ObjType::Mem:
        clReleaseMemObject(reinterpret_cast<cl_mem>(obj));
        break;
      case checl::ObjType::Queue:
        clReleaseCommandQueue(reinterpret_cast<cl_command_queue>(obj));
        break;
      case checl::ObjType::Context:
        clReleaseContext(reinterpret_cast<cl_context>(obj));
        break;
      default: break;
    }
  }
}

TEST_F(CprStoreTest, CorruptChunkRejectedAndRegionsUntouched) {
  auto& rt = checl::CheclRuntime::instance();
  std::vector<std::int32_t> state{1, 2, 3, 4};
  rt.register_app_region("teststate", state.data(), state.size() * 4);
  rt.store_checkpoints = true;  // re-assert: register may come after SetUp
  Scenario s;
  s.create();
  s.run_add1(1);
  ASSERT_EQ(engine().checkpoint("ckpt_c", nullptr), CL_SUCCESS);

  // bit-flip every chunk's trailing payload byte
  for (const auto& e : std::filesystem::directory_iterator(
           std::string(store_root()) + "/chunks")) {
    std::FILE* f = std::fopen(e.path().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }

  state.assign({7, 7, 7, 7});
  EXPECT_NE(engine().restart_in_place("ckpt_c", std::nullopt, nullptr),
            CL_SUCCESS);
  // typed diagnostic, and the registered region was never touched
  EXPECT_NE(engine().last_error().find("CRC mismatch"), std::string::npos)
      << engine().last_error();
  EXPECT_EQ(state, (std::vector<std::int32_t>{7, 7, 7, 7}));
  // the running process is fully intact
  s.run_add1(1);
  EXPECT_FLOAT_EQ(s.first_value(), 2.0f);
  s.release();
}

// ---- broken incremental chains (flat-file mode) ----------------------------

TEST_F(CprTest, MissingIncrementalBaseFailsWithDiagnostic) {
  auto& rt = checl::CheclRuntime::instance();
  rt.incremental_checkpoints = true;
  std::vector<std::int32_t> state{1, 2, 3, 4};
  rt.register_app_region("teststate", state.data(), state.size() * 4);
  Scenario s;
  s.create();
  // a buffer that stays clean after the base checkpoint, so the delta
  // genuinely depends on its base for this data
  const std::size_t big = 1 << 20;
  std::vector<std::uint8_t> blob(big, 0x5A);
  cl_int err = CL_SUCCESS;
  cl_mem cold = clCreateBuffer(s.ctx, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                               big, blob.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  s.run_add1(1);
  ASSERT_EQ(engine().checkpoint("/tmp/checl_missb_0.ckpt", nullptr), CL_SUCCESS);
  s.run_add1(1);
  ASSERT_EQ(engine().checkpoint("/tmp/checl_missb_1.ckpt", nullptr), CL_SUCCESS);

  std::remove("/tmp/checl_missb_0.ckpt");  // lose the base
  state.assign({7, 7, 7, 7});
  EXPECT_NE(engine().restart_in_place("/tmp/checl_missb_1.ckpt", std::nullopt,
                                      nullptr),
            CL_SUCCESS);
  // the diagnostic names the missing base file...
  EXPECT_NE(engine().last_error().find("checl_missb_0.ckpt"), std::string::npos)
      << engine().last_error();
  // ...registered regions were not half-restored...
  EXPECT_EQ(state, (std::vector<std::int32_t>{7, 7, 7, 7}));
  // ...and the runtime keeps working
  s.run_add1(1);
  EXPECT_FLOAT_EQ(s.first_value(), 3.0f);
  clReleaseMemObject(cold);
  rt.incremental_checkpoints = false;
  s.release();
  std::remove("/tmp/checl_missb_1.ckpt");
}

TEST_F(CprTest, AppRegionsRestoredInPlace) {
  auto& rt = checl::CheclRuntime::instance();
  std::vector<std::int32_t> state{1, 2, 3, 4};
  rt.register_app_region("teststate", state.data(), state.size() * 4);
  Scenario s;
  s.create();
  ASSERT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS);
  state.assign({9, 9, 9, 9});
  ASSERT_EQ(engine().restart_in_place(path(), std::nullopt, nullptr), CL_SUCCESS);
  EXPECT_EQ(state, (std::vector<std::int32_t>{1, 2, 3, 4}));
  s.release();
}

TEST_F(CprTest, LastErrorResetOnEntryByBothRestorePaths) {
  // Regression: restart_in_place cleared last_error() on entry but
  // restore_fresh didn't (and vice versa after a refactor), so a stale
  // diagnostic from an earlier failure could survive a later *successful*
  // restore and be reported as if that restore had failed.  Both paths (and
  // checkpoint) now reset on entry via the same wrapper.
  Scenario s;
  s.create();
  s.run_add1(2);
  ASSERT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS);
  EXPECT_TRUE(engine().last_error().empty());

  // Fail restart_in_place: nonexistent snapshot.
  ASSERT_NE(engine().restart_in_place("/tmp/checl_no_such.ckpt", std::nullopt,
                                      nullptr),
            CL_SUCCESS);
  const std::string first = engine().last_error();
  EXPECT_FALSE(first.empty());

  // A successful restart_in_place must wipe the stale diagnostic.
  ASSERT_EQ(engine().restart_in_place(path(), std::nullopt, nullptr),
            CL_SUCCESS);
  EXPECT_TRUE(engine().last_error().empty()) << engine().last_error();

  // Fail again, then drive the *other* path to success: restore_fresh must
  // also reset on entry, not inherit restart_in_place's leftovers.
  ASSERT_NE(engine().restart_in_place("/tmp/checl_no_such.ckpt", std::nullopt,
                                      nullptr),
            CL_SUCCESS);
  EXPECT_FALSE(engine().last_error().empty());

  auto& rt = checl::CheclRuntime::instance();
  s.release();
  rt.reset_all();
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Process;
  rt.set_node(node);

  // restore_fresh failure produces its own message (naming its own path),
  // not the stale restart_in_place one...
  std::unordered_map<std::uint64_t, checl::Object*> map;
  ASSERT_NE(engine().restore_fresh("/tmp/checl_other_missing.ckpt",
                                   std::nullopt, nullptr, &map),
            CL_SUCCESS);
  EXPECT_NE(engine().last_error().find("checl_other_missing"),
            std::string::npos)
      << "restore_fresh reported a stale diagnostic: "
      << engine().last_error();

  // ...and a successful restore_fresh ends with last_error() empty.
  map.clear();
  ASSERT_EQ(engine().restore_fresh(path(), std::nullopt, nullptr, &map),
            CL_SUCCESS);
  EXPECT_TRUE(engine().last_error().empty()) << engine().last_error();
}

}  // namespace
