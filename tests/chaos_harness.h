// chaos_harness.h — the crash-schedule torture harness behind test_chaos and
// bench/chaos_sweep.
//
// A *schedule* is one fault (site, nth consultation, argument, actor) armed
// at one point of a fixed checkpoint/restore lifecycle; schedules are derived
// from a single integer seed through chaoskit::Prng, so every run is
// reproducible with CHECL_CHAOS_SEED=<n> (and one case with
// CHECL_CHAOS_CASE=<i>).  Each case runs the same small workload:
//
//   create add1 scenario -> run 3 iterations -> checkpoint
//     -> [fault during checkpoint]  or  run 2 more -> [fault during restore]
//     -> assert the failure invariants -> disarm -> recover cleanly
//     -> assert the restored buffer is byte-identical to the checkpointed one
//
// Invariants checked per case (the contract of transparent CPR):
//   * a failed checkpoint/restore leaves the object DB at its prior size;
//   * a fired fault is named by Engine::last_error() ("[chaos: <site>]");
//   * forced executor failures roll back, visible in stats_json()'s
//     restore.rollbacks counter (no leaked remote handles);
//   * a checkpoint corrupted on its way to storage is *rejected* at restore,
//     never half-applied;
//   * after recovery the restored buffer equals the checkpoint-time bytes.
//
// gtest-free on purpose: tests/chaos_test.cpp wraps verdicts in EXPECTs,
// bench/chaos_sweep.cpp tallies them into a site-coverage table.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "chaoskit/chaoskit.h"
#include "checl/checl.h"
#include "checl/cl.h"
#include "core/stats.h"

namespace chaos_harness {

// When in the lifecycle the fault is armed.
enum class ArmPoint : std::uint8_t {
  AtCheckpoint,  // before the checkpoint write (storage-layer faults)
  AtRestore,     // after a clean checkpoint, before restart_in_place
};

struct Schedule {
  chaoskit::Fault fault;
  bool store_mode = false;  // snapstore-backed checkpoints for Store* sites
  ArmPoint when = ArmPoint::AtRestore;
};

struct Verdict {
  bool pass = true;
  bool fired = false;      // the armed fault actually triggered
  bool op_failed = false;  // the faulted operation returned an error
  std::string detail;      // first broken invariant
  // Survive-mode extras (run_schedule_survive): what the self-healing
  // runtime reported absorbing, and how long the recovery took.
  std::uint64_t recoveries = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t recover_ns = 0;

  void fail(std::string d) {
    if (pass) {
      pass = false;
      detail = std::move(d);
    }
  }
};

inline std::string schedule_name(const Schedule& s) {
  std::string n = chaoskit::site_name(s.fault.site);
  n += ":" + std::to_string(s.fault.nth) + ":" + std::to_string(s.fault.arg);
  n += s.when == ArmPoint::AtCheckpoint ? "@checkpoint" : "@restore";
  if (s.store_mode) n += "+store";
  return n;
}

inline std::string repro_line(std::uint64_t master_seed, std::size_t case_index) {
  return "CHECL_CHAOS_SEED=" + std::to_string(master_seed) +
         " CHECL_CHAOS_CASE=" + std::to_string(case_index) + " ./test_chaos";
}

// Derives `count` *distinct* schedules from one seed.  Distinctness is by
// (site, nth, arg): collisions re-draw, so the list is still a pure function
// of the seed.
inline std::vector<Schedule> derive_schedules(std::uint64_t seed,
                                              std::size_t count) {
  using chaoskit::Actor;
  using chaoskit::Site;
  struct SiteSpec {
    Site site;
    Actor actor;
    std::uint32_t max_nth;  // keep nth below the consultations a run produces
    ArmPoint when;
    bool store_mode;
  };
  // Every site the harness knows how to drive deterministically.
  static const SiteSpec kSpecs[] = {
      {Site::IpcShortWrite, Actor::App, 4, ArmPoint::AtRestore, false},
      {Site::IpcSendEpipe, Actor::App, 4, ArmPoint::AtRestore, false},
      {Site::IpcRecvTimeout, Actor::App, 4, ArmPoint::AtRestore, false},
      {Site::ProxyDieBeforeReply, Actor::Proxy, 4, ArmPoint::AtRestore, false},
      {Site::ProxyDieAfterReply, Actor::Proxy, 4, ArmPoint::AtRestore, false},
      {Site::ProxyInjectClError, Actor::Proxy, 4, ArmPoint::AtRestore, false},
      {Site::StoreTornWrite, Actor::Any, 3, ArmPoint::AtCheckpoint, true},
      {Site::StoreEnospc, Actor::Any, 3, ArmPoint::AtCheckpoint, true},
      {Site::StoreBitFlip, Actor::Any, 3, ArmPoint::AtCheckpoint, true},
      {Site::SlimcrTornWrite, Actor::Any, 1, ArmPoint::AtCheckpoint, false},
      {Site::SlimcrEnospc, Actor::Any, 1, ArmPoint::AtCheckpoint, false},
      {Site::SlimcrBitFlip, Actor::Any, 1, ArmPoint::AtCheckpoint, false},
      {Site::ExecCrashBetweenWaves, Actor::Any, 5, ArmPoint::AtRestore, false},
      {Site::ExecWaveFail, Actor::Any, 5, ArmPoint::AtRestore, false},
  };
  static const cl_int kClErrors[] = {
      CL_OUT_OF_RESOURCES, CL_OUT_OF_HOST_MEMORY,
      CL_MEM_OBJECT_ALLOCATION_FAILURE, CL_INVALID_OPERATION};

  chaoskit::Prng rng(seed);
  std::vector<Schedule> out;
  std::set<std::array<std::uint64_t, 3>> seen;
  while (out.size() < count) {
    const SiteSpec& sp =
        kSpecs[rng.below(sizeof kSpecs / sizeof kSpecs[0])];
    Schedule s;
    s.fault.site = sp.site;
    s.fault.actor = sp.actor;
    s.fault.nth = static_cast<std::uint32_t>(rng.below(sp.max_nth));
    s.when = sp.when;
    s.store_mode = sp.store_mode;
    switch (sp.site) {
      case Site::ProxyInjectClError:
      case Site::ExecWaveFail:
        s.fault.arg = kClErrors[rng.below(4)];
        break;
      case Site::StoreBitFlip:
      case Site::SlimcrBitFlip:
        // Slimcr flips count back from the end of the container, so any
        // small offset lands in CRC-covered payload.
        s.fault.arg = static_cast<std::int64_t>(rng.below(1024));
        break;
      default:
        break;
    }
    if (seen.insert({static_cast<std::uint64_t>(s.fault.site), s.fault.nth,
                     static_cast<std::uint64_t>(s.fault.arg)})
            .second)
      out.push_back(s);
  }
  return out;
}

namespace detail {

inline const char* kKernelSrc = R"CL(
__kernel void add1(__global float* d, int n) {
  int i = get_global_id(0);
  if (i < n) d[i] = d[i] + 1.0f;
}
)CL";

// The add1 workload, error-returning (no gtest).
struct Scenario {
  cl_platform_id platform = nullptr;
  cl_device_id device = nullptr;
  cl_context ctx = nullptr;
  cl_command_queue queue = nullptr;
  cl_program prog = nullptr;
  cl_kernel kernel = nullptr;
  cl_mem buf = nullptr;
  int n = 1024;

  bool create() {
    cl_uint np = 0;
    if (clGetPlatformIDs(0, nullptr, &np) != CL_SUCCESS || np == 0) return false;
    std::vector<cl_platform_id> plats(np);
    clGetPlatformIDs(np, plats.data(), nullptr);
    for (cl_platform_id p : plats) {
      if (clGetDeviceIDs(p, CL_DEVICE_TYPE_GPU, 1, &device, nullptr) ==
          CL_SUCCESS) {
        platform = p;
        break;
      }
    }
    if (platform == nullptr) return false;
    cl_int err = CL_SUCCESS;
    ctx = clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
    if (err != CL_SUCCESS) return false;
    queue = clCreateCommandQueue(ctx, device, 0, &err);
    if (err != CL_SUCCESS) return false;
    std::vector<float> zeros(static_cast<std::size_t>(n), 0.0f);
    buf = clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                         static_cast<std::size_t>(n) * 4, zeros.data(), &err);
    if (err != CL_SUCCESS) return false;
    prog = clCreateProgramWithSource(ctx, 1, &kKernelSrc, nullptr, &err);
    if (err != CL_SUCCESS) return false;
    if (clBuildProgram(prog, 1, &device, "", nullptr, nullptr) != CL_SUCCESS)
      return false;
    kernel = clCreateKernel(prog, "add1", &err);
    if (err != CL_SUCCESS) return false;
    if (clSetKernelArg(kernel, 0, sizeof buf, &buf) != CL_SUCCESS) return false;
    return clSetKernelArg(kernel, 1, sizeof n, &n) == CL_SUCCESS;
  }

  // Runs add1 `times` times; statuses ignored (the channel may be dead by
  // design mid-case).
  void run_add1(int times) {
    const std::size_t g = static_cast<std::size_t>(n);
    for (int i = 0; i < times; ++i)
      clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &g, nullptr, 0, nullptr,
                             nullptr);
    clFinish(queue);
  }

  bool read_bytes(std::vector<float>& out) {
    out.assign(static_cast<std::size_t>(n), -1.0f);
    return clEnqueueReadBuffer(queue, buf, CL_TRUE, 0,
                               static_cast<std::size_t>(n) * 4, out.data(), 0,
                               nullptr, nullptr) == CL_SUCCESS;
  }
};

// Pulls one integer counter out of stats_json() output ("\"key\": 123").
inline std::uint64_t counter_from_stats_json(const std::string& json,
                                             const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

inline bool is_exec_site(chaoskit::Site s) {
  return s == chaoskit::Site::ExecCrashBetweenWaves ||
         s == chaoskit::Site::ExecWaveFail;
}

}  // namespace detail

inline const char* chaos_ckpt_path() { return "/tmp/checl_chaos_test.ckpt"; }
inline const char* chaos_store_root() { return "/tmp/checl_chaos_store"; }

// Runs one schedule against a fresh runtime and reports which invariant (if
// any) broke.  Leaves the process-wide runtime reset and chaoskit disarmed.
inline Verdict run_schedule(const Schedule& s) {
  namespace fs = std::filesystem;
  auto& rt = checl::CheclRuntime::instance();
  auto& chaos = chaoskit::Engine::instance();
  Verdict v;

  chaos.disarm();
  rt.reset_all();
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;  // in-process: one chaos engine
  rt.set_node(node);
  // Serial waves keep the executor's consultation order a function of the
  // plan alone, so nth counting stays deterministic.
  rt.restore_parallel = false;
  if (s.store_mode) {
    fs::remove_all(chaos_store_root());
    rt.store_checkpoints = true;
    rt.store_root = chaos_store_root();
  }
  checl::bind_checl();

  const std::string ckpt = s.store_mode ? "chaos_ckpt" : chaos_ckpt_path();
  auto cleanup = [&] {
    chaos.disarm();
    rt.reset_all();
    checl::bind_native();
    std::remove(chaos_ckpt_path());
    std::error_code ec;
    fs::remove_all(chaos_store_root(), ec);
  };

  detail::Scenario sc;
  if (!sc.create()) {
    v.fail("scenario setup failed");
    cleanup();
    return v;
  }
  sc.run_add1(3);
  std::vector<float> expected;
  if (!sc.read_bytes(expected)) {
    v.fail("baseline read failed");
    cleanup();
    return v;
  }

  auto& eng = rt.engine();
  const std::size_t db_before = rt.db().all().size();
  const std::uint64_t rollbacks_before = detail::counter_from_stats_json(
      checl::stats_json(), "rollbacks");
  const std::string site = chaoskit::site_name(s.fault.site);

  cl_int op_err = CL_SUCCESS;
  if (s.when == ArmPoint::AtCheckpoint) {
    chaos.arm(s.fault);
    op_err = eng.checkpoint(ckpt, nullptr);
  } else {
    if (eng.checkpoint(ckpt, nullptr) != CL_SUCCESS) {
      v.fail("clean checkpoint failed: " + eng.last_error());
      cleanup();
      return v;
    }
    sc.run_add1(2);  // diverge, so a successful restore is observable
    chaos.arm(s.fault);
    op_err = eng.restart_in_place(ckpt, std::nullopt, nullptr);
  }
  v.fired = chaos.fired();
  v.op_failed = op_err != CL_SUCCESS;

  if (!v.fired) v.fail("fault never fired (schedule does not reach its site)");

  if (v.op_failed) {
    if (eng.last_error().empty())
      v.fail("failed operation left last_error() empty");
    else if (v.fired &&
             eng.last_error().find("[chaos: " + site + "]") == std::string::npos)
      v.fail("last_error() does not name the culprit site: " + eng.last_error());
    if (rt.db().all().size() != db_before)
      v.fail("object DB size changed across a failed operation");
  }

  // Forced executor failures must show up as a rollback in the public
  // counters — the "no leaked remote handles" ledger.
  if (detail::is_exec_site(s.fault.site) && v.fired) {
    if (!v.op_failed) v.fail("executor fault fired but restore succeeded");
    const std::uint64_t rollbacks_after = detail::counter_from_stats_json(
        checl::stats_json(), "rollbacks");
    if (rollbacks_after != rollbacks_before + 1)
      v.fail("stats_json rollbacks did not record the rolled-back restore");
  }

  // A checkpoint silently corrupted on the way to storage must be rejected
  // when read back — never half-applied.
  if (s.when == ArmPoint::AtCheckpoint && v.fired && !v.op_failed) {
    const cl_int r = eng.restart_in_place(ckpt, std::nullopt, nullptr);
    if (r == CL_SUCCESS) {
      v.fail("restore silently accepted a corrupted checkpoint");
    } else {
      if (eng.last_error().empty())
        v.fail("corrupted-checkpoint restore left last_error() empty");
      else if (eng.last_error().find("[chaos: " + site + "]") ==
               std::string::npos)
        v.fail("corrupted-checkpoint diagnostic does not name the site: " +
               eng.last_error());
      if (rt.db().all().size() != db_before)
        v.fail("object DB size changed across a rejected restore");
    }
  }

  // Recovery: with the fault gone, one clean checkpoint/restore cycle must
  // reproduce the checkpointed bytes exactly.
  chaos.disarm();
  if (s.when == ArmPoint::AtCheckpoint) {
    // Retire the damaged artifact first.  In store mode this is load-bearing:
    // the corrupt chunk sits in the pool under the *original* content hash,
    // so a re-put would dedup against it and re-reference the damage;
    // deleting the manifest drops its refcounts and GCs the bad chunk.
    if (s.store_mode) {
      if (snapstore::StoreIface* st = eng.store_if_open(); st != nullptr)
        st->remove(ckpt);  // may be MissingManifest after an ENOSPC put
    }
    // Re-checkpoint over the (failed or corrupted) artifact, then restore.
    if (eng.checkpoint(ckpt, nullptr) != CL_SUCCESS) {
      v.fail("recovery checkpoint failed: " + eng.last_error());
      cleanup();
      return v;
    }
    sc.run_add1(2);  // diverge before restoring
  }
  if (eng.restart_in_place(ckpt, std::nullopt, nullptr) != CL_SUCCESS) {
    v.fail("recovery restore failed: " + eng.last_error());
    cleanup();
    return v;
  }
  std::vector<float> got;
  if (!sc.read_bytes(got))
    v.fail("post-recovery read failed");
  else if (std::memcmp(got.data(), expected.data(), got.size() * 4) != 0)
    v.fail("restored buffer is not byte-identical to the checkpointed state");
  // ...and the runtime keeps computing.
  sc.run_add1(1);
  std::vector<float> after;
  if (!sc.read_bytes(after) || after[0] != expected[0] + 1.0f)
    v.fail("runtime unusable after recovery");

  cleanup();
  return v;
}

// ---------------------------------------------------------------------------
// Survive mode: the same crash schedules, but with the self-healing runtime
// switched on — supervision for channel/proxy faults, retry-then-degrade for
// single-shot storage faults.  The contract flips: instead of asserting a
// *clean failure*, the run must complete with zero application-visible CL
// errors and a byte-identical result.
// ---------------------------------------------------------------------------

// Which schedules the self-healing runtime is expected to absorb.  Excluded
// on purpose: TornWrite/BitFlip (silent corruption — a blind retry would
// re-reference poisoned chunks; detection-and-rejection is the right
// behavior, covered by run_schedule), ProxyInjectClError (a well-formed error
// *reply* is not a channel failure), and the Exec* sites (they fire inside
// the restore executor itself, whose transactional rollback is the
// recovery).
inline bool survive_eligible(const Schedule& s) {
  using chaoskit::Site;
  switch (s.fault.site) {
    case Site::IpcShortWrite:
    case Site::IpcSendEpipe:
    case Site::IpcRecvTimeout:
    case Site::ProxyDieBeforeReply:
    case Site::ProxyDieAfterReply:
    case Site::StoreEnospc:
    case Site::SlimcrEnospc: return true;
    default: return false;
  }
}

// Runs one survive-eligible schedule under supervision and reports whether
// the application survived it transparently.  The add1 workload's invariant
// is analytic — buffer value == number of iterations run — so byte-identical
// output needs no reference run.
inline Verdict run_schedule_survive(const Schedule& s) {
  namespace fs = std::filesystem;
  auto& rt = checl::CheclRuntime::instance();
  auto& chaos = chaoskit::Engine::instance();
  Verdict v;
  if (!survive_eligible(s)) {
    v.fail("schedule is not survive-eligible");
    return v;
  }

  chaos.disarm();
  rt.reset_all();
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;  // in-process: one chaos engine
  rt.set_node(node);
  rt.restore_parallel = false;
  rt.supervise = true;            // the tentpole under test
  rt.io_retry.max_attempts = 3;   // absorb single-shot storage failures
  if (s.store_mode) {
    fs::remove_all(chaos_store_root());
    rt.store_checkpoints = true;
    rt.store_root = chaos_store_root();
  }
  checl::bind_checl();

  const std::string ckpt = s.store_mode ? "chaos_ckpt" : chaos_ckpt_path();
  auto cleanup = [&] {
    chaos.disarm();
    rt.reset_all();
    checl::bind_native();
    std::remove(chaos_ckpt_path());
    std::error_code ec;
    fs::remove_all(chaos_store_root(), ec);
  };

  detail::Scenario sc;
  if (!sc.create()) {
    v.fail("scenario setup failed");
    cleanup();
    return v;
  }

  // Every CL status is application-visible here; "survives" means none of
  // them ever goes non-CL_SUCCESS.
  int iters = 0;
  auto run_checked = [&](int times) -> cl_int {
    const std::size_t g = static_cast<std::size_t>(sc.n);
    for (int i = 0; i < times; ++i) {
      const cl_int e = clEnqueueNDRangeKernel(sc.queue, sc.kernel, 1, nullptr,
                                              &g, nullptr, 0, nullptr, nullptr);
      if (e != CL_SUCCESS) return e;
      ++iters;
    }
    return clFinish(sc.queue);
  };
  auto check_bytes = [&](const char* when) {
    std::vector<float> got;
    if (!sc.read_bytes(got)) {
      v.fail(std::string("read failed ") + when);
      return;
    }
    const float want = static_cast<float>(iters);
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i] != want) {
        v.fail(std::string("output not byte-identical ") + when + ": [" +
               std::to_string(i) + "] = " + std::to_string(got[i]) +
               ", want " + std::to_string(want));
        return;
      }
    }
  };

  if (run_checked(3) != CL_SUCCESS) {
    v.fail("baseline iterations failed");
    cleanup();
    return v;
  }

  auto& eng = rt.engine();
  if (s.when == ArmPoint::AtCheckpoint) {
    // Storage fault: the checkpoint itself must absorb it via io_retry.
    chaos.arm(s.fault);
    const cl_int ck = eng.checkpoint(ckpt, nullptr);
    v.fired = chaos.fired();
    chaos.disarm();
    if (!v.fired)
      v.fail("fault never fired (schedule does not reach its site)");
    else if (ck != CL_SUCCESS)
      v.fail("supervised checkpoint did not absorb the storage fault: " +
             eng.last_error());
    if (run_checked(2) != CL_SUCCESS) v.fail("post-checkpoint iterations failed");
    if (v.pass) {
      if (eng.restart_in_place(ckpt, std::nullopt, nullptr) != CL_SUCCESS) {
        v.fail("restore after survived checkpoint failed: " + eng.last_error());
      } else {
        iters = 3;  // restore rewound the buffer to checkpoint time
        check_bytes("after restore");
        if (run_checked(1) != CL_SUCCESS) v.fail("runtime unusable after restore");
      }
    }
  } else {
    // Channel/proxy fault mid-run: supervision must reconnect and replay so
    // the application never sees an error.  Some schedules aim the fault at
    // a consultation count past the next two calls; keep issuing work (a
    // bounded amount — the schedule is still deterministic) until it fires.
    chaos.arm(s.fault);
    cl_int e = run_checked(2);
    for (int extra = 0; e == CL_SUCCESS && !chaos.fired() && extra < 8; ++extra)
      e = run_checked(1);
    v.fired = chaos.fired();
    chaos.disarm();
    if (!v.fired)
      v.fail("fault never fired (schedule does not reach its site)");
    else if (e != CL_SUCCESS)
      v.fail(std::string("application-visible CL error under supervision: ") +
             std::to_string(e));
    check_bytes("after recovery");
    if (run_checked(1) != CL_SUCCESS)
      v.fail("runtime unusable after recovery");
    else
      check_bytes("after post-recovery iteration");
  }

  // What the self-healing runtime reported (via the public stats surface).
  const std::string stats = checl::stats_json();
  v.recoveries = detail::counter_from_stats_json(stats, "recoveries");
  v.io_retries = detail::counter_from_stats_json(stats, "io_retries");
  v.recover_ns = detail::counter_from_stats_json(stats, "last_recover_ns");
  if (v.pass && v.fired) {
    if (s.when == ArmPoint::AtCheckpoint) {
      if (v.io_retries == 0)
        v.fail("storage fault absorbed but io_retries counter is zero");
    } else if (v.recoveries == 0) {
      v.fail("channel fault absorbed but recoveries counter is zero");
    }
  }

  cleanup();
  return v;
}

}  // namespace chaos_harness
