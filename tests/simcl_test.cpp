// simcl_test.cpp — OpenCL-semantics tests of the substrate through the public
// C API in native mode: object lifecycle, info queries, queue asynchrony,
// events + profiling, error codes, the virtual clock, and device limits.
#include <gtest/gtest.h>

#include <vector>

#include "checl/cl.h"
#include "checl/cl_ext.h"
#include "core/runtime.h"
#include "simcl/runtime.h"

namespace {

class SimclTest : public ::testing::Test {
 protected:
  void SetUp() override {
    checl::bind_native();
    simcl::Runtime::instance().configure(simcl::default_platforms());
    simcl::Runtime::instance().clock().reset();
    ASSERT_EQ(clGetPlatformIDs(1, &platform_, nullptr), CL_SUCCESS);
    ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device_, nullptr),
              CL_SUCCESS);
    cl_int err = CL_SUCCESS;
    ctx_ = clCreateContext(nullptr, 1, &device_, nullptr, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    queue_ = clCreateCommandQueue(ctx_, device_, CL_QUEUE_PROFILING_ENABLE, &err);
    ASSERT_EQ(err, CL_SUCCESS);
  }
  void TearDown() override {
    if (queue_ != nullptr) clReleaseCommandQueue(queue_);
    if (ctx_ != nullptr) clReleaseContext(ctx_);
  }

  cl_kernel build_kernel(const char* src, const char* name) {
    cl_int err = CL_SUCCESS;
    cl_program p = clCreateProgramWithSource(ctx_, 1, &src, nullptr, &err);
    EXPECT_EQ(err, CL_SUCCESS);
    EXPECT_EQ(clBuildProgram(p, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
    cl_kernel k = clCreateKernel(p, name, &err);
    EXPECT_EQ(err, CL_SUCCESS);
    clReleaseProgram(p);  // kernel keeps the program alive
    return k;
  }

  cl_platform_id platform_ = nullptr;
  cl_device_id device_ = nullptr;
  cl_context ctx_ = nullptr;
  cl_command_queue queue_ = nullptr;
};

TEST_F(SimclTest, PlatformAndDeviceEnumeration) {
  cl_uint np = 0;
  ASSERT_EQ(clGetPlatformIDs(0, nullptr, &np), CL_SUCCESS);
  EXPECT_EQ(np, 2u);  // NVIDIA-like + AMD-like
  std::vector<cl_platform_id> plats(np);
  ASSERT_EQ(clGetPlatformIDs(np, plats.data(), nullptr), CL_SUCCESS);

  cl_uint total_devices = 0;
  for (cl_platform_id p : plats) {
    cl_uint nd = 0;
    EXPECT_EQ(clGetDeviceIDs(p, CL_DEVICE_TYPE_ALL, 0, nullptr, &nd), CL_SUCCESS);
    total_devices += nd;
  }
  EXPECT_EQ(total_devices, 3u);  // C1060, HD5870, Core i7

  // CPU exists only on the AMD-like platform
  cl_uint ncpu = 0;
  const cl_int err0 = clGetDeviceIDs(plats[0], CL_DEVICE_TYPE_CPU, 0, nullptr, &ncpu);
  const cl_int err1 = clGetDeviceIDs(plats[1], CL_DEVICE_TYPE_CPU, 0, nullptr, &ncpu);
  EXPECT_EQ(err0, CL_DEVICE_NOT_FOUND);
  EXPECT_EQ(err1, CL_SUCCESS);
  EXPECT_EQ(ncpu, 1u);
}

TEST_F(SimclTest, InfoQuerySizeProtocol) {
  std::size_t need = 0;
  ASSERT_EQ(clGetDeviceInfo(device_, CL_DEVICE_NAME, 0, nullptr, &need), CL_SUCCESS);
  ASSERT_GT(need, 1u);
  std::vector<char> name(need);
  ASSERT_EQ(clGetDeviceInfo(device_, CL_DEVICE_NAME, need, name.data(), nullptr),
            CL_SUCCESS);
  EXPECT_NE(std::string(name.data()).find("C1060"), std::string::npos);
  // too-small buffer must fail
  char tiny[2];
  EXPECT_EQ(clGetDeviceInfo(device_, CL_DEVICE_NAME, sizeof tiny, tiny, nullptr),
            CL_INVALID_VALUE);
}

TEST_F(SimclTest, HandleValidationRejectsGarbage) {
  int junk = 0;
  EXPECT_EQ(clRetainContext(reinterpret_cast<cl_context>(&junk)),
            CL_INVALID_CONTEXT);
  EXPECT_EQ(clReleaseMemObject(reinterpret_cast<cl_mem>(&junk)),
            CL_INVALID_MEM_OBJECT);
  EXPECT_EQ(clFinish(nullptr), CL_INVALID_COMMAND_QUEUE);
  // cross-type handles are rejected too
  EXPECT_EQ(clRetainKernel(reinterpret_cast<cl_kernel>(ctx_)), CL_INVALID_KERNEL);
}

TEST_F(SimclTest, BufferReadWriteCopyRoundTrip) {
  cl_int err = CL_SUCCESS;
  const std::size_t n = 1024;
  std::vector<std::uint32_t> host(n);
  for (std::size_t i = 0; i < n; ++i) host[i] = static_cast<std::uint32_t>(i * 3);
  cl_mem a = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, n * 4, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem b = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, n * 4, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clEnqueueWriteBuffer(queue_, a, CL_TRUE, 0, n * 4, host.data(), 0,
                                 nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clEnqueueCopyBuffer(queue_, a, b, 0, 0, n * 4, 0, nullptr, nullptr),
            CL_SUCCESS);
  std::vector<std::uint32_t> out(n, 0);
  ASSERT_EQ(clEnqueueReadBuffer(queue_, b, CL_TRUE, 0, n * 4, out.data(), 0,
                                nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(out, host);
  // overlapping same-buffer copy is rejected
  EXPECT_EQ(clEnqueueCopyBuffer(queue_, a, a, 0, 4, 64, 0, nullptr, nullptr),
            CL_MEM_COPY_OVERLAP);
  clReleaseMemObject(a);
  clReleaseMemObject(b);
}

TEST_F(SimclTest, OutOfRangeTransfersRejected) {
  cl_int err = CL_SUCCESS;
  cl_mem a = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 128, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  char buf[64];
  EXPECT_EQ(clEnqueueReadBuffer(queue_, a, CL_TRUE, 100, 64, buf, 0, nullptr,
                                nullptr),
            CL_INVALID_VALUE);
  clReleaseMemObject(a);
}

TEST_F(SimclTest, AllocationLimitEnforced) {
  cl_int err = CL_SUCCESS;
  cl_ulong max_alloc = 0;
  clGetDeviceInfo(device_, CL_DEVICE_MAX_MEM_ALLOC_SIZE, sizeof max_alloc,
                  &max_alloc, nullptr);
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE,
                            static_cast<std::size_t>(max_alloc) + 4096, nullptr,
                            &err);
  EXPECT_EQ(m, nullptr);
  EXPECT_EQ(err, CL_INVALID_BUFFER_SIZE);
}

TEST_F(SimclTest, BuildFailureProducesLog) {
  const char* bad = "__kernel void k(__global int* d) { d[0] = undeclared; }";
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &bad, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_EQ(clBuildProgram(p, 1, &device_, "", nullptr, nullptr),
            CL_BUILD_PROGRAM_FAILURE);
  char log[512] = {};
  ASSERT_EQ(clGetProgramBuildInfo(p, device_, CL_PROGRAM_BUILD_LOG, sizeof log,
                                  log, nullptr),
            CL_SUCCESS);
  EXPECT_NE(std::string(log).find("undeclared"), std::string::npos);
  // kernels cannot be created from a failed build
  cl_kernel k = clCreateKernel(p, "k", &err);
  EXPECT_EQ(k, nullptr);
  EXPECT_EQ(err, CL_INVALID_PROGRAM_EXECUTABLE);
  clReleaseProgram(p);
}

TEST_F(SimclTest, ProgramBinaryRoundTrip) {
  const char* src = "__kernel void twice(__global int* d) { d[0] = d[0] * 2; }";
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &src, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(p, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  std::size_t bin_size = 0;
  ASSERT_EQ(clGetProgramInfo(p, CL_PROGRAM_BINARY_SIZES, sizeof bin_size,
                             &bin_size, nullptr),
            CL_SUCCESS);
  ASSERT_GT(bin_size, 0u);
  std::vector<unsigned char> bin(bin_size);
  unsigned char* ptrs[1] = {bin.data()};
  ASSERT_EQ(clGetProgramInfo(p, CL_PROGRAM_BINARIES, sizeof ptrs, ptrs, nullptr),
            CL_SUCCESS);
  const unsigned char* cptr = bin.data();
  cl_int status = CL_SUCCESS;
  cl_program p2 = clCreateProgramWithBinary(ctx_, 1, &device_, &bin_size, &cptr,
                                            &status, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_EQ(status, CL_SUCCESS);
  EXPECT_EQ(clBuildProgram(p2, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  cl_kernel k = clCreateKernel(p2, "twice", &err);
  EXPECT_EQ(err, CL_SUCCESS);
  clReleaseKernel(k);
  clReleaseProgram(p2);
  clReleaseProgram(p);
  // garbage binaries are rejected
  const unsigned char junk[4] = {1, 2, 3, 4};
  const unsigned char* jptr = junk;
  const std::size_t jlen = 4;
  cl_program p3 =
      clCreateProgramWithBinary(ctx_, 1, &device_, &jlen, &jptr, &status, &err);
  EXPECT_EQ(p3, nullptr);
  EXPECT_EQ(err, CL_INVALID_BINARY);
}

TEST_F(SimclTest, KernelExecutionAndUnsetArgs) {
  cl_kernel k = build_kernel(
      "__kernel void fill(__global int* d, int v) { d[get_global_id(0)] = v; }",
      "fill");
  const std::size_t n = 64;
  cl_int err = CL_SUCCESS;
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, n * 4, nullptr, &err);
  // unset args -> launch fails
  const std::size_t g = n;
  EXPECT_EQ(clEnqueueNDRangeKernel(queue_, k, 1, nullptr, &g, nullptr, 0, nullptr,
                                   nullptr),
            CL_INVALID_KERNEL_ARGS);
  int v = 42;
  ASSERT_EQ(clSetKernelArg(k, 0, sizeof m, &m), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(k, 1, sizeof v, &v), CL_SUCCESS);
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, k, 1, nullptr, &g, nullptr, 0, nullptr,
                                   nullptr),
            CL_SUCCESS);
  std::vector<std::int32_t> out(n);
  ASSERT_EQ(clEnqueueReadBuffer(queue_, m, CL_TRUE, 0, n * 4, out.data(), 0,
                                nullptr, nullptr),
            CL_SUCCESS);
  for (const std::int32_t x : out) EXPECT_EQ(x, 42);
  clReleaseKernel(k);
  clReleaseMemObject(m);
}

TEST_F(SimclTest, ArgsBoundAtEnqueueNotAtExecution) {
  cl_kernel k = build_kernel(
      "__kernel void fill(__global int* d, int v) { d[get_global_id(0)] = v; }",
      "fill");
  cl_int err = CL_SUCCESS;
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 64 * 4, nullptr, &err);
  int v = 1;
  clSetKernelArg(k, 0, sizeof m, &m);
  clSetKernelArg(k, 1, sizeof v, &v);
  const std::size_t g = 64;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, k, 1, nullptr, &g, nullptr, 0, nullptr,
                                   nullptr),
            CL_SUCCESS);
  v = 2;  // re-bind AFTER the first enqueue
  clSetKernelArg(k, 1, sizeof v, &v);
  ASSERT_EQ(clFinish(queue_), CL_SUCCESS);
  std::int32_t out0 = 0;
  clEnqueueReadBuffer(queue_, m, CL_TRUE, 0, 4, &out0, 0, nullptr, nullptr);
  EXPECT_EQ(out0, 1);  // first launch used the snapshot taken at enqueue
  clReleaseKernel(k);
  clReleaseMemObject(m);
}

TEST_F(SimclTest, WorkGroupLimitsPerDevice) {
  cl_kernel k = build_kernel(
      "__kernel void nop(__global int* d) { d[0] = 1; }", "nop");
  cl_int err = CL_SUCCESS;
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 4096, nullptr, &err);
  clSetKernelArg(k, 0, sizeof m, &m);
  const std::size_t g = 1024;
  std::size_t l = 1024;  // > C1060's 512
  EXPECT_EQ(clEnqueueNDRangeKernel(queue_, k, 1, nullptr, &g, &l, 0, nullptr,
                                   nullptr),
            CL_INVALID_WORK_ITEM_SIZE);
  l = 100;  // does not divide 1024
  EXPECT_EQ(clEnqueueNDRangeKernel(queue_, k, 1, nullptr, &g, &l, 0, nullptr,
                                   nullptr),
            CL_INVALID_WORK_GROUP_SIZE);
  clReleaseKernel(k);
  clReleaseMemObject(m);
}

TEST_F(SimclTest, EventsAndProfilingOnVirtualClock) {
  cl_kernel k = build_kernel(
      "__kernel void burn(__global float* d, int iters) {\n"
      "  float a = d[get_global_id(0)];\n"
      "  for (int i = 0; i < iters; i = i + 1) a = mad(a, 1.0001f, 0.5f);\n"
      "  d[get_global_id(0)] = a;\n"
      "}",
      "burn");
  cl_int err = CL_SUCCESS;
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 256 * 4, nullptr, &err);
  int iters = 100;
  clSetKernelArg(k, 0, sizeof m, &m);
  clSetKernelArg(k, 1, sizeof iters, &iters);
  const std::size_t g = 256;
  cl_event ev = nullptr;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, k, 1, nullptr, &g, nullptr, 0, nullptr,
                                   &ev),
            CL_SUCCESS);
  ASSERT_EQ(clWaitForEvents(1, &ev), CL_SUCCESS);
  cl_int st = -1;
  ASSERT_EQ(clGetEventInfo(ev, CL_EVENT_COMMAND_EXECUTION_STATUS, sizeof st, &st,
                           nullptr),
            CL_SUCCESS);
  EXPECT_EQ(st, CL_COMPLETE);
  cl_ulong q = 0;
  cl_ulong sub = 0;
  cl_ulong start = 0;
  cl_ulong end = 0;
  clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_QUEUED, 8, &q, nullptr);
  clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_SUBMIT, 8, &sub, nullptr);
  clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_START, 8, &start, nullptr);
  clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_END, 8, &end, nullptr);
  EXPECT_LE(q, sub);
  EXPECT_LE(sub, start);
  EXPECT_LT(start, end);  // the kernel takes virtual time
  // the host clock was synced to the event completion
  cl_ulong now = 0;
  clSimGetHostTimeNS(&now);
  EXPECT_GE(now, end);
  clReleaseEvent(ev);
  clReleaseKernel(k);
  clReleaseMemObject(m);
}

TEST_F(SimclTest, MarkerEventCompletes) {
  cl_event ev = nullptr;
  ASSERT_EQ(clEnqueueMarker(queue_, &ev), CL_SUCCESS);
  ASSERT_EQ(clWaitForEvents(1, &ev), CL_SUCCESS);
  cl_uint type = 0;
  clGetEventInfo(ev, CL_EVENT_COMMAND_TYPE, sizeof type, &type, nullptr);
  EXPECT_EQ(type, static_cast<cl_uint>(CL_COMMAND_MARKER));
  clReleaseEvent(ev);
}

TEST_F(SimclTest, TransfersChargePcieBandwidth) {
  // 32 MB at the bandwidth-scaled 5.35 GB/s HtoD should take ~0.2 virtual s
  const std::size_t bytes = 32u << 20;
  std::vector<std::uint8_t> host(bytes, 1);
  cl_int err = CL_SUCCESS;
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, bytes, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_ulong t0 = 0;
  clSimGetHostTimeNS(&t0);
  ASSERT_EQ(clEnqueueWriteBuffer(queue_, m, CL_TRUE, 0, bytes, host.data(), 0,
                                 nullptr, nullptr),
            CL_SUCCESS);
  cl_ulong t1 = 0;
  clSimGetHostTimeNS(&t1);
  const double sec = static_cast<double>(t1 - t0) / 1e9;
  EXPECT_NEAR(sec, 33.55e6 / (5.35e9 / simcl::kBandwidthScale), 0.05);
  clReleaseMemObject(m);
}

TEST_F(SimclTest, UseHostPtrSyncsAroundKernels) {
  cl_kernel k = build_kernel(
      "__kernel void inc(__global int* d) { d[get_global_id(0)] += 1; }", "inc");
  std::vector<std::int32_t> host(64, 5);
  cl_int err = CL_SUCCESS;
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE | CL_MEM_USE_HOST_PTR,
                            64 * 4, host.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  // mutate the host cache after creation; the kernel must see the new data
  for (auto& v : host) v = 10;
  clSetKernelArg(k, 0, sizeof m, &m);
  const std::size_t g = 64;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, k, 1, nullptr, &g, nullptr, 0, nullptr,
                                   nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clFinish(queue_), CL_SUCCESS);
  // and the result must be visible in the host cache without an explicit read
  for (const std::int32_t v : host) EXPECT_EQ(v, 11);
  clReleaseKernel(k);
  clReleaseMemObject(m);
}

TEST_F(SimclTest, ImageCreateQueryReadWrite) {
  const cl_image_format fmt{CL_RGBA, CL_FLOAT};
  std::vector<float> pixels(8 * 8 * 4, 0.25f);
  cl_int err = CL_SUCCESS;
  cl_mem img = clCreateImage2D(ctx_, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                               &fmt, 8, 8, 0, pixels.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  std::size_t w = 0;
  ASSERT_EQ(clGetImageInfo(img, CL_IMAGE_WIDTH, sizeof w, &w, nullptr), CL_SUCCESS);
  EXPECT_EQ(w, 8u);
  cl_uint mem_type = 0;
  clGetMemObjectInfo(img, CL_MEM_TYPE, sizeof mem_type, &mem_type, nullptr);
  EXPECT_EQ(mem_type, static_cast<cl_uint>(CL_MEM_OBJECT_IMAGE2D));
  // unsupported format
  const cl_image_format bad{0x9999, CL_FLOAT};
  cl_mem img2 = clCreateImage2D(ctx_, CL_MEM_READ_ONLY, &bad, 8, 8, 0, nullptr, &err);
  EXPECT_EQ(img2, nullptr);
  EXPECT_EQ(err, CL_IMAGE_FORMAT_NOT_SUPPORTED);
  clReleaseMemObject(img);
}

TEST_F(SimclTest, RefCountsKeepObjectsAlive) {
  cl_int err = CL_SUCCESS;
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 64, nullptr, &err);
  ASSERT_EQ(clRetainMemObject(m), CL_SUCCESS);
  ASSERT_EQ(clReleaseMemObject(m), CL_SUCCESS);
  // still alive after one release (refcount was 2)
  cl_uint refs = 0;
  ASSERT_EQ(clGetMemObjectInfo(m, CL_MEM_REFERENCE_COUNT, sizeof refs, &refs,
                               nullptr),
            CL_SUCCESS);
  EXPECT_EQ(refs, 1u);
  ASSERT_EQ(clReleaseMemObject(m), CL_SUCCESS);
}

TEST_F(SimclTest, CreateKernelsInProgramEnumeratesAll) {
  const char* src =
      "__kernel void a(__global int* d) { d[0] = 1; }\n"
      "__kernel void b(__global int* d) { d[0] = 2; }\n"
      "int helper(int x) { return x; }\n";
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &src, nullptr, &err);
  ASSERT_EQ(clBuildProgram(p, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  cl_uint n = 0;
  ASSERT_EQ(clCreateKernelsInProgram(p, 0, nullptr, &n), CL_SUCCESS);
  EXPECT_EQ(n, 2u);  // helper is not a kernel
  std::vector<cl_kernel> ks(n);
  ASSERT_EQ(clCreateKernelsInProgram(p, n, ks.data(), nullptr), CL_SUCCESS);
  for (cl_kernel k : ks) clReleaseKernel(k);
  clReleaseProgram(p);
}

TEST_F(SimclTest, SamplerObjectLifecycle) {
  cl_int err = CL_SUCCESS;
  cl_sampler s = clCreateSampler(ctx_, CL_TRUE, CL_ADDRESS_REPEAT,
                                 CL_FILTER_LINEAR, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_bool norm = CL_FALSE;
  ASSERT_EQ(clGetSamplerInfo(s, CL_SAMPLER_NORMALIZED_COORDS, sizeof norm, &norm,
                             nullptr),
            CL_SUCCESS);
  EXPECT_EQ(norm, static_cast<cl_bool>(CL_TRUE));
  EXPECT_EQ(clReleaseSampler(s), CL_SUCCESS);
}

TEST_F(SimclTest, QueueTimelineOverlapsHost) {
  // enqueue a long kernel without waiting: host time should NOT advance by
  // the kernel duration until clFinish
  cl_kernel k = build_kernel(
      "__kernel void burn(__global float* d, int iters) {\n"
      "  float a = d[get_global_id(0)];\n"
      "  for (int i = 0; i < iters; i = i + 1) a = mad(a, 1.0001f, 0.5f);\n"
      "  d[get_global_id(0)] = a;\n"
      "}",
      "burn");
  cl_int err = CL_SUCCESS;
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 1024 * 4, nullptr, &err);
  int iters = 500;
  clSetKernelArg(k, 0, sizeof m, &m);
  clSetKernelArg(k, 1, sizeof iters, &iters);
  const std::size_t g = 1024;
  cl_ulong t0 = 0;
  clSimGetHostTimeNS(&t0);
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, k, 1, nullptr, &g, nullptr, 0, nullptr,
                                   nullptr),
            CL_SUCCESS);
  cl_ulong t_enq = 0;
  clSimGetHostTimeNS(&t_enq);
  ASSERT_EQ(clFinish(queue_), CL_SUCCESS);
  cl_ulong t_fin = 0;
  clSimGetHostTimeNS(&t_fin);
  const cl_ulong enqueue_cost = t_enq - t0;
  const cl_ulong finish_cost = t_fin - t_enq;
  EXPECT_LT(enqueue_cost, 1'000'000u);  // enqueue returns immediately
  EXPECT_GT(finish_cost, enqueue_cost * 5);  // the wait carries the kernel time
  clReleaseKernel(k);
  clReleaseMemObject(m);
}

}  // namespace
