// checl_core_test.cpp — the CheCL wrapper layer: handle opacity (the app
// never sees an actual OpenCL handle), object recording, clSetKernelArg
// conversion (signature path and address heuristic), info-query translation,
// and the object database.
#include <gtest/gtest.h>

#include <signal.h>

#include <cstring>

#include "checl/checl.h"
#include "checl/cl.h"

namespace {

const char* kSrc = R"CL(
__kernel void axpy(__global float* y, __global const float* x, float a, int n) {
  int i = get_global_id(0);
  if (i < n) y[i] = a * x[i] + y[i];
}
)CL";

class CheclCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& rt = checl::CheclRuntime::instance();
    rt.reset_all();
    checl::NodeConfig node = checl::dual_node();
    node.transport = proxy::Transport::Thread;  // fast in-process for units
    rt.set_node(node);
    checl::bind_checl();
    ASSERT_EQ(clGetPlatformIDs(1, &platform_, nullptr), CL_SUCCESS);
    ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device_, nullptr),
              CL_SUCCESS);
    cl_int err = CL_SUCCESS;
    ctx_ = clCreateContext(nullptr, 1, &device_, nullptr, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    queue_ = clCreateCommandQueue(ctx_, device_, 0, &err);
    ASSERT_EQ(err, CL_SUCCESS);
  }
  void TearDown() override {
    if (queue_ != nullptr) clReleaseCommandQueue(queue_);
    if (ctx_ != nullptr) clReleaseContext(ctx_);
    checl::CheclRuntime::instance().reset_all();
    checl::bind_native();
  }

  cl_platform_id platform_ = nullptr;
  cl_device_id device_ = nullptr;
  cl_context ctx_ = nullptr;
  cl_command_queue queue_ = nullptr;
};

TEST_F(CheclCoreTest, HandlesAreCheclObjectsNotOpenClHandles) {
  // every handle the app holds must be a tagged CheCL object
  EXPECT_TRUE(checl::is_checl_object(platform_));
  EXPECT_TRUE(checl::is_checl_object(device_));
  EXPECT_TRUE(checl::is_checl_object(ctx_));
  EXPECT_TRUE(checl::is_checl_object(queue_));
  auto* obj = checl::as_checl<checl::ContextObj>(ctx_);
  ASSERT_NE(obj, nullptr);
  // the actual OpenCL handle is a different value, hidden in the object
  EXPECT_NE(obj->remote, reinterpret_cast<std::uintptr_t>(ctx_));
  EXPECT_NE(obj->remote, 0u);
}

TEST_F(CheclCoreTest, InfoQueriesReturnCheclHandles) {
  // CL_CONTEXT_DEVICES must come back as the CheCL device handle
  cl_device_id devs[4] = {};
  ASSERT_EQ(clGetContextInfo(ctx_, CL_CONTEXT_DEVICES, sizeof devs, devs, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(devs[0], device_);
  cl_context qctx = nullptr;
  ASSERT_EQ(clGetCommandQueueInfo(queue_, CL_QUEUE_CONTEXT, sizeof qctx, &qctx,
                                  nullptr),
            CL_SUCCESS);
  EXPECT_EQ(qctx, ctx_);
  cl_platform_id p = nullptr;
  ASSERT_EQ(clGetDeviceInfo(device_, CL_DEVICE_PLATFORM, sizeof p, &p, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(p, platform_);
}

TEST_F(CheclCoreTest, DeviceInfoForwardedThroughProxy) {
  char name[256] = {};
  ASSERT_EQ(clGetDeviceInfo(device_, CL_DEVICE_NAME, sizeof name, name, nullptr),
            CL_SUCCESS);
  EXPECT_NE(std::string(name).find("C1060"), std::string::npos);
}

TEST_F(CheclCoreTest, ObjectDatabaseTracksCreations) {
  auto& db = checl::CheclRuntime::instance().db();
  const std::size_t before = db.size();
  cl_int err = CL_SUCCESS;
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 1024, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_EQ(db.size(), before + 1);
  EXPECT_EQ(clReleaseMemObject(m), CL_SUCCESS);
  EXPECT_EQ(db.size(), before);  // released objects leave the database
}

TEST_F(CheclCoreTest, ProgramRecordsSourceAndSignatures) {
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &kSrc, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  auto* obj = checl::as_checl<checl::ProgramObj>(p);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->source, kSrc);
  EXPECT_FALSE(obj->built);
  ASSERT_NE(obj->signatures.find("axpy"), nullptr);
  EXPECT_EQ(obj->signatures.find("axpy")->params.size(), 4u);
  ASSERT_EQ(clBuildProgram(p, 1, &device_, "-D X=1", nullptr, nullptr), CL_SUCCESS);
  EXPECT_TRUE(obj->built);
  EXPECT_EQ(obj->build_options, "-D X=1");
  // CL_PROGRAM_SOURCE is answered locally from the record
  std::size_t n = 0;
  ASSERT_EQ(clGetProgramInfo(p, CL_PROGRAM_SOURCE, 0, nullptr, &n), CL_SUCCESS);
  EXPECT_EQ(n, std::string(kSrc).size() + 1);
  clReleaseProgram(p);
}

TEST_F(CheclCoreTest, SetKernelArgRecordsAndConverts) {
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &kSrc, nullptr, &err);
  ASSERT_EQ(clBuildProgram(p, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  cl_kernel k = clCreateKernel(p, "axpy", &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem y = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 256, nullptr, &err);
  cl_mem x = clCreateBuffer(ctx_, CL_MEM_READ_ONLY, 256, nullptr, &err);
  const float a = 2.0f;
  const int n = 64;
  ASSERT_EQ(clSetKernelArg(k, 0, sizeof y, &y), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(k, 1, sizeof x, &x), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(k, 2, sizeof a, &a), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(k, 3, sizeof n, &n), CL_SUCCESS);

  auto* ko = checl::as_checl<checl::KernelObj>(k);
  ASSERT_NE(ko, nullptr);
  ASSERT_EQ(ko->args.size(), 4u);
  EXPECT_EQ(ko->args[0].kind, checl::KernelObj::ArgRec::Kind::Mem);
  EXPECT_EQ(ko->args[0].mem, checl::as_checl<checl::MemObj>(y));
  EXPECT_EQ(ko->args[2].kind, checl::KernelObj::ArgRec::Kind::Bytes);
  ASSERT_EQ(ko->args[2].bytes.size(), sizeof a);
  float recorded = 0;
  std::memcpy(&recorded, ko->args[2].bytes.data(), sizeof recorded);
  EXPECT_FLOAT_EQ(recorded, 2.0f);

  // wrong size for a mem-handle parameter is rejected
  EXPECT_EQ(clSetKernelArg(k, 0, 4, &y), CL_INVALID_ARG_SIZE);
  // and a bogus handle value is rejected
  int junk = 0;
  void* junk_ptr = &junk;
  EXPECT_EQ(clSetKernelArg(k, 0, sizeof junk_ptr, &junk_ptr),
            CL_INVALID_MEM_OBJECT);

  clReleaseKernel(k);
  clReleaseProgram(p);
  clReleaseMemObject(x);
  clReleaseMemObject(y);
}

TEST_F(CheclCoreTest, RebindingArgReleasesPreviousMem) {
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &kSrc, nullptr, &err);
  clBuildProgram(p, 1, &device_, "", nullptr, nullptr);
  cl_kernel k = clCreateKernel(p, "axpy", &err);
  cl_mem m1 = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 256, nullptr, &err);
  cl_mem m2 = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 256, nullptr, &err);
  clSetKernelArg(k, 0, sizeof m1, &m1);
  auto* m1_obj = checl::as_checl<checl::MemObj>(m1);
  const auto refs_bound = m1_obj->refs.load();
  clSetKernelArg(k, 0, sizeof m2, &m2);
  EXPECT_EQ(m1_obj->refs.load(), refs_bound - 1);  // kernel dropped its ref
  clReleaseKernel(k);
  clReleaseProgram(p);
  clReleaseMemObject(m1);
  clReleaseMemObject(m2);
}

TEST_F(CheclCoreTest, EndToEndExecutionUnderWrappers) {
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &kSrc, nullptr, &err);
  ASSERT_EQ(clBuildProgram(p, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  cl_kernel k = clCreateKernel(p, "axpy", &err);
  const int n = 512;
  std::vector<float> xs(n, 3.0f);
  std::vector<float> ys(n, 1.0f);
  cl_mem x = clCreateBuffer(ctx_, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                            n * 4, xs.data(), &err);
  cl_mem y = clCreateBuffer(ctx_, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                            n * 4, ys.data(), &err);
  const float a = 10.0f;
  clSetKernelArg(k, 0, sizeof y, &y);
  clSetKernelArg(k, 1, sizeof x, &x);
  clSetKernelArg(k, 2, sizeof a, &a);
  clSetKernelArg(k, 3, sizeof n, &n);
  const std::size_t g = n;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, k, 1, nullptr, &g, nullptr, 0, nullptr,
                                   nullptr),
            CL_SUCCESS);
  std::vector<float> out(n);
  ASSERT_EQ(clEnqueueReadBuffer(queue_, y, CL_TRUE, 0, n * 4, out.data(), 0,
                                nullptr, nullptr),
            CL_SUCCESS);
  for (const float v : out) EXPECT_FLOAT_EQ(v, 31.0f);
  clReleaseKernel(k);
  clReleaseProgram(p);
  clReleaseMemObject(x);
  clReleaseMemObject(y);
}

TEST_F(CheclCoreTest, EventsAreWrappedAndQueryable) {
  cl_event ev = nullptr;
  ASSERT_EQ(clEnqueueMarker(queue_, &ev), CL_SUCCESS);
  ASSERT_NE(ev, nullptr);
  EXPECT_TRUE(checl::is_checl_object(ev));
  ASSERT_EQ(clWaitForEvents(1, &ev), CL_SUCCESS);
  cl_int st = -1;
  ASSERT_EQ(clGetEventInfo(ev, CL_EVENT_COMMAND_EXECUTION_STATUS, sizeof st, &st,
                           nullptr),
            CL_SUCCESS);
  EXPECT_EQ(st, CL_COMPLETE);
  cl_command_queue q = nullptr;
  ASSERT_EQ(clGetEventInfo(ev, CL_EVENT_COMMAND_QUEUE, sizeof q, &q, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(q, queue_);  // the CheCL queue handle, not the remote one
  clReleaseEvent(ev);
}

TEST_F(CheclCoreTest, AddressHeuristicConvertsForBinaryPrograms) {
  // build via source, extract binary, recreate via binary: no signatures
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &kSrc, nullptr, &err);
  ASSERT_EQ(clBuildProgram(p, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  std::size_t bin_size = 0;
  ASSERT_EQ(clGetProgramInfo(p, CL_PROGRAM_BINARY_SIZES, sizeof bin_size,
                             &bin_size, nullptr),
            CL_SUCCESS);
  std::vector<unsigned char> bin(bin_size);
  unsigned char* ptrs[1] = {bin.data()};
  ASSERT_EQ(clGetProgramInfo(p, CL_PROGRAM_BINARIES, sizeof ptrs, ptrs, nullptr),
            CL_SUCCESS);
  const unsigned char* cptr = bin.data();
  cl_int status = CL_SUCCESS;
  cl_program pb = clCreateProgramWithBinary(ctx_, 1, &device_, &bin_size, &cptr,
                                            &status, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(pb, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  auto* pobj = checl::as_checl<checl::ProgramObj>(pb);
  EXPECT_TRUE(pobj->from_binary);
  EXPECT_TRUE(pobj->signatures.empty());  // the deprecated path has no source

  cl_kernel k = clCreateKernel(pb, "axpy", &err);
  ASSERT_EQ(err, CL_SUCCESS);
  // the heuristic must still detect the cl_mem argument by address
  cl_mem y = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 256, nullptr, &err);
  ASSERT_EQ(clSetKernelArg(k, 0, sizeof y, &y), CL_SUCCESS);
  auto* ko = checl::as_checl<checl::KernelObj>(k);
  ASSERT_GE(ko->args.size(), 1u);
  EXPECT_EQ(ko->args[0].kind, checl::KernelObj::ArgRec::Kind::Mem);
  // and a same-width plain value is NOT misread as a handle
  const std::uint64_t plain = 0x1234;
  ASSERT_EQ(clSetKernelArg(k, 2, sizeof plain, &plain), CL_SUCCESS);
  EXPECT_EQ(ko->args[2].kind, checl::KernelObj::ArgRec::Kind::Bytes);

  clReleaseKernel(k);
  clReleaseProgram(pb);
  clReleaseProgram(p);
  clReleaseMemObject(y);
}

TEST_F(CheclCoreTest, SamplerWrapping) {
  cl_int err = CL_SUCCESS;
  cl_sampler s = clCreateSampler(ctx_, CL_FALSE, CL_ADDRESS_CLAMP_TO_EDGE,
                                 CL_FILTER_NEAREST, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_TRUE(checl::is_checl_object(s));
  cl_uint am = 0;
  ASSERT_EQ(clGetSamplerInfo(s, CL_SAMPLER_ADDRESSING_MODE, sizeof am, &am,
                             nullptr),
            CL_SUCCESS);
  EXPECT_EQ(am, static_cast<cl_uint>(CL_ADDRESS_CLAMP_TO_EDGE));
  clReleaseSampler(s);
}

TEST_F(CheclCoreTest, CrossTypeCheclHandlesRejected) {
  // a context handle passed where a queue/kernel/mem is expected
  EXPECT_EQ(clFinish(reinterpret_cast<cl_command_queue>(ctx_)),
            CL_INVALID_COMMAND_QUEUE);
  EXPECT_EQ(clReleaseKernel(reinterpret_cast<cl_kernel>(ctx_)),
            CL_INVALID_KERNEL);
  EXPECT_EQ(clReleaseMemObject(reinterpret_cast<cl_mem>(queue_)),
            CL_INVALID_MEM_OBJECT);
  cl_int err = CL_SUCCESS;
  cl_command_queue q = clCreateCommandQueue(
      reinterpret_cast<cl_context>(device_), device_, 0, &err);
  EXPECT_EQ(q, nullptr);
  EXPECT_EQ(err, CL_INVALID_CONTEXT);
}

TEST_F(CheclCoreTest, ReleasedHandleIsInvalidAfterwards) {
  cl_int err = CL_SUCCESS;
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 256, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clReleaseMemObject(m), CL_SUCCESS);
  EXPECT_EQ(clReleaseMemObject(m), CL_INVALID_MEM_OBJECT);  // double release
  EXPECT_EQ(clRetainMemObject(m), CL_INVALID_MEM_OBJECT);
}

TEST_F(CheclCoreTest, KernelKeepsBoundMemAliveAfterAppRelease) {
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &kSrc, nullptr, &err);
  clBuildProgram(p, 1, &device_, "", nullptr, nullptr);
  cl_kernel k = clCreateKernel(p, "axpy", &err);
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 256, nullptr, &err);
  ASSERT_EQ(clSetKernelArg(k, 0, sizeof m, &m), CL_SUCCESS);
  auto* mobj = checl::as_checl<checl::MemObj>(m);
  ASSERT_EQ(clReleaseMemObject(m), CL_SUCCESS);  // app drops its reference
  // the kernel's recorded binding still holds the object alive and the DB
  // can still restore it
  EXPECT_TRUE(checl::is_checl_object(mobj));
  EXPECT_GE(mobj->refs.load(), 1);
  clReleaseKernel(k);  // now the last reference goes
  EXPECT_FALSE(checl::is_checl_object(mobj));
  clReleaseProgram(p);
}

TEST_F(CheclCoreTest, SignalHandlerRequestsDelayedCheckpoint) {
  auto& rt = checl::CheclRuntime::instance();
  rt.mode = checl::CheckpointMode::Delayed;
  rt.checkpoint_path = "/tmp/checl_core_signal.ckpt";
  rt.install_signal_handler(SIGUSR1);
  ::raise(SIGUSR1);
  EXPECT_TRUE(rt.checkpoint_pending());
  // the next sync point performs the checkpoint
  ASSERT_EQ(clFinish(queue_), CL_SUCCESS);
  EXPECT_FALSE(rt.checkpoint_pending());
  EXPECT_GT(rt.last_checkpoint_times().file_bytes, 0u);
}

}  // namespace
