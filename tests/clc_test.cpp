// clc_test.cpp — unit tests for the OpenCL C subset compiler/interpreter:
// lexer, preprocessor, parser diagnostics, expression semantics (exact-width
// integer wrap-around, conversions, vectors, swizzles), control flow,
// barriers/__local, builtins, structs, and NDRange execution properties.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>

#include "clc/interp.h"
#include "clc/lexer.h"
#include "clc/pp.h"
#include "clc/program.h"

namespace {

using clc::compile;
using clc::KernelArg;
using clc::NDRange;

// Compiles a one-kernel program, runs it over `global` items, returns ok.
struct KernelRunner {
  clc::CompileResult res;
  const clc::FuncDecl* kernel = nullptr;
  std::vector<KernelArg> args;

  explicit KernelRunner(const char* src, const char* kernel_name = "k",
                        const char* opts = "") {
    res = compile(src, opts);
    if (res.ok()) kernel = res.module->find_func(kernel_name);
  }

  KernelArg& buffer(void* p) {
    KernelArg a;
    a.k = KernelArg::K::GlobalPtr;
    a.ptr = p;
    args.push_back(std::move(a));
    return args.back();
  }
  template <typename T>
  KernelArg& scalar(T v) {
    KernelArg a;
    a.k = KernelArg::K::Bytes;
    a.bytes.resize(sizeof v);
    std::memcpy(a.bytes.data(), &v, sizeof v);
    args.push_back(std::move(a));
    return args.back();
  }
  KernelArg& local(std::size_t bytes) {
    KernelArg a;
    a.k = KernelArg::K::LocalAlloc;
    a.local_bytes = bytes;
    args.push_back(std::move(a));
    return args.back();
  }

  clc::LaunchResult run(std::size_t global, std::size_t local_sz = 0) {
    NDRange nd;
    nd.dim = 1;
    nd.global[0] = global;
    nd.local[0] = local_sz != 0 ? local_sz : 1;
    return clc::execute_ndrange(*res.module, *kernel, args, nd);
  }
};

// ---------------------------------------------------------------------------
// lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  clc::Lexer lex("a += 0x1F + 2.5f - .5 << 3u;");
  std::vector<clc::Token> toks;
  clc::Diag diag;
  ASSERT_TRUE(lex.run(toks, diag)) << diag.to_string();
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, clc::Tok::Ident);
  EXPECT_EQ(toks[1].kind, clc::Tok::PlusAssign);
  EXPECT_EQ(toks[2].kind, clc::Tok::IntLit);
  EXPECT_EQ(toks[2].int_value, 0x1Fu);
  EXPECT_EQ(toks[4].kind, clc::Tok::FloatLit);
  EXPECT_TRUE(toks[4].is_float32);
  EXPECT_FLOAT_EQ(static_cast<float>(toks[4].float_value), 2.5f);
}

TEST(Lexer, KeywordsAndAlternateSpellings) {
  clc::Lexer lex("__kernel kernel __global global __local sampler_t image2d_t");
  std::vector<clc::Token> toks;
  clc::Diag diag;
  ASSERT_TRUE(lex.run(toks, diag));
  EXPECT_EQ(toks[0].kind, clc::Tok::KwKernel);
  EXPECT_EQ(toks[1].kind, clc::Tok::KwKernel);
  EXPECT_EQ(toks[2].kind, clc::Tok::KwGlobal);
  EXPECT_EQ(toks[3].kind, clc::Tok::KwGlobal);
  EXPECT_EQ(toks[4].kind, clc::Tok::KwLocal);
  EXPECT_EQ(toks[5].kind, clc::Tok::KwSampler);
  EXPECT_EQ(toks[6].kind, clc::Tok::KwImage2d);
}

TEST(Lexer, CommentsAreSkipped) {
  clc::Lexer lex("a /* blk \n comment */ b // line\n c");
  std::vector<clc::Token> toks;
  clc::Diag diag;
  ASSERT_TRUE(lex.run(toks, diag));
  ASSERT_EQ(toks.size(), 4u);  // a b c <eof>
}

TEST(Lexer, RejectsUnterminatedString) {
  clc::Lexer lex("\"abc");
  std::vector<clc::Token> toks;
  clc::Diag diag;
  EXPECT_FALSE(lex.run(toks, diag));
  EXPECT_FALSE(diag.ok());
}

// ---------------------------------------------------------------------------
// preprocessor
// ---------------------------------------------------------------------------

TEST(Preprocessor, ObjectMacro) {
  clc::Preprocessor pp;
  std::string out;
  clc::Diag diag;
  ASSERT_TRUE(pp.run("#define N 42\nint x = N;", out, diag));
  EXPECT_NE(out.find("int x = 42;"), std::string::npos);
}

TEST(Preprocessor, FunctionMacro) {
  clc::Preprocessor pp;
  std::string out;
  clc::Diag diag;
  ASSERT_TRUE(pp.run("#define SQ(x) ((x) * (x))\nfloat y = SQ(a + 1);", out, diag));
  EXPECT_NE(out.find("((a + 1) * (a + 1))"), std::string::npos);
}

TEST(Preprocessor, ConditionalBlocks) {
  clc::Preprocessor pp("-D FAST");
  std::string out;
  clc::Diag diag;
  ASSERT_TRUE(pp.run("#ifdef FAST\nfast\n#else\nslow\n#endif", out, diag));
  EXPECT_NE(out.find("fast"), std::string::npos);
  EXPECT_EQ(out.find("slow"), std::string::npos);
}

TEST(Preprocessor, DashDDefinitionsFromBuildOptions) {
  clc::Preprocessor pp("-D WIDTH=128 -DDEPTH=4");
  std::string out;
  clc::Diag diag;
  ASSERT_TRUE(pp.run("WIDTH DEPTH", out, diag));
  EXPECT_NE(out.find("128"), std::string::npos);
  EXPECT_NE(out.find('4'), std::string::npos);
}

TEST(Preprocessor, UnterminatedIfIsError) {
  clc::Preprocessor pp;
  std::string out;
  clc::Diag diag;
  EXPECT_FALSE(pp.run("#ifdef X\nbody", out, diag));
}

// ---------------------------------------------------------------------------
// parser diagnostics
// ---------------------------------------------------------------------------

TEST(Parser, ReportsUndeclaredIdentifier) {
  auto res = compile("__kernel void k(__global int* d) { d[0] = missing; }");
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.build_log.find("missing"), std::string::npos);
}

TEST(Parser, ReportsUnknownFunction) {
  auto res = compile("__kernel void k(__global int* d) { d[0] = nosuch(1); }");
  EXPECT_FALSE(res.ok());
}

TEST(Parser, RejectsAssignmentToRValue) {
  auto res = compile("__kernel void k(__global int* d) { 1 = 2; }");
  EXPECT_FALSE(res.ok());
}

TEST(Parser, RejectsNonConstantArraySize) {
  auto res = compile("__kernel void k(__global int* d, int n) { float a[n]; }");
  EXPECT_FALSE(res.ok());
}

TEST(Parser, KernelSignatureHandleFlags) {
  auto res = compile(
      "__kernel void k(__global float* a, __local int* b, __constant float* c,"
      " image2d_t img, sampler_t s, float v, int n) {}");
  ASSERT_TRUE(res.ok()) << res.build_log;
  const auto* k = res.module->find_func("k");
  ASSERT_NE(k, nullptr);
  ASSERT_EQ(k->params.size(), 7u);
  EXPECT_TRUE(k->params[0].is_handle);
  EXPECT_TRUE(k->params[1].is_handle);
  EXPECT_TRUE(k->params[1].is_local_ptr);
  EXPECT_TRUE(k->params[2].is_handle);
  EXPECT_TRUE(k->params[3].is_handle);
  EXPECT_TRUE(k->params[4].is_handle);
  EXPECT_FALSE(k->params[5].is_handle);
  EXPECT_FALSE(k->params[6].is_handle);
}

TEST(Parser, DetectsBarrierUsageTransitively) {
  auto res = compile(
      "void helper() { barrier(1); }\n"
      "__kernel void direct(__global int* d) { barrier(1); }\n"
      "__kernel void indirect(__global int* d) { helper(); }\n"
      "__kernel void none(__global int* d) { d[0] = 1; }");
  ASSERT_TRUE(res.ok()) << res.build_log;
  EXPECT_TRUE(res.module->find_func("direct")->uses_barrier);
  EXPECT_TRUE(res.module->find_func("indirect")->uses_barrier);
  EXPECT_FALSE(res.module->find_func("none")->uses_barrier);
}

// ---------------------------------------------------------------------------
// interpreter semantics
// ---------------------------------------------------------------------------

TEST(Interp, UnsignedWrapAround) {
  KernelRunner r(
      "__kernel void k(__global uint* d) {\n"
      "  uint x = 0xFFFFFFFFu;\n"
      "  d[0] = x + 1u;\n"
      "  d[1] = x * 2u;\n"
      "  d[2] = 0u - 1u;\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  std::uint32_t out[3] = {9, 9, 9};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 0xFFFFFFFEu);
  EXPECT_EQ(out[2], 0xFFFFFFFFu);
}

TEST(Interp, SignedNarrowingAndPromotion) {
  KernelRunner r(
      "__kernel void k(__global int* d) {\n"
      "  char c = 200;\n"   // wraps to -56
      "  short s = 40000;\n"  // wraps to -25536
      "  d[0] = c;\n"
      "  d[1] = s;\n"
      "  uchar u = 200;\n"
      "  d[2] = u + 100;\n"  // promoted to int: 300
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  std::int32_t out[3] = {};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_EQ(out[0], -56);
  EXPECT_EQ(out[1], -25536);
  EXPECT_EQ(out[2], 300);
}

TEST(Interp, IntegerDivisionAndModulo) {
  KernelRunner r(
      "__kernel void k(__global int* d) {\n"
      "  d[0] = -7 / 2;\n"
      "  d[1] = -7 % 2;\n"
      "  d[2] = 7u % 3u;\n"
      "}");
  ASSERT_TRUE(r.res.ok());
  std::int32_t out[3] = {};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_EQ(out[0], -3);
  EXPECT_EQ(out[1], -1);
  EXPECT_EQ(out[2], 1);
}

TEST(Interp, DivisionByZeroIsRuntimeError) {
  KernelRunner r("__kernel void k(__global int* d, int z) { d[0] = 1 / z; }");
  ASSERT_TRUE(r.res.ok());
  std::int32_t out[1] = {};
  r.buffer(out);
  r.scalar<std::int32_t>(0);
  const auto lr = r.run(1);
  EXPECT_FALSE(lr.ok);
  EXPECT_NE(lr.error.find("zero"), std::string::npos);
}

TEST(Interp, ShiftCountMasksToWidth) {
  KernelRunner r(
      "__kernel void k(__global uint* d) {\n"
      "  uint one = 1u;\n"
      "  d[0] = one << 33;\n"  // 33 & 31 == 1
      "}");
  ASSERT_TRUE(r.res.ok());
  std::uint32_t out[1] = {};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_EQ(out[0], 2u);
}

TEST(Interp, TernaryShortCircuitAndLogicalOps) {
  KernelRunner r(
      "__kernel void k(__global int* d, int z) {\n"
      "  d[0] = z != 0 && (10 / z) > 1 ? 1 : 0;\n"  // no div by zero
      "  d[1] = z == 0 || (10 / (z + 1)) > 100 ? 7 : 8;\n"
      "}");
  ASSERT_TRUE(r.res.ok());
  std::int32_t out[2] = {};
  r.buffer(out);
  r.scalar<std::int32_t>(0);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 7);
}

TEST(Interp, VectorConstructSwizzleAndArith) {
  KernelRunner r(
      "__kernel void k(__global float* d) {\n"
      "  float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);\n"
      "  float4 w = v * 2.0f + (float4)(0.5f);\n"
      "  d[0] = w.x; d[1] = w.y; d[2] = w.z; d[3] = w.w;\n"
      "  float2 p = w.xy;\n"
      "  d[4] = p.y;\n"
      "  v.x = 100.0f;\n"
      "  d[5] = v.x + v.w;\n"
      "  d[6] = dot(v, v);\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  float out[7] = {};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  EXPECT_FLOAT_EQ(out[1], 4.5f);
  EXPECT_FLOAT_EQ(out[2], 6.5f);
  EXPECT_FLOAT_EQ(out[3], 8.5f);
  EXPECT_FLOAT_EQ(out[4], 4.5f);
  EXPECT_FLOAT_EQ(out[5], 104.0f);
  EXPECT_FLOAT_EQ(out[6], 100.0f * 100.0f + 4.0f + 9.0f + 16.0f);
}

TEST(Interp, StructFieldsAndPointers) {
  KernelRunner r(
      "typedef struct { float x; int count; float y; } Item;\n"
      "__kernel void k(__global Item* items, int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i >= n) return;\n"
      "  items[i].y = items[i].x * 2.0f;\n"
      "  items[i].count = items[i].count + i;\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  struct Item {
    float x;
    std::int32_t count;
    float y;
  };
  std::vector<Item> items(8);
  for (int i = 0; i < 8; ++i) items[static_cast<std::size_t>(i)] = {1.0f * i, 10, 0.0f};
  r.buffer(items.data());
  r.scalar<std::int32_t>(8);
  ASSERT_TRUE(r.run(8).ok);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(items[static_cast<std::size_t>(i)].y, 2.0f * i);
    EXPECT_EQ(items[static_cast<std::size_t>(i)].count, 10 + i);
  }
}

TEST(Interp, StructByValueParamIsACopy) {
  KernelRunner r(
      "typedef struct { int a; int b; } Pair;\n"
      "int use(Pair p) { p.a = 999; return p.a + p.b; }\n"
      "__kernel void k(__global int* d) {\n"
      "  Pair p; p.a = 1; p.b = 2;\n"
      "  d[0] = use(p);\n"
      "  d[1] = p.a;\n"  // unchanged: callee got a copy
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  std::int32_t out[2] = {};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_EQ(out[0], 1001);
  EXPECT_EQ(out[1], 1);
}

TEST(Interp, PrivateArraysAndLoops) {
  KernelRunner r(
      "__kernel void k(__global int* d) {\n"
      "  int acc[8];\n"
      "  for (int i = 0; i < 8; i = i + 1) acc[i] = i * i;\n"
      "  int sum = 0;\n"
      "  for (int i = 0; i < 8; ++i) sum += acc[i];\n"
      "  d[0] = sum;\n"
      "}");
  ASSERT_TRUE(r.res.ok());
  std::int32_t out[1] = {};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_EQ(out[0], 140);
}

TEST(Interp, WhileDoWhileBreakContinue) {
  KernelRunner r(
      "__kernel void k(__global int* d) {\n"
      "  int i = 0; int sum = 0;\n"
      "  while (1) { i = i + 1; if (i > 10) break; if (i % 2 == 0) continue; sum += i; }\n"
      "  d[0] = sum;\n"  // 1+3+5+7+9
      "  int j = 100; int c = 0;\n"
      "  do { c = c + 1; j = j / 2; } while (j > 0);\n"
      "  d[1] = c;\n"  // 100->50->25->12->6->3->1->0: 7 halvings
      "}");
  ASSERT_TRUE(r.res.ok());
  std::int32_t out[2] = {};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_EQ(out[0], 25);
  EXPECT_EQ(out[1], 7);
}

TEST(Interp, AddressOfAndDeref) {
  KernelRunner r(
      "void bump(__global int* p) { *p = *p + 5; }\n"
      "__kernel void k(__global int* d) {\n"
      "  bump(&d[3]);\n"
      "  d[0] = *(d + 3);\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  std::int32_t out[4] = {0, 0, 0, 10};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_EQ(out[3], 15);
  EXPECT_EQ(out[0], 15);
}

TEST(Interp, NullDerefIsRuntimeErrorNotCrash) {
  KernelRunner r("__kernel void k(__global int* d) { d[0] = 1; }");
  ASSERT_TRUE(r.res.ok());
  r.buffer(nullptr);
  const auto lr = r.run(1);
  EXPECT_FALSE(lr.ok);
}

TEST(Interp, MissingReturnIsRuntimeError) {
  KernelRunner r(
      "int f(int x) { if (x > 0) return x; }\n"
      "__kernel void k(__global int* d) { d[0] = f(-1); }");
  ASSERT_TRUE(r.res.ok());
  std::int32_t out[1] = {};
  r.buffer(out);
  EXPECT_FALSE(r.run(1).ok);
}

TEST(Interp, BarrierReductionAcrossGroups) {
  KernelRunner r(
      "__kernel void k(__global const int* in, __global int* out,\n"
      "                __local int* tmp, int n) {\n"
      "  int gid = get_global_id(0);\n"
      "  int lid = get_local_id(0);\n"
      "  tmp[lid] = gid < n ? in[gid] : 0;\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {\n"
      "    if (lid < s) tmp[lid] += tmp[lid + s];\n"
      "    barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  }\n"
      "  if (lid == 0) out[get_group_id(0)] = tmp[0];\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  const int n = 256;
  std::vector<std::int32_t> in(n);
  std::iota(in.begin(), in.end(), 0);
  std::vector<std::int32_t> out(n / 32, 0);
  r.buffer(in.data());
  r.buffer(out.data());
  r.local(32 * 4);
  r.scalar<std::int32_t>(n);
  ASSERT_TRUE(r.run(n, 32).ok);
  const std::int64_t total = std::accumulate(out.begin(), out.end(), std::int64_t{0});
  EXPECT_EQ(total, static_cast<std::int64_t>(n) * (n - 1) / 2);
}

TEST(Interp, StaticLocalDeclarationInKernelBody) {
  KernelRunner r(
      "__kernel void k(__global int* out) {\n"
      "  __local int tmp[16];\n"
      "  int lid = get_local_id(0);\n"
      "  tmp[lid] = lid * 10;\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = tmp[15 - lid];\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  std::vector<std::int32_t> out(16, -1);
  r.buffer(out.data());
  ASSERT_TRUE(r.run(16, 16).ok);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], (15 - i) * 10);
}

TEST(Interp, AtomicsAreAtomicAcrossWorkItems) {
  KernelRunner r(
      "__kernel void k(__global uint* counter) {\n"
      "  atomic_add(&counter[0], 1u);\n"
      "  atomic_max(&counter[1], (uint)get_global_id(0));\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  std::uint32_t counters[2] = {0, 0};
  r.buffer(counters);
  ASSERT_TRUE(r.run(1024, 64).ok);
  EXPECT_EQ(counters[0], 1024u);
  EXPECT_EQ(counters[1], 1023u);
}

TEST(Interp, MathBuiltinsMatchHost) {
  KernelRunner r(
      "__kernel void k(__global float* d, float x) {\n"
      "  d[0] = sqrt(x); d[1] = exp(x); d[2] = log(x); d[3] = pow(x, 3.0f);\n"
      "  d[4] = fmin(x, 1.0f); d[5] = fmax(x, 10.0f); d[6] = floor(x);\n"
      "  d[7] = mad(x, 2.0f, 1.0f); d[8] = clamp(x, 0.0f, 3.0f);\n"
      "  d[9] = fabs(-x); d[10] = rsqrt(x); d[11] = atan2(x, 2.0f);\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  float out[12] = {};
  const float x = 4.2f;
  r.buffer(out);
  r.scalar(x);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_NEAR(out[0], std::sqrt(x), 1e-5);
  EXPECT_NEAR(out[1], std::exp(x), 1e-2);
  EXPECT_NEAR(out[2], std::log(x), 1e-5);
  EXPECT_NEAR(out[3], std::pow(x, 3.0f), 1e-2);
  EXPECT_FLOAT_EQ(out[4], 1.0f);
  EXPECT_FLOAT_EQ(out[5], 10.0f);
  EXPECT_FLOAT_EQ(out[6], 4.0f);
  EXPECT_NEAR(out[7], x * 2.0f + 1.0f, 1e-5);
  EXPECT_FLOAT_EQ(out[8], 3.0f);
  EXPECT_FLOAT_EQ(out[9], x);
  EXPECT_NEAR(out[10], 1.0f / std::sqrt(x), 1e-5);
  EXPECT_NEAR(out[11], std::atan2(x, 2.0f), 1e-5);
}

TEST(Interp, IntMinMaxAbsVariants) {
  KernelRunner r(
      "__kernel void k(__global int* d) {\n"
      "  d[0] = min(-3, 5);\n"
      "  d[1] = max(-3, 5);\n"
      "  d[2] = (int)abs(-17);\n"
      "  d[3] = (int)min(3u, 5u);\n"
      "  d[4] = clamp(42, 0, 10);\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  std::int32_t out[5] = {};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_EQ(out[0], -3);
  EXPECT_EQ(out[1], 5);
  EXPECT_EQ(out[2], 17);
  EXPECT_EQ(out[3], 3);
  EXPECT_EQ(out[4], 10);
}

TEST(Interp, AsTypeBitcasts) {
  KernelRunner r(
      "__kernel void k(__global uint* d, float f) {\n"
      "  d[0] = as_uint(f);\n"
      "  d[1] = as_uint(as_float(d[0]));\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  std::uint32_t out[2] = {};
  const float f = -123.456f;
  r.buffer(out);
  r.scalar(f);
  ASSERT_TRUE(r.run(1).ok);
  std::uint32_t want = 0;
  std::memcpy(&want, &f, 4);
  EXPECT_EQ(out[0], want);
  EXPECT_EQ(out[1], want);
}

TEST(Interp, ConvertFunctions) {
  KernelRunner r(
      "__kernel void k(__global int* d) {\n"
      "  d[0] = convert_int(3.9f);\n"
      "  d[1] = (int)convert_uint(7.2f);\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  std::int32_t out[2] = {};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_EQ(out[0], 3);
  EXPECT_EQ(out[1], 7);
}

// ---------------------------------------------------------------------------
// NDRange properties
// ---------------------------------------------------------------------------

TEST(NDRange, IdsConsistent2D) {
  KernelRunner r(
      "__kernel void k(__global int* d, int w) {\n"
      "  int x = get_global_id(0);\n"
      "  int y = get_global_id(1);\n"
      "  int check = (int)(get_group_id(0) * get_local_size(0) + get_local_id(0));\n"
      "  d[y * w + x] = x == check ? (y * w + x) : -1;\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  const int w = 16;
  const int h = 8;
  std::vector<std::int32_t> out(static_cast<std::size_t>(w * h), -2);
  r.buffer(out.data());
  r.scalar<std::int32_t>(w);
  NDRange nd;
  nd.dim = 2;
  nd.global[0] = w;
  nd.global[1] = h;
  nd.local[0] = 4;
  nd.local[1] = 2;
  ASSERT_TRUE(clc::execute_ndrange(*r.res.module, *r.kernel, r.args, nd).ok);
  for (int i = 0; i < w * h; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(NDRange, GlobalOffsetRespected) {
  KernelRunner r(
      "__kernel void k(__global int* d) { d[get_global_id(0)] = 1; }");
  ASSERT_TRUE(r.res.ok());
  std::vector<std::int32_t> out(32, 0);
  r.buffer(out.data());
  NDRange nd;
  nd.dim = 1;
  nd.global[0] = 8;
  nd.local[0] = 4;
  nd.offset[0] = 16;
  ASSERT_TRUE(clc::execute_ndrange(*r.res.module, *r.kernel, r.args, nd).ok);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i >= 16 && i < 24 ? 1 : 0);
}

TEST(NDRange, OpCountGrowsWithWork) {
  KernelRunner r(
      "__kernel void k(__global float* d) {\n"
      "  int i = get_global_id(0);\n"
      "  d[i] = d[i] * 2.0f + 1.0f;\n"
      "}");
  ASSERT_TRUE(r.res.ok());
  std::vector<float> buf(4096, 1.0f);
  r.buffer(buf.data());
  const auto small = r.run(64, 64);
  const auto large = r.run(4096, 64);
  ASSERT_TRUE(small.ok);
  ASSERT_TRUE(large.ok);
  EXPECT_GT(large.ops, small.ops * 50);  // ~64x the work
}

TEST(NDRange, WrongArgCountFailsCleanly) {
  KernelRunner r("__kernel void k(__global int* d, int n) { d[0] = n; }");
  ASSERT_TRUE(r.res.ok());
  std::int32_t out[1] = {};
  r.buffer(out);  // missing the int arg
  const auto lr = r.run(1);
  EXPECT_FALSE(lr.ok);
}

// Parameterized sweep: barrier reduction must be correct for every
// local size that divides the global size.
class BarrierSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BarrierSweep, ReductionCorrectAtAnyLocalSize) {
  const std::size_t local = GetParam();
  KernelRunner r(
      "__kernel void k(__global const int* in, __global int* out,\n"
      "                __local int* tmp) {\n"
      "  int lid = get_local_id(0);\n"
      "  tmp[lid] = in[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {\n"
      "    if (lid < s) tmp[lid] += tmp[lid + s];\n"
      "    barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  }\n"
      "  if (lid == 0) out[get_group_id(0)] = tmp[0];\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  const std::size_t n = 256;
  std::vector<std::int32_t> in(n, 1);
  std::vector<std::int32_t> out(n / local, 0);
  r.buffer(in.data());
  r.buffer(out.data());
  r.local(local * 4);
  ASSERT_TRUE(r.run(n, local).ok);
  for (const std::int32_t g : out) EXPECT_EQ(g, static_cast<std::int32_t>(local));
}

INSTANTIATE_TEST_SUITE_P(LocalSizes, BarrierSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

// Parameterized sweep: every scalar type round-trips through a global buffer
// with arithmetic applied (checks exact-width loads/stores + conversions).
struct TypeCase {
  const char* cl_type;
  std::size_t size;
};

class ScalarTypeSweep : public ::testing::TestWithParam<TypeCase> {};

TEST_P(ScalarTypeSweep, BufferRoundTripWithArithmetic) {
  const TypeCase& tc = GetParam();
  const std::string src = std::string("__kernel void k(__global ") +
                          tc.cl_type + "* d, int n) {\n" +
                          "  int i = get_global_id(0);\n" +
                          "  if (i < n) d[i] = d[i] + (" + tc.cl_type + ")1;\n" +
                          "}";
  KernelRunner r(src.c_str());
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  const int n = 64;
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(n) * tc.size, 0);
  r.buffer(buf.data());
  r.scalar<std::int32_t>(n);
  ASSERT_TRUE(r.run(64, 8).ok);
  // every element started at 0 and must now encode exactly 1
  for (int i = 0; i < n; ++i) {
    std::uint64_t raw = 0;
    std::memcpy(&raw, buf.data() + static_cast<std::size_t>(i) * tc.size,
                std::min<std::size_t>(tc.size, 8));
    if (std::string(tc.cl_type) == "float") {
      float f = 0;
      std::memcpy(&f, &raw, 4);
      EXPECT_FLOAT_EQ(f, 1.0f);
    } else if (std::string(tc.cl_type) == "double") {
      double f = 0;
      std::memcpy(&f, &raw, 8);
      EXPECT_DOUBLE_EQ(f, 1.0);
    } else {
      EXPECT_EQ(raw, 1u) << tc.cl_type << " at " << i;
    }
  }
}

std::string type_case_name(const ::testing::TestParamInfo<TypeCase>& info) {
  return info.param.cl_type;
}

INSTANTIATE_TEST_SUITE_P(
    Types, ScalarTypeSweep,
    ::testing::Values(TypeCase{"char", 1}, TypeCase{"uchar", 1},
                      TypeCase{"short", 2}, TypeCase{"ushort", 2},
                      TypeCase{"int", 4}, TypeCase{"uint", 4},
                      TypeCase{"long", 8}, TypeCase{"ulong", 8},
                      TypeCase{"float", 4}, TypeCase{"double", 8}),
    type_case_name);

// Compound assignment operators against host semantics.
class CompoundOpSweep
    : public ::testing::TestWithParam<std::pair<const char*, std::int32_t>> {};

TEST_P(CompoundOpSweep, MatchesHost) {
  const auto& [op, want] = GetParam();
  const std::string src = std::string(
                              "__kernel void k(__global int* d) {\n"
                              "  int x = 100;\n"
                              "  x ") + op + " 7;\n  d[0] = x;\n}";
  KernelRunner r(src.c_str());
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  std::int32_t out[1] = {};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_EQ(out[0], want) << "operator " << op;
}

std::string op_case_name(
    const ::testing::TestParamInfo<std::pair<const char*, std::int32_t>>& info) {
  static const char* kNames[] = {"add", "sub", "mul", "div", "mod",
                                 "and", "or",  "xor", "shl", "shr"};
  return kNames[info.index];
}

INSTANTIATE_TEST_SUITE_P(
    Ops, CompoundOpSweep,
    ::testing::Values(std::pair{"+=", 107}, std::pair{"-=", 93},
                      std::pair{"*=", 700}, std::pair{"/=", 14},
                      std::pair{"%=", 2}, std::pair{"&=", 100 & 7},
                      std::pair{"|=", 100 | 7}, std::pair{"^=", 100 ^ 7},
                      std::pair{"<<=", 100 << 7}, std::pair{">>=", 100 >> 7}),
    op_case_name);

TEST(Interp, ThreeDimensionalNDRange) {
  KernelRunner r(
      "__kernel void k(__global int* d, int w, int h) {\n"
      "  int x = get_global_id(0);\n"
      "  int y = get_global_id(1);\n"
      "  int z = get_global_id(2);\n"
      "  d[(z * h + y) * w + x] = x + 10 * y + 100 * z;\n"
      "}");
  ASSERT_TRUE(r.res.ok());
  const int w = 4;
  const int h = 3;
  const int dlen = 2;
  std::vector<std::int32_t> out(static_cast<std::size_t>(w * h * dlen), -1);
  r.buffer(out.data());
  r.scalar<std::int32_t>(w);
  r.scalar<std::int32_t>(h);
  clc::NDRange nd;
  nd.dim = 3;
  nd.global[0] = static_cast<std::size_t>(w);
  nd.global[1] = static_cast<std::size_t>(h);
  nd.global[2] = static_cast<std::size_t>(dlen);
  nd.local[0] = 2;
  nd.local[1] = 1;
  nd.local[2] = 1;
  ASSERT_TRUE(clc::execute_ndrange(*r.res.module, *r.kernel, r.args, nd).ok);
  for (int z = 0; z < dlen; ++z)
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x)
        EXPECT_EQ(out[static_cast<std::size_t>((z * h + y) * w + x)],
                  x + 10 * y + 100 * z);
}

TEST(Interp, SNotationSwizzle) {
  KernelRunner r(
      "__kernel void k(__global float* d) {\n"
      "  float4 v = (float4)(10.0f, 20.0f, 30.0f, 40.0f);\n"
      "  d[0] = v.s0;\n"
      "  d[1] = v.s3;\n"
      "  float2 p = v.s31;\n"
      "  d[2] = p.x;\n"
      "  d[3] = p.y;\n"
      "  v.s2 = -1.0f;\n"
      "  d[4] = v.z;\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  float out[5] = {};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  EXPECT_FLOAT_EQ(out[0], 10.0f);
  EXPECT_FLOAT_EQ(out[1], 40.0f);
  EXPECT_FLOAT_EQ(out[2], 40.0f);
  EXPECT_FLOAT_EQ(out[3], 20.0f);
  EXPECT_FLOAT_EQ(out[4], -1.0f);
}

TEST(Interp, StructPointerArrowAccess) {
  KernelRunner r(
      "typedef struct { float a; float b; } P;\n"
      "void bump(__global P* p) { p->b = p->a * 3.0f; }\n"
      "__kernel void k(__global P* ps, int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) bump(&ps[i]);\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  struct P {
    float a, b;
  };
  std::vector<P> ps(16);
  for (int i = 0; i < 16; ++i) ps[static_cast<std::size_t>(i)] = {1.0f * i, 0};
  r.buffer(ps.data());
  r.scalar<std::int32_t>(16);
  ASSERT_TRUE(r.run(16).ok);
  for (int i = 0; i < 16; ++i)
    EXPECT_FLOAT_EQ(ps[static_cast<std::size_t>(i)].b, 3.0f * i);
}

TEST(Interp, NestedLoopsAndHelperChain) {
  KernelRunner r(
      "int square(int x) { return x * x; }\n"
      "int sum_squares(int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 1; i <= n; ++i) s += square(i);\n"
      "  return s;\n"
      "}\n"
      "__kernel void k(__global int* d) {\n"
      "  int acc = 0;\n"
      "  for (int outer = 1; outer <= 4; ++outer)\n"
      "    acc += sum_squares(outer);\n"
      "  d[0] = acc;\n"
      "}");
  ASSERT_TRUE(r.res.ok()) << r.res.build_log;
  std::int32_t out[1] = {};
  r.buffer(out);
  ASSERT_TRUE(r.run(1).ok);
  // sum over n=1..4 of sum_{i<=n} i^2 = 1 + 5 + 14 + 30
  EXPECT_EQ(out[0], 50);
}

TEST(Interp, RecursionIsCaughtNotStackOverflow) {
  KernelRunner r(
      "int f(int x) { return f(x + 1); }\n"
      "__kernel void k(__global int* d) { d[0] = f(0); }");
  ASSERT_TRUE(r.res.ok());
  std::int32_t out[1] = {};
  r.buffer(out);
  const auto lr = r.run(1);
  EXPECT_FALSE(lr.ok);
  EXPECT_NE(lr.error.find("depth"), std::string::npos);
}

}  // namespace
