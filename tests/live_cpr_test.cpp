// live_cpr_test.cpp — the live pre-copy checkpoint engine: the dirty-map
// superset property under a seeded random workload, byte-identical restore
// from a streamed checkpoint, and the two chaos sites that guard its failure
// semantics (precopy_round_crash must abort cleanly with zero orphan chunks
// and the previous checkpoint restorable; dirty_map_desync must be healed by
// the live_verify hash audit).
//
// Transport::Thread throughout: app and proxy share one process — and one
// chaoskit engine — so the proxy-side DirtyMapDesync site can be armed and
// observed without CHECL_CHAOS env plumbing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "chaoskit/chaoskit.h"
#include "checl/checl.h"
#include "checl/cl.h"
#include "proxy/client.h"
#include "snapstore/store.h"

namespace {

const char* kSrc = R"CL(
__kernel void add1(__global float* d, int n) {
  int i = get_global_id(0);
  if (i < n) d[i] = d[i] + 1.0f;
}
)CL";

struct Scenario {
  cl_platform_id platform = nullptr;
  cl_device_id device = nullptr;
  cl_context ctx = nullptr;
  cl_command_queue queue = nullptr;
  cl_program prog = nullptr;
  cl_kernel kernel = nullptr;
  cl_mem buf = nullptr;
  int n = 2048;
  std::size_t bytes = 0;

  void create(std::size_t buf_bytes) {
    bytes = buf_bytes;
    n = static_cast<int>(buf_bytes / sizeof(float));
    cl_uint np = 0;
    ASSERT_EQ(clGetPlatformIDs(0, nullptr, &np), CL_SUCCESS);
    std::vector<cl_platform_id> plats(np);
    clGetPlatformIDs(np, plats.data(), nullptr);
    for (cl_platform_id p : plats) {
      if (clGetDeviceIDs(p, CL_DEVICE_TYPE_GPU, 1, &device, nullptr) ==
          CL_SUCCESS) {
        platform = p;
        break;
      }
    }
    ASSERT_NE(platform, nullptr);
    cl_int err = CL_SUCCESS;
    ctx = clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    queue = clCreateCommandQueue(ctx, device, 0, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    std::vector<float> zeros(static_cast<std::size_t>(n), 0.0f);
    buf = clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR, bytes,
                         zeros.data(), &err);
    ASSERT_EQ(err, CL_SUCCESS);
    prog = clCreateProgramWithSource(ctx, 1, &kSrc, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    ASSERT_EQ(clBuildProgram(prog, 1, &device, "", nullptr, nullptr),
              CL_SUCCESS);
    kernel = clCreateKernel(prog, "add1", &err);
    ASSERT_EQ(err, CL_SUCCESS);
    ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof buf, &buf), CL_SUCCESS);
    ASSERT_EQ(clSetKernelArg(kernel, 1, sizeof n, &n), CL_SUCCESS);
  }

  void run_add1(int times) {
    const std::size_t g = static_cast<std::size_t>(n);
    for (int i = 0; i < times; ++i)
      ASSERT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &g, nullptr,
                                       0, nullptr, nullptr),
                CL_SUCCESS);
    ASSERT_EQ(clFinish(queue), CL_SUCCESS);
  }

  std::vector<std::uint8_t> read_all() {
    std::vector<std::uint8_t> out(bytes);
    EXPECT_EQ(clEnqueueReadBuffer(queue, buf, CL_TRUE, 0, bytes, out.data(), 0,
                                  nullptr, nullptr),
              CL_SUCCESS);
    return out;
  }

  void release() {
    if (kernel != nullptr) clReleaseKernel(kernel);
    if (prog != nullptr) clReleaseProgram(prog);
    if (buf != nullptr) clReleaseMemObject(buf);
    if (queue != nullptr) clReleaseCommandQueue(queue);
    if (ctx != nullptr) clReleaseContext(ctx);
    *this = Scenario{};
  }
};

class LiveCprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::filesystem::remove_all(store_root());
    auto& rt = checl::CheclRuntime::instance();
    rt.reset_all();
    checl::NodeConfig node = checl::dual_node();
    node.transport = proxy::Transport::Thread;  // in-process: one chaos engine
    rt.set_node(node);
    rt.store_checkpoints = true;
    rt.store_root = store_root();
    rt.live_checkpoints = true;
    rt.restore_parallel = false;
    checl::bind_checl();
  }
  void TearDown() override {
    chaoskit::Engine::instance().disarm();
    auto& rt = checl::CheclRuntime::instance();
    rt.reset_all();
    rt.store_checkpoints = false;
    rt.live_checkpoints = false;
    rt.live_verify = false;
    rt.restore_parallel = true;
    checl::bind_native();
    std::filesystem::remove_all(store_root());
  }
  static const char* path() { return "/tmp/checl_live_cpr_test.ckpt"; }
  static std::string store_root() { return "/tmp/checl_live_cpr_store"; }
  static checl::CheclRuntime& rt() { return checl::CheclRuntime::instance(); }
  static checl::cpr::Engine& engine() { return rt().engine(); }
};

// Property: after any workload, the chunk dirty map the proxy reports is a
// superset of the chunks whose content actually changed.  A seeded random
// mix of partial writes and kernel launches is compared against before/after
// content hashes at the store's chunk granularity; a changed chunk whose bit
// is clear would be silently dropped from a pre-copy round, so this is the
// live engine's load-bearing invariant.
TEST_F(LiveCprTest, DirtyMapIsSupersetOfChangedChunks) {
  Scenario s;
  s.create(1u << 20);  // 16 chunks at the default 64 KiB
  const std::size_t chunk = rt().store_options.chunk_bytes;
  proxy::Client* c = rt().client();
  ASSERT_NE(c, nullptr);
  const auto remote = checl::as_checl<checl::MemObj>(s.buf)->remote;

  // Settle creation traffic, then clear the map so only the workload counts.
  ASSERT_EQ(clFinish(s.queue), CL_SUCCESS);
  std::uint64_t nchunks = 0;
  std::vector<std::uint8_t> bits;
  ASSERT_EQ(c->mem_dirty_fetch(remote, chunk, /*clear=*/true, nchunks, bits),
            CL_SUCCESS);
  std::vector<std::uint64_t> before;
  ASSERT_EQ(c->mem_chunk_hashes(remote, chunk, before), CL_SUCCESS);

  chaoskit::Prng prng(0xC0FFEE5EEDull);
  for (int op = 0; op < 48; ++op) {
    if (prng.below(4) == 0) {
      // Kernel pass over a random prefix: dirties every chunk it touches.
      int kn = static_cast<int>(prng.below(static_cast<std::uint64_t>(s.n))) + 1;
      ASSERT_EQ(clSetKernelArg(s.kernel, 1, sizeof kn, &kn), CL_SUCCESS);
      const std::size_t g = static_cast<std::size_t>(s.n);
      ASSERT_EQ(clEnqueueNDRangeKernel(s.queue, s.kernel, 1, nullptr, &g,
                                       nullptr, 0, nullptr, nullptr),
                CL_SUCCESS);
    } else {
      // Partial write of random bytes at a random offset.
      const std::size_t len = 64 + prng.below(3 * chunk);
      const std::size_t off = prng.below(s.bytes - len);
      std::vector<std::uint8_t> data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(prng.next());
      ASSERT_EQ(clEnqueueWriteBuffer(s.queue, s.buf, CL_TRUE, off, len,
                                     data.data(), 0, nullptr, nullptr),
                CL_SUCCESS);
    }
  }
  ASSERT_EQ(clFinish(s.queue), CL_SUCCESS);

  std::vector<std::uint64_t> after;
  ASSERT_EQ(c->mem_chunk_hashes(remote, chunk, after), CL_SUCCESS);
  ASSERT_EQ(c->mem_dirty_fetch(remote, chunk, /*clear=*/false, nchunks, bits),
            CL_SUCCESS);
  ASSERT_EQ(before.size(), after.size());
  ASSERT_EQ(nchunks, after.size());

  std::size_t changed = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    if (before[i] == after[i]) continue;
    ++changed;
    EXPECT_TRUE((bits[i / 8] >> (i % 8)) & 1u)
        << "chunk " << i << " changed but its dirty bit is clear";
  }
  EXPECT_GT(changed, 0u);  // the workload must actually exercise the property
  s.release();
}

// A live checkpoint streams pre-copy rounds and still restores byte-identical
// device state — the whole point of the refactor.
TEST_F(LiveCprTest, LiveCheckpointRestoresByteIdentical) {
  Scenario s;
  s.create(256u << 10);
  s.run_add1(3);
  checl::cpr::PhaseTimes pt;
  ASSERT_EQ(engine().checkpoint(path(), &pt), CL_SUCCESS)
      << engine().last_error();
  EXPECT_GE(pt.rounds, 1u);
  EXPECT_GT(pt.precopy_bytes, 0u);  // round 0 streamed the working set
  EXPECT_GT(pt.file_bytes, 0u);
  const std::vector<std::uint8_t> expect = s.read_all();
  s.run_add1(2);  // diverge past the checkpoint
  ASSERT_EQ(engine().restart_in_place(path(), std::nullopt, nullptr),
            CL_SUCCESS)
      << engine().last_error();
  EXPECT_EQ(s.read_all(), expect);
  s.release();
}

// Without store_checkpoints there is no streaming target: the live knob is
// ignored and the engine degrades to the stop-the-world pipeline.
TEST_F(LiveCprTest, LiveKnobIgnoredWithoutStore) {
  rt().store_checkpoints = false;
  Scenario s;
  s.create(64u << 10);
  s.run_add1(1);
  checl::cpr::PhaseTimes pt;
  ASSERT_EQ(engine().checkpoint(path(), &pt), CL_SUCCESS)
      << engine().last_error();
  EXPECT_EQ(pt.rounds, 0u);
  EXPECT_EQ(pt.precopy_ns, 0u);
  EXPECT_FALSE(engine().live_session_open());
  std::remove(path());
  s.release();
}

// precopy_round_crash: the streaming session dies at a pre-copy round
// boundary.  The failed checkpoint must (a) name the site, (b) abort the open
// manifest, (c) leave the previous checkpoint of the same name restorable,
// and (d) leave zero orphan chunk files — a fresh Store::open() of the same
// root sweeps (and counts) anything a leaky abort left behind.
TEST_F(LiveCprTest, PrecopyCrashKeepsPreviousCheckpointAndNoOrphans) {
  Scenario s;
  s.create(256u << 10);
  s.run_add1(2);
  ASSERT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS)
      << engine().last_error();
  const std::vector<std::uint8_t> expect = s.read_all();
  s.run_add1(3);  // diverge so the crashed retry would have new chunks

  auto& chaos = chaoskit::Engine::instance();
  chaoskit::Fault f;
  f.site = chaoskit::Site::PrecopyRoundCrash;
  f.nth = 0;
  chaos.arm(f);
  EXPECT_NE(engine().checkpoint(path(), nullptr), CL_SUCCESS);
  EXPECT_TRUE(chaos.fired());
  EXPECT_NE(engine().last_error().find("[chaos: precopy_round_crash]"),
            std::string::npos)
      << engine().last_error();
  chaos.disarm();
  EXPECT_FALSE(engine().live_session_open());  // the session aborted

  // The previous checkpoint is intact and restores byte-identical.
  ASSERT_EQ(engine().restart_in_place(path(), std::nullopt, nullptr),
            CL_SUCCESS)
      << engine().last_error();
  EXPECT_EQ(s.read_all(), expect);
  s.release();

  // Orphan audit: close the engine's store, reopen the root fresh.  abort()
  // must have unlinked every provisional chunk, so the sweep finds nothing
  // and the manifest survives.
  rt().reset_all();
  snapstore::Store audit;
  ASSERT_TRUE(audit.open(store_root()).ok());
  EXPECT_EQ(audit.stats().orphans_swept, 0u);
  EXPECT_TRUE(audit.contains(path()));
}

// dirty_map_desync: the proxy under-reports one dirty chunk in the residue
// fetch.  With live_verify on, the post-residue hash audit must catch the
// stale chunk, re-stream it (healed_chunks), and the sealed checkpoint must
// still restore byte-identical.
TEST_F(LiveCprTest, DirtyMapDesyncHealedByLiveVerify) {
  rt().live_verify = true;
  Scenario s;
  s.create(64u << 10);
  s.run_add1(2);

  // Drive the two live phases separately so the dirtying kernel and the armed
  // fault land deterministically between them.
  ASSERT_EQ(engine().live_begin(path()), CL_SUCCESS) << engine().last_error();
  s.run_add1(1);  // dirty the buffer after round 0 cleared its map

  auto& chaos = chaoskit::Engine::instance();
  chaoskit::Fault f;
  f.site = chaoskit::Site::DirtyMapDesync;
  f.nth = 0;  // the residue fetch is the next MemDirtyFetch
  f.arg = 0;
  chaos.arm(f);
  checl::cpr::PhaseTimes pt;
  ASSERT_EQ(engine().live_finish(path(), &pt), CL_SUCCESS)
      << engine().last_error();
  EXPECT_TRUE(chaos.fired());
  chaos.disarm();
  EXPECT_GE(pt.healed_chunks, 1u);  // the audit re-streamed the dropped chunk

  const std::vector<std::uint8_t> expect = s.read_all();
  s.run_add1(2);
  ASSERT_EQ(engine().restart_in_place(path(), std::nullopt, nullptr),
            CL_SUCCESS)
      << engine().last_error();
  EXPECT_EQ(s.read_all(), expect);
  s.release();
}

// The same desync without live_verify is the control: the checkpoint seals
// with the stale round-0 chunk, and restore silently resurrects stale bytes.
// This pins WHY the knob exists (and that the chaos site really corrupts).
TEST_F(LiveCprTest, DirtyMapDesyncWithoutVerifyGoesStale) {
  rt().live_verify = false;
  Scenario s;
  s.create(64u << 10);
  s.run_add1(2);
  ASSERT_EQ(engine().live_begin(path()), CL_SUCCESS) << engine().last_error();
  s.run_add1(1);  // value now 3.0, but round 0 streamed 2.0

  auto& chaos = chaoskit::Engine::instance();
  chaoskit::Fault f;
  f.site = chaoskit::Site::DirtyMapDesync;
  chaos.arm(f);
  checl::cpr::PhaseTimes pt;
  ASSERT_EQ(engine().live_finish(path(), &pt), CL_SUCCESS)
      << engine().last_error();
  EXPECT_TRUE(chaos.fired());
  chaos.disarm();
  EXPECT_EQ(pt.healed_chunks, 0u);

  const std::vector<std::uint8_t> live = s.read_all();  // post-finish truth
  ASSERT_EQ(engine().restart_in_place(path(), std::nullopt, nullptr),
            CL_SUCCESS)
      << engine().last_error();
  EXPECT_NE(s.read_all(), live);  // restored state is stale — by construction
  s.release();
}

}  // namespace
