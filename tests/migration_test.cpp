// migration_test.cpp — the migration cost model Tm = alpha*M + Tr + beta:
// least-squares fit, prediction accuracy on synthetic and real migrations,
// and the correlation statistic behind Figure 5's 0.99.
#include <gtest/gtest.h>

#include <cstdio>

#include "checl/checl.h"
#include "workloads/harness.h"

namespace {

using checl::migration::correlation;
using checl::migration::fit;
using checl::migration::Model;
using checl::migration::Sample;

TEST(MigrationModel, ExactFitOnLinearData) {
  // y = 2*x + 1e6 (+ Tr)
  std::vector<Sample> samples;
  for (std::uint64_t mb = 1; mb <= 10; ++mb) {
    Sample s;
    s.file_bytes = mb * 1'000'000;
    s.recompile_ns = mb * 777;
    s.total_ns = 2 * s.file_bytes + 1'000'000 + s.recompile_ns;
    samples.push_back(s);
  }
  const Model m = fit(samples);
  EXPECT_NEAR(m.alpha_ns_per_byte, 2.0, 1e-6);
  EXPECT_NEAR(m.beta_ns, 1'000'000.0, 1.0);
  for (const Sample& s : samples)
    EXPECT_NEAR(static_cast<double>(m.predict_ns(s.file_bytes, s.recompile_ns)),
                static_cast<double>(s.total_ns), 2.0);
}

TEST(MigrationModel, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fit({}).alpha_ns_per_byte, 0.0);
  // one sample: flat model through the point
  const Sample s{1000, 5000, 0};
  const Model m = fit({&s, 1});
  EXPECT_DOUBLE_EQ(m.alpha_ns_per_byte, 0.0);
  EXPECT_DOUBLE_EQ(m.beta_ns, 5000.0);
  // zero variance in x
  std::vector<Sample> same{{100, 10, 0}, {100, 20, 0}};
  const Model m2 = fit(same);
  EXPECT_DOUBLE_EQ(m2.alpha_ns_per_byte, 0.0);
  EXPECT_DOUBLE_EQ(m2.beta_ns, 15.0);
}

TEST(MigrationModel, CorrelationStatistic) {
  std::vector<Sample> perfect;
  for (std::uint64_t i = 1; i <= 8; ++i) perfect.push_back({i * 100, i * 900, 0});
  EXPECT_NEAR(correlation(perfect), 1.0, 1e-9);
  std::vector<Sample> anti;
  for (std::uint64_t i = 1; i <= 8; ++i) anti.push_back({i * 100, (9 - i) * 900, 0});
  EXPECT_NEAR(correlation(anti), -1.0, 1e-9);
  EXPECT_DOUBLE_EQ(correlation({}), 0.0);
}

TEST(MigrationModel, PredictClampsAtZero) {
  Model m;
  m.alpha_ns_per_byte = -5.0;
  m.beta_ns = 0;
  EXPECT_EQ(m.predict_ns(1'000'000, 0), 0u);
}

// End-to-end: calibrate on measured migrations of one workload at several
// sizes, then predict a held-out size within a reasonable band.
TEST(MigrationEndToEnd, PredictsHeldOutMigration) {
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;
  auto& rt = checl::CheclRuntime::instance();
  const char* path = "/tmp/checl_migration_e2e.ckpt";

  auto measure = [&](unsigned shrink) -> Sample {
    workloads::fresh_process(workloads::Binding::CheCL, node);
    workloads::Env env;
    env.shrink = shrink;
    EXPECT_EQ(workloads::open_env(env, CL_DEVICE_TYPE_GPU, "NVIDIA"), CL_SUCCESS);
    auto w = workloads::create("oclVectorAdd");
    EXPECT_EQ(w->setup(env), CL_SUCCESS);
    EXPECT_EQ(w->run(env), CL_SUCCESS);
    checl::cpr::PhaseTimes pt;
    checl::cpr::RestartBreakdown bd;
    EXPECT_EQ(rt.engine().checkpoint(path, &pt), CL_SUCCESS);
    EXPECT_EQ(rt.engine().restart_in_place(path, std::nullopt, &bd), CL_SUCCESS);
    Sample s;
    s.file_bytes = pt.file_bytes;
    s.total_ns = pt.total_ns() + bd.total_ns();
    s.recompile_ns =
        bd.class_ns[static_cast<std::size_t>(checl::ObjType::Program)];
    w->teardown(env);
    workloads::close_env(env);
    return s;
  };

  std::vector<Sample> calib;
  for (const unsigned shrink : {16u, 8u, 2u}) calib.push_back(measure(shrink));
  const Sample held_out = measure(4);
  const Model m = fit(calib);
  EXPECT_GT(m.alpha_ns_per_byte, 0.0);  // bigger files take longer

  const std::uint64_t pred = m.predict_ns(held_out.file_bytes, held_out.recompile_ns);
  const double rel_err =
      std::abs(static_cast<double>(pred) - static_cast<double>(held_out.total_ns)) /
      static_cast<double>(held_out.total_ns);
  EXPECT_LT(rel_err, 0.15) << "pred=" << pred << " actual=" << held_out.total_ns;

  checl::CheclRuntime::instance().reset_all();
  checl::bind_native();
  std::remove(path);
}

// Figure 5's statistic at test scale: across workloads, checkpoint time is
// strongly correlated with file size.
TEST(MigrationEndToEnd, CheckpointTimeCorrelatesWithFileSize) {
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;
  auto& rt = checl::CheclRuntime::instance();
  const char* path = "/tmp/checl_migration_corr.ckpt";

  std::vector<Sample> samples;
  for (const char* name :
       {"oclVectorAdd", "oclMatrixMul", "Triad", "Stencil2D", "oclReduction",
        "MD", "FFT", "oclHistogram"}) {
    workloads::fresh_process(workloads::Binding::CheCL, node);
    workloads::Env env;
    env.shrink = 8;
    ASSERT_EQ(workloads::open_env(env, CL_DEVICE_TYPE_GPU, "NVIDIA"), CL_SUCCESS);
    auto w = workloads::create(name);
    ASSERT_EQ(w->setup(env), CL_SUCCESS);
    ASSERT_EQ(w->run(env), CL_SUCCESS);
    checl::cpr::PhaseTimes pt;
    ASSERT_EQ(rt.engine().checkpoint(path, &pt), CL_SUCCESS);
    samples.push_back({pt.file_bytes, pt.total_ns(), 0});
    w->teardown(env);
    workloads::close_env(env);
  }
  EXPECT_GT(correlation(samples), 0.95);  // paper: 0.99
  checl::CheclRuntime::instance().reset_all();
  checl::bind_native();
  std::remove(path);
}

}  // namespace
