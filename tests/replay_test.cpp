// replay_test.cpp — the replayable object graph: codec round trips over
// randomized graphs, v1 backward compatibility, forward-compatible section
// skipping, restore-plan dependency validation, and the transactional
// parallel executor (speedup, counters, rollback on injected failure).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "chaoskit/chaoskit.h"
#include "checl/checl.h"
#include "checl/cl.h"
#include "core/cpr.h"
#include "core/object_db.h"
#include "core/replay/codec.h"
#include "core/replay/exec.h"
#include "core/replay/plan.h"
#include "core/runtime.h"
#include "core/stats.h"
#include "core/supervisor.h"
#include "ipc/serial.h"
#include "slimcr/snapshot.h"

namespace {

using checl::ContextObj;
using checl::DeviceObj;
using checl::EventObj;
using checl::KernelObj;
using checl::MemObj;
using checl::Object;
using checl::ObjectDB;
using checl::ObjType;
using checl::PlatformObj;
using checl::ProgramObj;
using checl::QueueObj;
using checl::SamplerObj;

// A standalone object database that tears its contents down on scope exit
// (reverse creation order, the same walk the restore path uses).
struct Graph {
  ObjectDB db;
  ~Graph() { checl::replay::destroy_decoded(db, db.all()); }
};

// Builds a random but well-formed object graph: every required link points at
// an earlier object of the right class, optional links may be anything.
void build_random(ObjectDB& db, std::mt19937& rng) {
  auto n_between = [&](std::uint32_t lo, std::uint32_t hi) {
    return lo + rng() % (hi - lo + 1);
  };

  std::vector<PlatformObj*> plats;
  for (std::uint32_t i = 0, n = n_between(1, 2); i < n; ++i) {
    auto* p = new PlatformObj();
    p->name = "SimCL test platform " + std::to_string(i);
    p->index = i;
    db.add(p);
    plats.push_back(p);
  }
  std::vector<DeviceObj*> devs;
  for (std::uint32_t i = 0, n = n_between(1, 3); i < n; ++i) {
    auto* d = new DeviceObj();
    d->platform = plats[rng() % plats.size()];
    d->platform->retain();
    d->type = rng() % 2 == 0 ? CL_DEVICE_TYPE_GPU : CL_DEVICE_TYPE_CPU;
    d->index_in_type = i;
    d->name = "dev" + std::to_string(i);
    db.add(d);
    devs.push_back(d);
  }
  std::vector<ContextObj*> ctxs;
  for (std::uint32_t i = 0, n = n_between(1, 2); i < n; ++i) {
    auto* c = new ContextObj();
    for (std::uint32_t j = 0, nd = n_between(1, 2); j < nd; ++j) {
      DeviceObj* d = devs[rng() % devs.size()];
      d->retain();
      c->devices.push_back(d);
    }
    if (rng() % 2 == 0)
      c->properties = {CL_CONTEXT_PLATFORM,
                       static_cast<std::int64_t>(rng() % 1000), 0};
    db.add(c);
    ctxs.push_back(c);
  }
  auto pick_ctx = [&] {
    ContextObj* c = ctxs[rng() % ctxs.size()];
    c->retain();
    return c;
  };
  std::vector<QueueObj*> queues;
  for (std::uint32_t i = 0, n = n_between(0, 3); i < n; ++i) {
    auto* q = new QueueObj();
    q->ctx = pick_ctx();
    q->dev = devs[rng() % devs.size()];
    q->dev->retain();
    q->properties = rng() % 2;
    db.add(q);
    queues.push_back(q);
  }
  std::vector<MemObj*> mems;
  for (std::uint32_t i = 0, n = n_between(0, 4); i < n; ++i) {
    auto* m = new MemObj();
    m->ctx = pick_ctx();
    m->flags = CL_MEM_READ_WRITE;
    m->size = 64 * (1 + rng() % 8);
    if (rng() % 4 == 0) {
      m->is_image = true;
      m->format = {CL_RGBA, CL_UNSIGNED_INT8};
      m->width = 8 + rng() % 8;
      m->height = 8;
      m->row_pitch = 0;
    }
    db.add(m);
    mems.push_back(m);
  }
  std::vector<SamplerObj*> samplers;
  for (std::uint32_t i = 0, n = n_between(0, 2); i < n; ++i) {
    auto* s = new SamplerObj();
    s->ctx = pick_ctx();
    s->normalized = rng() % 2;
    db.add(s);
    samplers.push_back(s);
  }
  std::vector<ProgramObj*> progs;
  for (std::uint32_t i = 0, n = n_between(0, 3); i < n; ++i) {
    auto* p = new ProgramObj();
    p->ctx = pick_ctx();
    p->source = "__kernel void k" + std::to_string(i) +
                "(__global float* d, int n) { d[0] = n; }";
    p->build_options = rng() % 2 == 0 ? "" : "-DX=1";
    p->built = rng() % 2 == 0;
    db.add(p);
    progs.push_back(p);
  }
  for (std::uint32_t i = 0, n = progs.empty() ? 0 : n_between(0, 3); i < n;
       ++i) {
    auto* k = new KernelObj();
    k->prog = progs[rng() % progs.size()];
    k->prog->retain();
    k->name = "k" + std::to_string(i);
    for (std::uint32_t a = 0, na = n_between(0, 3); a < na; ++a) {
      KernelObj::ArgRec rec;
      switch (rng() % 4) {
        case 0:
          rec.kind = KernelObj::ArgRec::Kind::Bytes;
          rec.bytes = {1, 2, 3, static_cast<std::uint8_t>(rng() % 255)};
          break;
        case 1:
          if (!mems.empty()) {
            rec.kind = KernelObj::ArgRec::Kind::Mem;
            rec.mem = mems[rng() % mems.size()];
            rec.mem->retain();
          }
          break;
        case 2:
          if (!samplers.empty()) {
            rec.kind = KernelObj::ArgRec::Kind::Sampler;
            rec.sampler = samplers[rng() % samplers.size()];
            rec.sampler->retain();
          }
          break;
        default:
          rec.kind = KernelObj::ArgRec::Kind::Local;
          rec.local_size = 16 * (1 + rng() % 4);
          break;
      }
      k->args.push_back(std::move(rec));
    }
    db.add(k);
  }
  for (std::uint32_t i = 0, n = queues.empty() ? 0 : n_between(0, 2); i < n;
       ++i) {
    auto* e = new EventObj();
    e->queue = queues[rng() % queues.size()];
    e->queue->retain();
    e->command_type = CL_COMMAND_MARKER;
    db.add(e);
  }
}

// Decoded counterpart of an original object (nullptr when absent).
Object* twin(const std::unordered_map<std::uint64_t, Object*>& map,
             const Object* orig) {
  if (orig == nullptr) return nullptr;
  const auto it = map.find(orig->id);
  return it != map.end() ? it->second : nullptr;
}

void expect_equal(const std::unordered_map<std::uint64_t, Object*>& map,
                  const Object* orig, const Object* copy) {
  ASSERT_NE(copy, nullptr) << checl::replay::object_label(orig);
  ASSERT_EQ(copy->otype, orig->otype);
  switch (orig->otype) {
    case ObjType::Platform: {
      const auto* a = static_cast<const PlatformObj*>(orig);
      const auto* b = static_cast<const PlatformObj*>(copy);
      EXPECT_EQ(b->name, a->name);
      EXPECT_EQ(b->index, a->index);
      break;
    }
    case ObjType::Device: {
      const auto* a = static_cast<const DeviceObj*>(orig);
      const auto* b = static_cast<const DeviceObj*>(copy);
      EXPECT_EQ(b->platform, twin(map, a->platform));
      EXPECT_EQ(b->type, a->type);
      EXPECT_EQ(b->index_in_type, a->index_in_type);
      EXPECT_EQ(b->name, a->name);
      break;
    }
    case ObjType::Context: {
      const auto* a = static_cast<const ContextObj*>(orig);
      const auto* b = static_cast<const ContextObj*>(copy);
      ASSERT_EQ(b->devices.size(), a->devices.size());
      for (std::size_t i = 0; i < a->devices.size(); ++i)
        EXPECT_EQ(b->devices[i], twin(map, a->devices[i]));
      EXPECT_EQ(b->properties, a->properties);
      break;
    }
    case ObjType::Queue: {
      const auto* a = static_cast<const QueueObj*>(orig);
      const auto* b = static_cast<const QueueObj*>(copy);
      EXPECT_EQ(b->ctx, twin(map, a->ctx));
      EXPECT_EQ(b->dev, twin(map, a->dev));
      EXPECT_EQ(b->properties, a->properties);
      break;
    }
    case ObjType::Mem: {
      const auto* a = static_cast<const MemObj*>(orig);
      const auto* b = static_cast<const MemObj*>(copy);
      EXPECT_EQ(b->ctx, twin(map, a->ctx));
      EXPECT_EQ(b->flags, a->flags);
      EXPECT_EQ(b->size, a->size);
      EXPECT_EQ(b->is_image, a->is_image);
      EXPECT_EQ(b->format.image_channel_order, a->format.image_channel_order);
      EXPECT_EQ(b->width, a->width);
      EXPECT_EQ(b->height, a->height);
      break;
    }
    case ObjType::Sampler: {
      const auto* a = static_cast<const SamplerObj*>(orig);
      const auto* b = static_cast<const SamplerObj*>(copy);
      EXPECT_EQ(b->ctx, twin(map, a->ctx));
      EXPECT_EQ(b->normalized, a->normalized);
      EXPECT_EQ(b->addressing, a->addressing);
      EXPECT_EQ(b->filter, a->filter);
      break;
    }
    case ObjType::Program: {
      const auto* a = static_cast<const ProgramObj*>(orig);
      const auto* b = static_cast<const ProgramObj*>(copy);
      EXPECT_EQ(b->ctx, twin(map, a->ctx));
      EXPECT_EQ(b->source, a->source);
      EXPECT_EQ(b->build_options, a->build_options);
      EXPECT_EQ(b->built, a->built);
      EXPECT_EQ(b->from_binary, a->from_binary);
      EXPECT_EQ(b->binary, a->binary);
      break;
    }
    case ObjType::Kernel: {
      const auto* a = static_cast<const KernelObj*>(orig);
      const auto* b = static_cast<const KernelObj*>(copy);
      EXPECT_EQ(b->prog, twin(map, a->prog));
      EXPECT_EQ(b->name, a->name);
      ASSERT_EQ(b->args.size(), a->args.size());
      for (std::size_t i = 0; i < a->args.size(); ++i) {
        EXPECT_EQ(b->args[i].kind, a->args[i].kind);
        EXPECT_EQ(b->args[i].bytes, a->args[i].bytes);
        EXPECT_EQ(b->args[i].mem, twin(map, a->args[i].mem));
        EXPECT_EQ(b->args[i].sampler, twin(map, a->args[i].sampler));
        EXPECT_EQ(b->args[i].local_size, a->args[i].local_size);
      }
      break;
    }
    case ObjType::Event: {
      const auto* a = static_cast<const EventObj*>(orig);
      const auto* b = static_cast<const EventObj*>(copy);
      EXPECT_EQ(b->queue, twin(map, a->queue));
      EXPECT_EQ(b->command_type, a->command_type);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// codec
// ---------------------------------------------------------------------------

TEST(ReplayCodec, RoundTripRandomGraphsPreserveFieldsAndLinks) {
  for (std::uint32_t seed = 0; seed < 8; ++seed) {
    std::mt19937 rng(seed);
    Graph orig;
    build_random(orig.db, rng);

    const std::vector<std::uint8_t> bytes = checl::replay::encode_db(orig.db);
    Graph copy;
    checl::replay::DecodeResult dec =
        checl::replay::decode_db(bytes, copy.db);
    ASSERT_TRUE(dec.ok) << "seed " << seed << ": " << dec.error;
    ASSERT_EQ(dec.created.size(), orig.db.size());
    for (Object* o : orig.db.all()) expect_equal(dec.map, o, twin(dec.map, o));

    // and the decoded graph schedules: every dependency in a strictly
    // earlier wave
    checl::replay::RestorePlan plan;
    std::string err;
    ASSERT_TRUE(plan.build(dec.created, err)) << "seed " << seed << ": " << err;
    std::unordered_map<const Object*, std::uint32_t> wave_of;
    for (const checl::replay::PlanNode& n : plan.nodes())
      wave_of[n.obj] = n.wave;
    for (const checl::replay::PlanNode& n : plan.nodes())
      for (const Object* dep : n.deps)
        EXPECT_LT(wave_of.at(dep), n.wave)
            << checl::replay::object_label(n.obj) << " scheduled before its "
            << checl::replay::object_label(dep);
  }
}

TEST(ReplayCodec, DecodesV1StreamsThroughTheSameFieldLists) {
  // A v1 stream as the pre-replay serialize_db() wrote it: bare [u32 count]
  // per class in ObjType order, no tags, no section lengths.
  ipc::Writer w;
  w.u32(1);           // version
  w.u32(1);           // platforms
  w.u64(10);          //   id
  w.str("SimCL v1 platform");
  w.u32(0);
  w.u32(1);           // devices
  w.u64(11);
  w.u64(10);          //   platform link
  w.u64(CL_DEVICE_TYPE_GPU);
  w.u32(0);
  w.str("gpu0");
  w.u32(1);           // contexts
  w.u64(12);
  w.u32(1);           //   one device
  w.u64(11);
  w.u32(0);           //   no properties
  w.u32(1);           // queues
  w.u64(13);
  w.u64(12);
  w.u64(11);
  w.u64(0);
  w.u32(0);           // mems
  w.u32(0);           // samplers
  w.u32(1);           // programs
  w.u64(14);
  w.u64(12);
  w.str("__kernel void add1(__global float* d, int n) { d[0] = n; }");
  w.str("");
  w.boolean(true);    //   built
  w.boolean(false);
  w.bytes({});
  w.u32(1);           // kernels
  w.u64(15);
  w.u64(14);
  w.str("add1");
  w.u32(1);           //   one recorded arg
  w.u8(0);            //   Kind::Unset
  w.u32(0);           // events

  Graph g;
  checl::replay::DecodeResult dec =
      checl::replay::decode_db(w.take(), g.db);
  ASSERT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(dec.created.size(), 6u);
  auto* k = static_cast<KernelObj*>(dec.map.at(15));
  ASSERT_EQ(k->otype, ObjType::Kernel);
  EXPECT_EQ(k->prog, dec.map.at(14));
  // post-decode fixups ran: the program's source was re-parsed and the
  // kernel's signature resolved
  EXPECT_NE(k->sig, nullptr);
}

// ---------------------------------------------------------------------------
// golden corpus: pinned on-disk snapshots (tests/data/, see gen_golden.py)
// ---------------------------------------------------------------------------
//
// Round-trip tests can't catch a format change that breaks *existing*
// checkpoints — a codec that flips a field's width still round-trips with
// itself.  These bytes are committed; if they stop decoding, old checkpoint
// files stopped restoring, and the fix is a new container version.

std::vector<std::uint8_t> read_golden(const std::string& name) {
  const char* dir = std::getenv("CHECL_TEST_DATA");
  if (dir == nullptr || *dir == '\0') dir = CHECL_TEST_DATA_DIR;
  std::ifstream f(std::string(dir) + "/" + name, std::ios::binary);
  if (!f) return {};
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

// Asserts the decoded graph matches gen_golden.py field for field.
void expect_golden_graph(const checl::replay::DecodeResult& dec) {
  ASSERT_EQ(dec.created.size(), 11u);

  auto get = [&](std::uint64_t old_id) -> Object* {
    const auto it = dec.map.find(old_id);
    return it != dec.map.end() ? it->second : nullptr;
  };

  auto* plat = static_cast<PlatformObj*>(get(101));
  ASSERT_NE(plat, nullptr);
  ASSERT_EQ(plat->otype, ObjType::Platform);
  EXPECT_EQ(plat->name, "GoldenCL Platform");
  EXPECT_EQ(plat->index, 0u);

  auto* dev = static_cast<DeviceObj*>(get(102));
  ASSERT_NE(dev, nullptr);
  ASSERT_EQ(dev->otype, ObjType::Device);
  EXPECT_EQ(dev->platform, plat);
  EXPECT_EQ(dev->type, static_cast<cl_bitfield>(CL_DEVICE_TYPE_GPU));
  EXPECT_EQ(dev->index_in_type, 0u);
  EXPECT_EQ(dev->name, "GoldenCL GPU 0");

  auto* ctx = static_cast<ContextObj*>(get(103));
  ASSERT_NE(ctx, nullptr);
  ASSERT_EQ(ctx->otype, ObjType::Context);
  ASSERT_EQ(ctx->devices.size(), 1u);
  EXPECT_EQ(ctx->devices[0], dev);
  const std::vector<std::int64_t> props = {CL_CONTEXT_PLATFORM, 101, 0};
  EXPECT_EQ(ctx->properties, props);

  auto* q = static_cast<QueueObj*>(get(104));
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->otype, ObjType::Queue);
  EXPECT_EQ(q->ctx, ctx);
  EXPECT_EQ(q->dev, dev);
  EXPECT_EQ(q->properties,
            static_cast<cl_bitfield>(CL_QUEUE_PROFILING_ENABLE));

  auto* buf = static_cast<MemObj*>(get(105));
  ASSERT_NE(buf, nullptr);
  ASSERT_EQ(buf->otype, ObjType::Mem);
  EXPECT_EQ(buf->ctx, ctx);
  EXPECT_EQ(buf->flags, static_cast<cl_bitfield>(CL_MEM_READ_WRITE));
  EXPECT_EQ(buf->size, 4096u);
  EXPECT_FALSE(buf->is_image);
  EXPECT_EQ(buf->format.image_channel_order, 0u);
  EXPECT_EQ(buf->format.image_channel_data_type, 0u);
  EXPECT_EQ(buf->width, 0u);
  EXPECT_EQ(buf->height, 0u);
  EXPECT_EQ(buf->row_pitch, 0u);
  EXPECT_EQ(buf->use_host_ptr, nullptr);

  auto* img = static_cast<MemObj*>(get(106));
  ASSERT_NE(img, nullptr);
  ASSERT_EQ(img->otype, ObjType::Mem);
  EXPECT_EQ(img->ctx, ctx);
  EXPECT_EQ(img->flags, static_cast<cl_bitfield>(CL_MEM_READ_ONLY));
  EXPECT_EQ(img->size, 2048u);
  EXPECT_TRUE(img->is_image);
  EXPECT_EQ(img->format.image_channel_order, CL_RGBA);
  EXPECT_EQ(img->format.image_channel_data_type, CL_UNSIGNED_INT8);
  EXPECT_EQ(img->width, 16u);
  EXPECT_EQ(img->height, 8u);
  EXPECT_EQ(img->row_pitch, 64u);
  // The snapshot records "was created with a host pointer" (the flag is set
  // in the golden bytes), but decode demotes it: app memory is gone in a
  // fresh process, so the restored object must not claim to borrow it.
  EXPECT_EQ(img->use_host_ptr, nullptr);

  auto* smp = static_cast<SamplerObj*>(get(107));
  ASSERT_NE(smp, nullptr);
  ASSERT_EQ(smp->otype, ObjType::Sampler);
  EXPECT_EQ(smp->ctx, ctx);
  EXPECT_EQ(smp->normalized, 1u);
  EXPECT_EQ(smp->addressing, CL_ADDRESS_CLAMP);
  EXPECT_EQ(smp->filter, CL_FILTER_LINEAR);

  auto* prog = static_cast<ProgramObj*>(get(108));
  ASSERT_NE(prog, nullptr);
  ASSERT_EQ(prog->otype, ObjType::Program);
  EXPECT_EQ(prog->ctx, ctx);
  EXPECT_EQ(prog->source,
            "__kernel void golden(__global float* d, int n) { d[0] = n; }");
  EXPECT_EQ(prog->build_options, "-DGOLDEN=1");
  EXPECT_TRUE(prog->built);
  EXPECT_FALSE(prog->from_binary);
  EXPECT_TRUE(prog->binary.empty());

  auto* k = static_cast<KernelObj*>(get(109));
  ASSERT_NE(k, nullptr);
  ASSERT_EQ(k->otype, ObjType::Kernel);
  EXPECT_EQ(k->prog, prog);
  EXPECT_EQ(k->name, "golden");
  ASSERT_EQ(k->args.size(), 5u);
  EXPECT_EQ(k->args[0].kind, KernelObj::ArgRec::Kind::Bytes);
  const std::vector<std::uint8_t> arg0 = {1, 2, 3, 4};
  EXPECT_EQ(k->args[0].bytes, arg0);
  EXPECT_EQ(k->args[1].kind, KernelObj::ArgRec::Kind::Mem);
  EXPECT_EQ(k->args[1].mem, buf);
  EXPECT_EQ(k->args[2].kind, KernelObj::ArgRec::Kind::Sampler);
  EXPECT_EQ(k->args[2].sampler, smp);
  EXPECT_EQ(k->args[3].kind, KernelObj::ArgRec::Kind::Local);
  EXPECT_EQ(k->args[3].local_size, 64u);
  EXPECT_EQ(k->args[4].kind, KernelObj::ArgRec::Kind::Unset);
  // post_decode ran: source re-parsed, signature resolved
  EXPECT_NE(k->sig, nullptr);

  auto* ev = static_cast<EventObj*>(get(110));
  ASSERT_NE(ev, nullptr);
  ASSERT_EQ(ev->otype, ObjType::Event);
  EXPECT_EQ(ev->queue, q);
  EXPECT_EQ(ev->command_type,
            static_cast<cl_uint>(CL_COMMAND_NDRANGE_KERNEL));

  // Old id 999 never existed in the snapshot: the link must decode to
  // nullptr, not reject the stream.
  auto* dangling = static_cast<EventObj*>(get(111));
  ASSERT_NE(dangling, nullptr);
  ASSERT_EQ(dangling->otype, ObjType::Event);
  EXPECT_EQ(dangling->queue, nullptr);
  EXPECT_EQ(dangling->command_type, 4242u);
}

TEST(ReplayCodecGolden, DecodesPinnedV1Snapshot) {
  const std::vector<std::uint8_t> bytes = read_golden("golden_v1.db");
  ASSERT_FALSE(bytes.empty()) << "pinned corpus missing (tests/data)";
  Graph g;
  checl::replay::DecodeResult dec = checl::replay::decode_db(bytes, g.db);
  ASSERT_TRUE(dec.ok) << dec.error;
  expect_golden_graph(dec);
}

TEST(ReplayCodecGolden, DecodesPinnedV2Snapshot) {
  // The v2 file also carries a trailing section with unknown class tag 99,
  // which the decoder must skip by length.
  const std::vector<std::uint8_t> bytes = read_golden("golden_v2.db");
  ASSERT_FALSE(bytes.empty()) << "pinned corpus missing (tests/data)";
  Graph g;
  checl::replay::DecodeResult dec = checl::replay::decode_db(bytes, g.db);
  ASSERT_TRUE(dec.ok) << dec.error;
  expect_golden_graph(dec);
}

TEST(ReplayCodec, TruncatedStreamRejectedAndCleanedUp) {
  std::mt19937 rng(99);
  Graph orig;
  build_random(orig.db, rng);
  std::vector<std::uint8_t> bytes = checl::replay::encode_db(orig.db);
  bytes.resize(bytes.size() / 2);

  Graph g;
  checl::replay::DecodeResult dec = checl::replay::decode_db(bytes, g.db);
  EXPECT_FALSE(dec.ok);
  EXPECT_FALSE(dec.error.empty());
  EXPECT_EQ(g.db.size(), 0u);  // nothing leaked into the database
  EXPECT_TRUE(dec.map.empty());
}

TEST(ReplayCodec, UnknownVersionRejected) {
  ipc::Writer w;
  w.u32(99);
  Graph g;
  checl::replay::DecodeResult dec =
      checl::replay::decode_db(w.take(), g.db);
  EXPECT_FALSE(dec.ok);
  EXPECT_NE(dec.error.find("unknown version"), std::string::npos);
}

TEST(ReplayCodec, UnknownV2SectionSkippedByLength) {
  // version 2, two sections: a platform section and a future class this
  // build has never heard of — which must be skipped, not rejected.
  ipc::Writer body;
  body.u64(7);  // old id
  body.str("SimCL future-proof platform");
  body.u32(0);
  const std::vector<std::uint8_t> platform_body = body.take();

  ipc::Writer w;
  w.u32(2);  // version
  w.u32(2);  // sections
  w.u32(0);  // tag: Platform
  w.u32(1);
  w.u64(platform_body.size());
  w.raw(platform_body.data(), platform_body.size());
  w.u32(42);  // tag: some future class
  w.u32(3);
  const std::uint8_t junk[9] = {0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5};
  w.u64(sizeof junk);
  w.raw(junk, sizeof junk);

  Graph g;
  checl::replay::DecodeResult dec =
      checl::replay::decode_db(w.take(), g.db);
  ASSERT_TRUE(dec.ok) << dec.error;
  ASSERT_EQ(dec.created.size(), 1u);
  EXPECT_EQ(static_cast<PlatformObj*>(dec.map.at(7))->name,
            "SimCL future-proof platform");
}

// ---------------------------------------------------------------------------
// plan
// ---------------------------------------------------------------------------

TEST(ReplayPlan, MissingQueueLinkFailsWithObjectName) {
  // The pre-plan restore dereferenced q->ctx unchecked (a corrupt snapshot
  // segfaulted); now it is a validation error naming the queue.
  Graph g;
  auto* q = new QueueObj();  // ctx and dev both null
  g.db.add(q);
  checl::replay::RestorePlan plan;
  std::string err;
  EXPECT_FALSE(plan.build(g.db.all(), err));
  EXPECT_NE(err.find("cmd_que#"), std::string::npos) << err;
  EXPECT_NE(err.find("missing context"), std::string::npos) << err;
}

TEST(ReplayPlan, DanglingDependencyOutsideRestoreSetFails) {
  Graph g;
  auto* ctx = new ContextObj();
  g.db.add(ctx);
  auto* m = new MemObj();
  m->ctx = ctx;
  ctx->retain();
  g.db.add(m);
  // restore set contains the mem but not its context
  checl::replay::RestorePlan plan;
  std::string err;
  EXPECT_FALSE(plan.build({m}, err));
  EXPECT_NE(err.find("not part of the restore set"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// executor (live proxy)
// ---------------------------------------------------------------------------

class ReplayRestoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& rt = checl::CheclRuntime::instance();
    rt.reset_all();
    set_node();
    checl::bind_checl();
  }
  void TearDown() override {
    checl::CheclRuntime::instance().reset_all();
    checl::bind_native();
    std::remove(path());
  }
  static void set_node() {
    auto& rt = checl::CheclRuntime::instance();
    checl::NodeConfig node = checl::dual_node();
    node.transport = proxy::Transport::Process;
    rt.set_node(node);
  }
  static const char* path() { return "/tmp/checl_replay_test.ckpt"; }
  checl::cpr::Engine& engine() {
    return checl::CheclRuntime::instance().engine();
  }

  // A multi-program workload: kPrograms independently-compiled programs (the
  // Tr-dominant class of Figure 7) sharing one context and one data buffer.
  static constexpr int kPrograms = 6;
  struct Multi {
    cl_platform_id platform = nullptr;
    cl_device_id device = nullptr;
    cl_context ctx = nullptr;
    cl_command_queue queue = nullptr;
    cl_mem buf = nullptr;
    std::vector<cl_program> progs;
    std::vector<cl_kernel> kernels;
    int n = 1024;

    void create() {
      ASSERT_EQ(clGetPlatformIDs(1, &platform, nullptr), CL_SUCCESS);
      ASSERT_EQ(
          clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr),
          CL_SUCCESS);
      cl_int err = CL_SUCCESS;
      ctx = clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
      ASSERT_EQ(err, CL_SUCCESS);
      queue = clCreateCommandQueue(ctx, device, 0, &err);
      ASSERT_EQ(err, CL_SUCCESS);
      std::vector<float> init(static_cast<std::size_t>(n), 7.0f);
      buf = clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                           static_cast<std::size_t>(n) * 4, init.data(), &err);
      ASSERT_EQ(err, CL_SUCCESS);
      for (int i = 0; i < kPrograms; ++i) {
        const std::string name = "k" + std::to_string(i);
        const std::string src = "__kernel void " + name +
                                "(__global float* d, int n) {\n"
                                "  int i = get_global_id(0);\n"
                                "  if (i < n) d[i] = d[i] + " +
                                std::to_string(i + 1) + ".0f;\n}\n";
        const char* s = src.c_str();
        cl_program p = clCreateProgramWithSource(ctx, 1, &s, nullptr, &err);
        ASSERT_EQ(err, CL_SUCCESS);
        ASSERT_EQ(clBuildProgram(p, 1, &device, "", nullptr, nullptr),
                  CL_SUCCESS);
        cl_kernel k = clCreateKernel(p, name.c_str(), &err);
        ASSERT_EQ(err, CL_SUCCESS);
        ASSERT_EQ(clSetKernelArg(k, 0, sizeof buf, &buf), CL_SUCCESS);
        ASSERT_EQ(clSetKernelArg(k, 1, sizeof n, &n), CL_SUCCESS);
        progs.push_back(p);
        kernels.push_back(k);
      }
    }
    void release() {
      for (cl_kernel k : kernels) clReleaseKernel(k);
      for (cl_program p : progs) clReleaseProgram(p);
      if (buf != nullptr) clReleaseMemObject(buf);
      if (queue != nullptr) clReleaseCommandQueue(queue);
      if (ctx != nullptr) clReleaseContext(ctx);
      *this = Multi{};
    }
  };

  // Checkpoint the Multi workload, drop everything, and restore fresh with
  // the given knobs; returns the breakdown.
  checl::cpr::RestartBreakdown checkpoint_then_restore(bool parallel,
                                                       bool batch) {
    auto& rt = checl::CheclRuntime::instance();
    Multi m;
    m.create();
    EXPECT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS);
    m.release();
    rt.reset_all();
    set_node();
    rt.restore_parallel = parallel;
    rt.restore_workers = 4;
    rt.restore_batch = batch;

    std::unordered_map<std::uint64_t, Object*> map;
    checl::cpr::RestartBreakdown bd;
    EXPECT_EQ(engine().restore_fresh(path(), std::nullopt, &bd, &map),
              CL_SUCCESS)
        << engine().last_error();

    // data survived: the restored buffer still reads 7.0f
    cl_command_queue q = nullptr;
    cl_mem buf = nullptr;
    for (const auto& [old_id, obj] : map) {
      if (obj->otype == ObjType::Queue)
        q = reinterpret_cast<cl_command_queue>(obj);
      if (obj->otype == ObjType::Mem) buf = reinterpret_cast<cl_mem>(obj);
    }
    EXPECT_NE(q, nullptr);
    EXPECT_NE(buf, nullptr);
    if (q != nullptr && buf != nullptr) {
      float v = -1;
      EXPECT_EQ(
          clEnqueueReadBuffer(q, buf, CL_TRUE, 0, 4, &v, 0, nullptr, nullptr),
          CL_SUCCESS);
      EXPECT_FLOAT_EQ(v, 7.0f);
    }
    return bd;
  }
};

TEST_F(ReplayRestoreTest, ParallelRestoreRecreatesAndReportsConcurrency) {
  const checl::cpr::RestartBreakdown bd =
      checkpoint_then_restore(/*parallel=*/true, /*batch=*/true);
  EXPECT_GT(bd.recreation_ns(), 0u);
  const checl::replay::ExecCounters& c = engine().restore_counters();
  EXPECT_EQ(c.plans, 1u);
  EXPECT_GE(c.waves, 6u);  // platform, device, ctx, queue, mem, prog, kernel
  EXPECT_GE(c.parallel_waves, 1u);
  EXPECT_GE(c.max_concurrency, 2u);
  EXPECT_GT(c.batched_calls, 0u);  // kernel-arg replay rode the batch path
  EXPECT_EQ(c.rollbacks, 0u);
  EXPECT_GE(c.nodes_recreated, static_cast<std::uint64_t>(2 * kPrograms + 4));
}

TEST_F(ReplayRestoreTest, ParallelRestoreBeatsSerialOnRecreationTime) {
  const checl::cpr::RestartBreakdown serial =
      checkpoint_then_restore(/*parallel=*/false, /*batch=*/false);
  checl::CheclRuntime::instance().reset_all();
  set_node();
  const checl::cpr::RestartBreakdown parallel =
      checkpoint_then_restore(/*parallel=*/true, /*batch=*/true);
  // Program recompilation dominates recreation (Figure 7); compiling the six
  // programs on four modeled workers must beat compiling them one by one.
  EXPECT_LT(parallel.recreation_ns(), serial.recreation_ns());
  EXPECT_LT(parallel.class_ns[static_cast<std::size_t>(ObjType::Program)],
            serial.class_ns[static_cast<std::size_t>(ObjType::Program)]);
}

TEST_F(ReplayRestoreTest, InjectedKernelFailureRollsBackTransactionally) {
  auto& rt = checl::CheclRuntime::instance();

  // Synthesize a checkpoint whose kernel does not exist in its (compilable)
  // program — recreation fails mid-restore, at the kernel wave.
  {
    Graph g;
    auto* p = new PlatformObj();
    p->name = "whatever";  // index fallback will match
    g.db.add(p);
    auto* d = new DeviceObj();
    d->platform = p;
    p->retain();
    d->type = CL_DEVICE_TYPE_GPU;
    g.db.add(d);
    auto* c = new ContextObj();
    c->devices.push_back(d);
    d->retain();
    g.db.add(c);
    auto* prog = new ProgramObj();
    prog->ctx = c;
    c->retain();
    prog->source = "__kernel void ok(__global float* d, int n) { d[0] = n; }";
    prog->built = true;
    g.db.add(prog);
    auto* k = new KernelObj();
    k->prog = prog;
    prog->retain();
    k->name = "nope";  // not in the program
    g.db.add(k);

    slimcr::Snapshot snap;
    snap.set("checl.db", checl::replay::encode_db(g.db));
    const slimcr::IoResult io = snap.save(path(), rt.node().storage);
    ASSERT_TRUE(io.ok) << io.error;
  }

  rt.restore_workers = 4;
  std::unordered_map<std::uint64_t, Object*> map;
  const cl_int err = engine().restore_fresh(path(), std::nullopt, nullptr, &map);
  EXPECT_EQ(err, CL_INVALID_KERNEL_NAME);
  // the failing object is named, with the CL error spelled out
  EXPECT_NE(engine().last_error().find("kernel#"), std::string::npos)
      << engine().last_error();
  EXPECT_NE(engine().last_error().find("CL_INVALID_KERNEL_NAME"),
            std::string::npos)
      << engine().last_error();
  // transactional: no half-restored objects left behind
  EXPECT_EQ(rt.db().size(), 0u);
  EXPECT_TRUE(map.empty());
  const checl::replay::ExecCounters& c = engine().restore_counters();
  EXPECT_GE(c.rollbacks, 1u);
  EXPECT_GE(c.rolled_back_handles, 2u);  // at least the context + program

  // and the runtime is still fully usable afterwards
  cl_platform_id plat = nullptr;
  ASSERT_EQ(clGetPlatformIDs(1, &plat, nullptr), CL_SUCCESS);
  ASSERT_NE(plat, nullptr);
}

TEST_F(ReplayRestoreTest, RecoveryChainOnlyTravelsWithFailedOps) {
  // The supervisor drives this same restore machinery when the proxy dies
  // mid-operation.  A checkpoint across a proxy crash must (a) succeed
  // transparently, (b) leave Engine::last_error() EMPTY — the chain decorates
  // failures only — and (c) narrate the full recovery in last_chain().
  auto& rt = checl::CheclRuntime::instance();
  rt.reset_all();
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;  // in-process: one chaos engine
  rt.set_node(node);
  rt.restore_parallel = false;
  rt.supervise = true;
  checl::bind_checl();

  Multi m;
  m.create();

  auto& chaos = chaoskit::Engine::instance();
  chaoskit::Fault f;
  f.site = chaoskit::Site::ProxyDieBeforeReply;
  f.actor = chaoskit::Actor::Proxy;
  f.nth = 0;  // the checkpoint's first RPC
  chaos.arm(f);
  EXPECT_EQ(engine().checkpoint(path(), nullptr), CL_SUCCESS)
      << engine().last_error();
  EXPECT_TRUE(chaos.fired());
  chaos.disarm();

  EXPECT_TRUE(engine().last_error().empty()) << engine().last_error();
  const checl::Supervisor& sup = rt.supervisor();
  EXPECT_GE(sup.stats().recoveries, 1u);
  const std::string& chain = sup.last_chain();
  EXPECT_NE(chain.find("on opcode "), std::string::npos) << chain;
  EXPECT_NE(chain.find("respawn epoch "), std::string::npos) << chain;
  EXPECT_NE(chain.find("replayed"), std::string::npos) << chain;
  // The whole graph came back: platform, device, ctx, queue, buffer, and
  // the six program+kernel pairs.
  EXPECT_GE(sup.stats().replayed_objects,
            static_cast<std::uint64_t>(2 * kPrograms + 5));
  m.release();
}

TEST_F(ReplayRestoreTest, StatsJsonReportsRestoreCounters) {
  checkpoint_then_restore(/*parallel=*/true, /*batch=*/false);
  const std::string js = checl::stats_json();
  EXPECT_NE(js.find("\"restore\": {"), std::string::npos) << js;
  EXPECT_NE(js.find("\"plans\": 1"), std::string::npos) << js;
  EXPECT_NE(js.find("\"max_concurrency\""), std::string::npos) << js;
}

}  // namespace
