// ipc_test.cpp — serialization round-trips, channel framing, the shm
// bulk-data plane, and TCP transport for the proxy RPC layer.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "ipc/channel.h"
#include "ipc/serial.h"
#include "ipc/shm.h"
#include "proxy/config_io.h"

namespace {

TEST(Serial, ScalarRoundTrip) {
  ipc::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x1122334455667788ull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.14159);
  w.boolean(true);
  w.handle(reinterpret_cast<void*>(0xCAFE));
  const auto bytes = w.take();

  ipc::Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x1122334455667788ull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.u64(), 0xCAFEull);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serial, StringsAndBytes) {
  ipc::Writer w;
  w.str("hello proxy");
  w.str("");
  const std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
  w.bytes(blob);
  const auto bytes = w.take();

  ipc::Reader r(bytes);
  EXPECT_EQ(r.str(), "hello proxy");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.ok());
}

TEST(Serial, OverrunSetsNotOkAndZeroFills) {
  ipc::Writer w;
  w.u32(7);
  const auto bytes = w.take();
  ipc::Reader r(bytes);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 0u);  // overruns: zero result
  EXPECT_FALSE(r.ok());
}

TEST(Serial, CorruptLengthPrefixDetected) {
  ipc::Writer w;
  w.u64(1u << 30);  // huge claimed length, no data
  const auto bytes = w.take();
  ipc::Reader r(bytes);
  const auto s = r.str();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(r.ok());
}

TEST(LocalChannel, BidirectionalMessages) {
  auto [a, b] = ipc::make_local_pair();
  ipc::Message m;
  m.op = 5;
  m.payload = {9, 8, 7};
  ASSERT_TRUE(a->send(m));
  ipc::Message got;
  ASSERT_TRUE(b->recv(got));
  EXPECT_EQ(got.op, 5u);
  EXPECT_EQ(got.payload, m.payload);
  // reply direction
  got.op = 6;
  ASSERT_TRUE(b->send(got));
  ASSERT_TRUE(a->recv(m));
  EXPECT_EQ(m.op, 6u);
}

TEST(LocalChannel, CloseUnblocksReceiver) {
  auto [a, b] = ipc::make_local_pair();
  std::thread t([&] {
    ipc::Message m;
    EXPECT_FALSE(b->recv(m));  // closed with empty queue
  });
  a.reset();  // closing one end closes the tx queue
  t.join();
}

TEST(SocketChannel, FramedRoundTrip) {
  auto [fd_a, fd_b] = ipc::make_socketpair();
  ASSERT_GE(fd_a, 0);
  ipc::SocketChannel a(fd_a);
  ipc::SocketChannel b(fd_b);
  ipc::Message m;
  m.op = 77;
  m.payload.assign(100000, 0x5C);  // larger than one read()
  ASSERT_TRUE(a.send(m));
  ipc::Message got;
  ASSERT_TRUE(b.recv(got));
  EXPECT_EQ(got.op, 77u);
  EXPECT_EQ(got.payload.size(), 100000u);
  EXPECT_EQ(got.payload[99999], 0x5C);
}

TEST(SocketChannel, BrokenPeerReturnsFalseNoSignal) {
  auto [fd_a, fd_b] = ipc::make_socketpair();
  auto a = std::make_unique<ipc::SocketChannel>(fd_a);
  {
    ipc::SocketChannel b(fd_b);  // destroyed: peer closes
  }
  ipc::Message m;
  m.op = 1;
  m.payload.assign(1 << 20, 0);  // large enough to overflow socket buffers
  EXPECT_FALSE(a->send(m) && a->recv(m));
}

TEST(TcpChannel, LoopbackRoundTrip) {
  const int lfd = ipc::tcp_listen(0);  // kernel picks... port 0 unsupported;
  if (lfd < 0) GTEST_SKIP() << "cannot listen on loopback";
  ::close(lfd);
  const std::uint16_t port = 39321;
  const int listen_fd = ipc::tcp_listen(port);
  if (listen_fd < 0) GTEST_SKIP() << "port busy";
  std::thread server([&] {
    const int cfd = ipc::tcp_accept(listen_fd);
    ASSERT_GE(cfd, 0);
    ipc::SocketChannel ch(cfd);
    ipc::Message m;
    ASSERT_TRUE(ch.recv(m));
    m.op += 1;
    ASSERT_TRUE(ch.send(m));
  });
  const int cfd = ipc::tcp_connect("127.0.0.1", port);
  ASSERT_GE(cfd, 0);
  ipc::SocketChannel ch(cfd);
  ipc::Message m;
  m.op = 41;
  m.payload = {1, 2};
  ASSERT_TRUE(ch.send(m));
  ASSERT_TRUE(ch.recv(m));
  EXPECT_EQ(m.op, 42u);
  server.join();
  ::close(listen_fd);
}

// 64 MiB vastly exceeds kernel socket buffers: the sender blocks until the
// receiver drains, so the payload crosses in many partial writes/reads.
// Exercised under both framings (writev scatter-gather and seed).
void huge_socket_round_trip(bool use_writev) {
  auto [fd_a, fd_b] = ipc::make_socketpair();
  ASSERT_GE(fd_a, 0);
  ipc::SocketChannel a(fd_a);
  ipc::SocketChannel b(fd_b);
  a.set_use_writev(use_writev);
  b.set_use_writev(use_writev);
  constexpr std::size_t kBig = 64u << 20;
  ipc::Message m;
  m.op = 9;
  m.payload.resize(kBig);
  for (std::size_t i = 0; i < kBig; i += 4096)
    m.payload[i] = static_cast<std::uint8_t>(i >> 12);
  m.payload.back() = 0xEE;
  std::thread sender([&] { EXPECT_TRUE(a.send(m)); });
  ipc::Message got;
  ASSERT_TRUE(b.recv(got));
  sender.join();
  ASSERT_EQ(got.bytes().size(), kBig);
  EXPECT_EQ(got.bytes()[8 << 12], static_cast<std::uint8_t>(8));
  EXPECT_EQ(got.bytes().back(), 0xEE);
  EXPECT_EQ(std::memcmp(got.bytes().data(), m.payload.data(), kBig), 0);
}

TEST(SocketChannel, HugePayloadRoundTripWritev) { huge_socket_round_trip(true); }
TEST(SocketChannel, HugePayloadRoundTripSeedFraming) {
  huge_socket_round_trip(false);
}

TEST(SocketChannel, ScatterSend2IsWireIdenticalToConcat) {
  auto [fd_a, fd_b] = ipc::make_socketpair();
  ASSERT_GE(fd_a, 0);
  ipc::SocketChannel a(fd_a);
  ipc::SocketChannel b(fd_b);
  ipc::Message m;
  m.op = 12;
  m.payload = {1, 2, 3};
  const std::vector<std::uint8_t> bulk{4, 5, 6, 7};
  ASSERT_TRUE(a.send2(m, bulk));
  ipc::Message got;
  ASSERT_TRUE(b.recv(got));
  EXPECT_EQ(got.op, 12u);
  const std::vector<std::uint8_t> want{1, 2, 3, 4, 5, 6, 7};
  ASSERT_EQ(got.bytes().size(), want.size());
  EXPECT_EQ(std::memcmp(got.bytes().data(), want.data(), want.size()), 0);
}

TEST(SocketChannel, CorruptLengthHeaderFailsChannel) {
  auto [fd_a, fd_b] = ipc::make_socketpair();
  ASSERT_GE(fd_a, 0);
  ipc::SocketChannel b(fd_b);
  // hand-craft a frame header claiming a payload over the sanity cap; the
  // receiver must fail the channel instead of attempting the allocation
  std::uint32_t hdr[2] = {1u, ipc::SocketChannel::kMaxPayload + 1u};
  ASSERT_EQ(::write(fd_a, hdr, sizeof hdr), static_cast<ssize_t>(sizeof hdr));
  ipc::Message m;
  EXPECT_FALSE(b.recv(m));
  EXPECT_TRUE(b.failed());
  // a failed channel stays failed
  m.op = 1;
  m.payload = {1};
  EXPECT_FALSE(b.send(m));
  ::close(fd_a);
}

TEST(SocketChannel, FdsAreCloseOnExec) {
  auto [fd_a, fd_b] = ipc::make_socketpair();
  ASSERT_GE(fd_a, 0);
  EXPECT_TRUE(::fcntl(fd_a, F_GETFD) & FD_CLOEXEC);
  EXPECT_TRUE(::fcntl(fd_b, F_GETFD) & FD_CLOEXEC);
  ::close(fd_a);
  ::close(fd_b);
  const int lfd = ipc::tcp_listen(39327);
  if (lfd < 0) GTEST_SKIP() << "port busy";
  EXPECT_TRUE(::fcntl(lfd, F_GETFD) & FD_CLOEXEC);
  const int cfd = ipc::tcp_connect("127.0.0.1", 39327);
  ASSERT_GE(cfd, 0);
  EXPECT_TRUE(::fcntl(cfd, F_GETFD) & FD_CLOEXEC);
  const int afd = ipc::tcp_accept(lfd);
  ASSERT_GE(afd, 0);
  EXPECT_TRUE(::fcntl(afd, F_GETFD) & FD_CLOEXEC);
  ::close(afd);
  ::close(cfd);
  ::close(lfd);
}

// Builds a connected ShmChannel pair sharing one segment (both ends mapped
// in-process; direction is what distinguishes them).
struct ShmPair {
  std::unique_ptr<ipc::ShmChannel> creator;
  std::unique_ptr<ipc::ShmChannel> peer;
};

ShmPair make_shm_pair(std::size_t ring_bytes, std::size_t threshold) {
  auto [fd_a, fd_b] = ipc::make_socketpair();
  EXPECT_GE(fd_a, 0);
  auto seg = ipc::ShmSegment::create(ring_bytes);
  EXPECT_NE(seg, nullptr);
  ShmPair p;
  p.creator = std::make_unique<ipc::ShmChannel>(
      std::make_unique<ipc::SocketChannel>(fd_a), seg, true, threshold);
  p.peer = std::make_unique<ipc::ShmChannel>(
      std::make_unique<ipc::SocketChannel>(fd_b), seg, false, threshold);
  return p;
}

TEST(ShmChannel, HugePayloadRoundTrip) {
  constexpr std::size_t kBig = 64u << 20;
  ShmPair p = make_shm_pair(kBig + (1u << 20), 4096);
  ipc::Message m;
  m.op = 21;
  m.payload.resize(kBig);
  for (std::size_t i = 0; i < kBig; i += 4096)
    m.payload[i] = static_cast<std::uint8_t>(i * 31 >> 12);
  m.payload.back() = 0x7D;
  ASSERT_TRUE(p.creator->send(m));
  ipc::Message got;
  ASSERT_TRUE(p.peer->recv(got));
  EXPECT_EQ(got.op, 21u);  // kShmOpFlag stripped
  EXPECT_TRUE(got.borrowed);  // zero-copy: a view into the ring
  ASSERT_EQ(got.bytes().size(), kBig);
  EXPECT_EQ(got.bytes().back(), 0x7D);
  EXPECT_EQ(std::memcmp(got.bytes().data(), m.payload.data(), kBig), 0);
  EXPECT_EQ(p.creator->stats().shm_msgs_sent, 1u);
  EXPECT_EQ(p.peer->stats().shm_msgs_recvd, 1u);
  EXPECT_EQ(p.creator->stats().shm_fallbacks, 0u);
  // reply direction rides the other ring
  ipc::Message reply;
  reply.op = 22;
  reply.payload.assign(1u << 20, 0x3C);
  ASSERT_TRUE(p.peer->send(reply));
  ASSERT_TRUE(p.creator->recv(got));
  ASSERT_EQ(got.bytes().size(), 1u << 20);
  EXPECT_EQ(got.bytes()[12345], 0x3C);
}

TEST(ShmChannel, SmallPayloadStaysOnSocket) {
  ShmPair p = make_shm_pair(1u << 16, 4096);
  ipc::Message m;
  m.op = 3;
  m.payload.assign(100, 0xAA);  // below threshold
  ASSERT_TRUE(p.creator->send(m));
  ipc::Message got;
  ASSERT_TRUE(p.peer->recv(got));
  EXPECT_FALSE(got.borrowed);
  EXPECT_EQ(got.bytes().size(), 100u);
  EXPECT_EQ(p.creator->stats().shm_msgs_sent, 0u);
}

TEST(ShmChannel, ExhaustionFallsBackToSocket) {
  // payload larger than the whole ring: must fall back to inline framing
  ShmPair p = make_shm_pair(1u << 16, 4096);
  ipc::Message m;
  m.op = 7;
  m.payload.assign(1u << 18, 0x42);  // 256 KiB through a 64 KiB ring
  std::thread sender([&] { EXPECT_TRUE(p.creator->send(m)); });
  ipc::Message got;
  ASSERT_TRUE(p.peer->recv(got));
  sender.join();
  EXPECT_FALSE(got.borrowed);  // travelled inline
  ASSERT_EQ(got.bytes().size(), 1u << 18);
  EXPECT_EQ(got.bytes()[1000], 0x42);
  EXPECT_EQ(p.creator->stats().shm_fallbacks, 1u);
  EXPECT_EQ(p.creator->stats().shm_msgs_sent, 0u);
}

TEST(ShmChannel, HeldViewBlocksRingUntilReleased) {
  // ring fits exactly one 40 KiB block; while the receiver still holds the
  // first view, a second bulk send must fall back, and an explicit
  // release_rx() makes the ring usable again
  constexpr std::size_t kBlock = 40 * 1024;
  ShmPair p = make_shm_pair(1u << 16, 4096);
  ipc::Message m;
  m.op = 1;
  m.payload.assign(kBlock, 0x11);
  ASSERT_TRUE(p.creator->send(m));
  ipc::Message got;
  ASSERT_TRUE(p.peer->recv(got));
  EXPECT_TRUE(got.borrowed);

  m.payload.assign(kBlock, 0x22);  // does not fit while the view is held
  ASSERT_TRUE(p.creator->send(m));
  EXPECT_EQ(p.creator->stats().shm_fallbacks, 1u);

  ipc::Message got2;
  ASSERT_TRUE(p.peer->recv(got2));  // implicit release of the first view
  EXPECT_FALSE(got2.borrowed);
  p.peer->release_rx();  // idempotent: nothing held after an inline recv

  m.payload.assign(kBlock, 0x33);  // ring free again
  ASSERT_TRUE(p.creator->send(m));
  EXPECT_EQ(p.creator->stats().shm_fallbacks, 1u);
  EXPECT_EQ(p.creator->stats().shm_msgs_sent, 2u);
  ipc::Message got3;
  ASSERT_TRUE(p.peer->recv(got3));
  EXPECT_TRUE(got3.borrowed);
  EXPECT_EQ(got3.bytes()[kBlock - 1], 0x33);
}

TEST(ShmChannel, ReserveTxMaterializesInPlace) {
  ShmPair p = make_shm_pair(1u << 16, 4096);
  // below threshold: in-place reservation refuses, caller would fall back
  EXPECT_EQ(p.creator->reserve_tx(100), nullptr);
  constexpr std::size_t kN = 32 * 1024;
  std::uint8_t* blk = p.creator->reserve_tx(kN);
  ASSERT_NE(blk, nullptr);
  for (std::size_t i = 0; i < kN; ++i)
    blk[i] = static_cast<std::uint8_t>(i * 7);
  ASSERT_TRUE(p.creator->send_reserved(33, kN));
  ipc::Message got;
  ASSERT_TRUE(p.peer->recv(got));
  EXPECT_EQ(got.op, 33u);
  EXPECT_TRUE(got.borrowed);
  ASSERT_EQ(got.bytes().size(), kN);
  for (std::size_t i = 0; i < kN; i += 997)
    ASSERT_EQ(got.bytes()[i], static_cast<std::uint8_t>(i * 7));
}

TEST(ShmChannel, ScatterSend2ThroughRing) {
  ShmPair p = make_shm_pair(1u << 16, 4096);
  ipc::Message m;
  m.op = 5;
  m.payload.assign(5000, 0x01);  // header part
  const std::vector<std::uint8_t> bulk(9000, 0x02);
  ASSERT_TRUE(p.creator->send2(m, bulk));
  ipc::Message got;
  ASSERT_TRUE(p.peer->recv(got));
  EXPECT_TRUE(got.borrowed);
  ASSERT_EQ(got.bytes().size(), 14000u);
  EXPECT_EQ(got.bytes()[4999], 0x01);
  EXPECT_EQ(got.bytes()[5000], 0x02);
  EXPECT_EQ(got.bytes()[13999], 0x02);
}

TEST(ShmSegment, BogusDescriptorRejected) {
  auto seg = ipc::ShmSegment::create(1u << 16);
  ASSERT_NE(seg, nullptr);
  // nothing produced: positions ahead of the tail or larger than the ring
  // must be rejected, not spun on
  EXPECT_EQ(seg->consume_view(0, 0, (1u << 16) + 1), nullptr);  // > ring
  EXPECT_EQ(seg->consume_view(0, (1u << 20), 64), nullptr);     // way ahead
  EXPECT_EQ(seg->consume_view(0, 0, 0), nullptr);               // empty
}

TEST(ConfigIo, PlatformSpecRoundTrip) {
  const auto platforms = simcl::default_platforms();
  proxy::IpcCosts costs;
  costs.per_call_ns = 123;
  costs.bytes_per_sec = 4.5e9;
  costs.spawn_ns = 777;
  simcl::ProgCacheConfig cache;
  cache.root = "/tmp/clc-cache";
  cache.max_modules = 7;
  ipc::Writer w;
  proxy::write_config(w, platforms, costs, true, cache);
  const auto bytes = w.take();

  ipc::Reader r(bytes);
  std::vector<simcl::PlatformSpec> got;
  proxy::IpcCosts got_costs;
  bool reset = false;
  simcl::ProgCacheConfig got_cache;
  proxy::read_config(r, got, got_costs, reset, got_cache);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(reset);
  EXPECT_TRUE(got_cache.enabled);
  EXPECT_EQ(got_cache.root, "/tmp/clc-cache");
  EXPECT_EQ(got_cache.max_modules, 7u);
  EXPECT_EQ(got_costs.per_call_ns, 123u);
  EXPECT_EQ(got_costs.spawn_ns, 777u);
  ASSERT_EQ(got.size(), platforms.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].name, platforms[i].name);
    EXPECT_EQ(got[i].init_ns, platforms[i].init_ns);
    ASSERT_EQ(got[i].devices.size(), platforms[i].devices.size());
    for (std::size_t d = 0; d < got[i].devices.size(); ++d) {
      EXPECT_EQ(got[i].devices[d].name, platforms[i].devices[d].name);
      EXPECT_DOUBLE_EQ(got[i].devices[d].ops_per_sec,
                       platforms[i].devices[d].ops_per_sec);
      EXPECT_EQ(got[i].devices[d].max_work_group_size,
                platforms[i].devices[d].max_work_group_size);
    }
  }
}

}  // namespace
