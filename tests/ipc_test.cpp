// ipc_test.cpp — serialization round-trips, channel framing, and TCP
// transport for the proxy RPC layer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <thread>

#include "ipc/channel.h"
#include "ipc/serial.h"
#include "proxy/config_io.h"

namespace {

TEST(Serial, ScalarRoundTrip) {
  ipc::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x1122334455667788ull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.14159);
  w.boolean(true);
  w.handle(reinterpret_cast<void*>(0xCAFE));
  const auto bytes = w.take();

  ipc::Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x1122334455667788ull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.u64(), 0xCAFEull);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serial, StringsAndBytes) {
  ipc::Writer w;
  w.str("hello proxy");
  w.str("");
  const std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
  w.bytes(blob);
  const auto bytes = w.take();

  ipc::Reader r(bytes);
  EXPECT_EQ(r.str(), "hello proxy");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.ok());
}

TEST(Serial, OverrunSetsNotOkAndZeroFills) {
  ipc::Writer w;
  w.u32(7);
  const auto bytes = w.take();
  ipc::Reader r(bytes);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 0u);  // overruns: zero result
  EXPECT_FALSE(r.ok());
}

TEST(Serial, CorruptLengthPrefixDetected) {
  ipc::Writer w;
  w.u64(1u << 30);  // huge claimed length, no data
  const auto bytes = w.take();
  ipc::Reader r(bytes);
  const auto s = r.str();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(r.ok());
}

TEST(LocalChannel, BidirectionalMessages) {
  auto [a, b] = ipc::make_local_pair();
  ipc::Message m;
  m.op = 5;
  m.payload = {9, 8, 7};
  ASSERT_TRUE(a->send(m));
  ipc::Message got;
  ASSERT_TRUE(b->recv(got));
  EXPECT_EQ(got.op, 5u);
  EXPECT_EQ(got.payload, m.payload);
  // reply direction
  got.op = 6;
  ASSERT_TRUE(b->send(got));
  ASSERT_TRUE(a->recv(m));
  EXPECT_EQ(m.op, 6u);
}

TEST(LocalChannel, CloseUnblocksReceiver) {
  auto [a, b] = ipc::make_local_pair();
  std::thread t([&] {
    ipc::Message m;
    EXPECT_FALSE(b->recv(m));  // closed with empty queue
  });
  a.reset();  // closing one end closes the tx queue
  t.join();
}

TEST(SocketChannel, FramedRoundTrip) {
  auto [fd_a, fd_b] = ipc::make_socketpair();
  ASSERT_GE(fd_a, 0);
  ipc::SocketChannel a(fd_a);
  ipc::SocketChannel b(fd_b);
  ipc::Message m;
  m.op = 77;
  m.payload.assign(100000, 0x5C);  // larger than one read()
  ASSERT_TRUE(a.send(m));
  ipc::Message got;
  ASSERT_TRUE(b.recv(got));
  EXPECT_EQ(got.op, 77u);
  EXPECT_EQ(got.payload.size(), 100000u);
  EXPECT_EQ(got.payload[99999], 0x5C);
}

TEST(SocketChannel, BrokenPeerReturnsFalseNoSignal) {
  auto [fd_a, fd_b] = ipc::make_socketpair();
  auto a = std::make_unique<ipc::SocketChannel>(fd_a);
  {
    ipc::SocketChannel b(fd_b);  // destroyed: peer closes
  }
  ipc::Message m;
  m.op = 1;
  m.payload.assign(1 << 20, 0);  // large enough to overflow socket buffers
  EXPECT_FALSE(a->send(m) && a->recv(m));
}

TEST(TcpChannel, LoopbackRoundTrip) {
  const int lfd = ipc::tcp_listen(0);  // kernel picks... port 0 unsupported;
  if (lfd < 0) GTEST_SKIP() << "cannot listen on loopback";
  ::close(lfd);
  const std::uint16_t port = 39321;
  const int listen_fd = ipc::tcp_listen(port);
  if (listen_fd < 0) GTEST_SKIP() << "port busy";
  std::thread server([&] {
    const int cfd = ipc::tcp_accept(listen_fd);
    ASSERT_GE(cfd, 0);
    ipc::SocketChannel ch(cfd);
    ipc::Message m;
    ASSERT_TRUE(ch.recv(m));
    m.op += 1;
    ASSERT_TRUE(ch.send(m));
  });
  const int cfd = ipc::tcp_connect("127.0.0.1", port);
  ASSERT_GE(cfd, 0);
  ipc::SocketChannel ch(cfd);
  ipc::Message m;
  m.op = 41;
  m.payload = {1, 2};
  ASSERT_TRUE(ch.send(m));
  ASSERT_TRUE(ch.recv(m));
  EXPECT_EQ(m.op, 42u);
  server.join();
  ::close(listen_fd);
}

TEST(ConfigIo, PlatformSpecRoundTrip) {
  const auto platforms = simcl::default_platforms();
  proxy::IpcCosts costs;
  costs.per_call_ns = 123;
  costs.bytes_per_sec = 4.5e9;
  costs.spawn_ns = 777;
  ipc::Writer w;
  proxy::write_config(w, platforms, costs, true);
  const auto bytes = w.take();

  ipc::Reader r(bytes);
  std::vector<simcl::PlatformSpec> got;
  proxy::IpcCosts got_costs;
  bool reset = false;
  proxy::read_config(r, got, got_costs, reset);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(reset);
  EXPECT_EQ(got_costs.per_call_ns, 123u);
  EXPECT_EQ(got_costs.spawn_ns, 777u);
  ASSERT_EQ(got.size(), platforms.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].name, platforms[i].name);
    EXPECT_EQ(got[i].init_ns, platforms[i].init_ns);
    ASSERT_EQ(got[i].devices.size(), platforms[i].devices.size());
    for (std::size_t d = 0; d < got[i].devices.size(); ++d) {
      EXPECT_EQ(got[i].devices[d].name, platforms[i].devices[d].name);
      EXPECT_DOUBLE_EQ(got[i].devices[d].ops_per_sec,
                       platforms[i].devices[d].ops_per_sec);
      EXPECT_EQ(got[i].devices[d].max_work_group_size,
                platforms[i].devices[d].max_work_group_size);
    }
  }
}

}  // namespace
