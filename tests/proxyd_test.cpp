// proxyd_test.cpp — the multi-tenant proxy daemon, tested at its seams.
//
// Covers the three properties the shared daemon must add over plain dispatch
// (see proxyd/daemon.h):
//   * private namespaces: a client naming another client's handle gets the
//     typed CL_CHECL_FOREIGN_HANDLE error, never the other client's data; a
//     dying client's whole namespace is reclaimed (zero leaked handles, no
//     zombie /dev/shm segments), and the survivors' state is byte-identical;
//   * admission control: max-clients at attach, per-client memory and
//     in-flight caps at dispatch, each with its own typed reject;
//   * shared-substrate semantics: a second client's Configure (reset=true,
//     the spawn-mode handshake) must not rewind the clock other clients are
//     running on, and the supervisor can recover an attached client by
//     re-attaching to the surviving daemon.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chaos_harness.h"
#include "chaoskit/chaoskit.h"
#include "checl/cl_ext.h"
#include "core/runtime.h"
#include "core/stats.h"
#include "core/supervisor.h"
#include "ipc/channel.h"
#include "proxy/client.h"
#include "proxy/opcodes.h"
#include "proxy/spawn.h"
#include "proxyd/daemon.h"

namespace {

namespace fs = std::filesystem;
using proxy::Op;

std::string test_socket_path() {
  return "/tmp/checl_proxyd_test_" + std::to_string(::getpid()) + ".sock";
}

// An in-process daemon on its own thread: one chaos engine, one stats view,
// and the substrate it serves is this process's simcl singletons.
struct DaemonHost {
  std::string path = test_socket_path();
  std::unique_ptr<proxyd::Daemon> d;
  std::thread th;

  bool start(proxyd::Options o = {}) {
    d = std::make_unique<proxyd::Daemon>(path, o);
    if (!d->ok()) return false;
    th = std::thread([this] { d->run(); });
    return true;
  }
  void stop() {
    if (d != nullptr) d->stop();
    if (th.joinable()) th.join();
    d.reset();
  }
  ~DaemonHost() { stop(); }

  // Daemon-side bookkeeping is asynchronous to the clients; poll for it.
  template <typename Pred>
  bool wait_for(Pred p, int ms = 2000) {
    for (int i = 0; i < ms / 2; ++i) {
      if (p(d->stats())) return true;
      ::usleep(2000);
    }
    return p(d->stats());
  }
};

proxy::SpawnOptions daemon_opts(const std::string& path) {
  proxy::SpawnOptions o;
  o.daemon_socket = path;
  o.shm_ring_bytes = 1u << 20;  // small rings: tests are not throughput-bound
  return o;
}

cl_int configure(proxy::Client& c) {
  return c.configure(simcl::default_platforms(), proxy::IpcCosts{}, true,
                     simcl::ProgCacheConfig{});
}

// A raw attached client whose connection we control (abrupt close, forged
// frames) — spawn_connection + a bare Client, no Spawned politeness.
struct RawClient {
  std::unique_ptr<proxy::Client> c;
  cl_int attach_error = 0;

  bool attach(const proxy::SpawnOptions& o) {
    proxy::RawConnection rc = proxy::spawn_connection(proxy::Transport::Daemon, o);
    attach_error = rc.attach_error;
    if (rc.ch == nullptr) return false;
    c = std::make_unique<proxy::Client>(std::move(rc.ch));
    return true;
  }
  void die() { c.reset(); }  // closes the fd with no Shutdown: abrupt death
};

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>(seed + i * 7);
  return v;
}

// ctx + queue + one pattern-filled buffer, the standard per-client fixture.
struct Tenant {
  proxy::RemoteHandle ctx = 0, queue = 0, mem = 0;
  std::vector<std::uint8_t> data;

  bool up(proxy::Client& c, std::size_t bytes, std::uint8_t seed) {
    if (configure(c) != CL_SUCCESS) return false;
    std::vector<proxy::RemoteHandle> plats, devs;
    cl_uint n = 0;
    if (c.get_platform_ids(8, plats, n) != CL_SUCCESS || plats.empty())
      return false;
    if (c.get_device_ids(plats[0], CL_DEVICE_TYPE_ALL, 8, devs, n) !=
            CL_SUCCESS ||
        devs.empty())
      return false;
    if (c.create_context({}, {devs.data(), 1}, ctx) != CL_SUCCESS) return false;
    if (c.create_queue(ctx, devs[0], 0, queue) != CL_SUCCESS) return false;
    data = pattern(bytes, seed);
    return c.create_buffer(ctx, CL_MEM_COPY_HOST_PTR, bytes, data, mem) ==
           CL_SUCCESS;
  }

  bool intact(proxy::Client& c) {
    std::vector<std::uint8_t> got(data.size());
    proxy::RemoteHandle ev = 0;
    if (c.enqueue_read(queue, mem, 0, got.size(), got.data(), false, ev) !=
        CL_SUCCESS)
      return false;
    return got == data;
  }
};

std::size_t checl_shm_segments() {
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator("/dev/shm", ec))
    if (e.path().filename().string().rfind("checl-", 0) == 0) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// attach + basic round trip
// ---------------------------------------------------------------------------

TEST(ProxydAttach, RoundTripOverSharedDaemon) {
  DaemonHost h;
  ASSERT_TRUE(h.start()) << h.d->error();
  proxy::Spawned s =
      proxy::spawn_proxy(proxy::Transport::Daemon, daemon_opts(h.path));
  ASSERT_TRUE(s.ok()) << s.error();
  Tenant t;
  ASSERT_TRUE(t.up(*s.client(), 64 * 1024, 3));  // > threshold: rides the rings
  EXPECT_TRUE(t.intact(*s.client()));
  std::uint32_t pid = 0;
  EXPECT_EQ(s.client()->ping(&pid), CL_SUCCESS);
  EXPECT_EQ(pid, static_cast<std::uint32_t>(::getpid()));  // in-process daemon
  s.stop();
  EXPECT_TRUE(h.wait_for([](const proxyd::Stats& st) {
    return st.disconnects >= 1 && st.clients_current == 0;
  }));
  EXPECT_EQ(h.d->stats().leaked_handles, 0u);
}

// ---------------------------------------------------------------------------
// private namespaces
// ---------------------------------------------------------------------------

TEST(ProxydNamespace, ForeignHandleIsTypedErrorNotUB) {
  DaemonHost h;
  ASSERT_TRUE(h.start());
  const proxy::SpawnOptions o = daemon_opts(h.path);
  proxy::Spawned a = proxy::spawn_proxy(proxy::Transport::Daemon, o);
  proxy::Spawned b = proxy::spawn_proxy(proxy::Transport::Daemon, o);
  ASSERT_TRUE(a.ok() && b.ok());
  Tenant ta, tb;
  ASSERT_TRUE(ta.up(*a.client(), 4096, 11));
  ASSERT_TRUE(tb.up(*b.client(), 4096, 77));

  // B forges A's buffer handle on its own (valid) queue: the daemon must
  // reject the whole request before it reaches the substrate.
  std::vector<std::uint8_t> stolen(ta.data.size());
  proxy::RemoteHandle ev = 0;
  EXPECT_EQ(b.client()->enqueue_read(tb.queue, ta.mem, 0, stolen.size(),
                                     stolen.data(), false, ev),
            CL_CHECL_FOREIGN_HANDLE);
  // ...and a forged release must not free A's object out from under it.
  EXPECT_EQ(b.client()->retain_release(Op::ReleaseMemObject, ta.mem),
            CL_CHECL_FOREIGN_HANDLE);
  EXPECT_TRUE(h.wait_for(
      [](const proxyd::Stats& st) { return st.foreign_rejects >= 2; }));

  // Both clients keep working, and A's data never moved.
  EXPECT_TRUE(ta.intact(*a.client()));
  EXPECT_TRUE(tb.intact(*b.client()));
  a.stop();
  b.stop();
}

TEST(ProxydNamespace, ClientDeathLeavesSurvivorsByteIdentical) {
  DaemonHost h;
  ASSERT_TRUE(h.start());
  const proxy::SpawnOptions o = daemon_opts(h.path);
  RawClient a, victim, c;
  ASSERT_TRUE(a.attach(o) && victim.attach(o) && c.attach(o));
  Tenant ta, tv, tc;
  ASSERT_TRUE(ta.up(*a.c, 32 * 1024, 1));
  ASSERT_TRUE(tv.up(*victim.c, 32 * 1024, 2));
  ASSERT_TRUE(tc.up(*c.c, 32 * 1024, 3));
  ASSERT_TRUE(h.wait_for(
      [](const proxyd::Stats& st) { return st.clients_current == 3; }));

  // The daemon kills the victim's session at its next frame — mid-transfer,
  // from the client's point of view: the write is in flight when it dies.
  chaoskit::Fault f;
  f.site = chaoskit::Site::ProxydClientDeath;
  f.actor = chaoskit::Actor::Proxy;
  f.nth = 0;
  chaoskit::Engine::instance().arm(f);
  std::vector<std::uint8_t> big = pattern(32 * 1024, 9);
  proxy::RemoteHandle ev = 0;
  EXPECT_NE(victim.c->enqueue_write(tv.queue, tv.mem, 0, big, false, ev),
            CL_SUCCESS);
  EXPECT_TRUE(chaoskit::Engine::instance().fired());
  chaoskit::Engine::instance().disarm();

  // The whole victim namespace is reclaimed; the survivors are untouched.
  ASSERT_TRUE(h.wait_for([](const proxyd::Stats& st) {
    return st.clients_current == 2 && st.disconnects >= 1;
  }));
  EXPECT_EQ(h.d->stats().leaked_handles, 0u);
  EXPECT_TRUE(ta.intact(*a.c));
  EXPECT_TRUE(tc.intact(*c.c));
  // stats_json() tells the same story (ROADMAP's zero-leak gate).
  const std::string js = checl::stats_json();
  EXPECT_NE(js.find("\"proxyd\": {"), std::string::npos) << js;
  EXPECT_NE(js.find("\"leaked_handles\": 0"), std::string::npos) << js;
  a.die();
  c.die();
}

TEST(ProxydNamespace, LeakDetectorCountsChaosLeakedHandles) {
  DaemonHost h;
  ASSERT_TRUE(h.start());
  RawClient a;
  ASSERT_TRUE(a.attach(daemon_opts(h.path)));
  Tenant t;
  ASSERT_TRUE(t.up(*a.c, 4096, 5));

  // Chaos makes teardown "forget" the release pass: the leak counter — the
  // detector the zero-leak tests gate on — must see every owned handle.
  chaoskit::Fault f;
  f.site = chaoskit::Site::ProxydNamespaceLeak;
  f.actor = chaoskit::Actor::Proxy;
  f.nth = 0;
  chaoskit::Engine::instance().arm(f);
  a.die();
  ASSERT_TRUE(h.wait_for(
      [](const proxyd::Stats& st) { return st.disconnects >= 1; }));
  chaoskit::Engine::instance().disarm();
  // ctx + queue + mem at minimum (platform/device ids are shared, not owned).
  EXPECT_GE(h.d->stats().leaked_handles, 3u);
}

TEST(ProxydNamespace, AbruptDisconnectReclaimsShmAndHandles) {
  const std::size_t shm_before = checl_shm_segments();
  DaemonHost h;
  ASSERT_TRUE(h.start());
  RawClient a;
  ASSERT_TRUE(a.attach(daemon_opts(h.path)));
  Tenant t;
  ASSERT_TRUE(t.up(*a.c, 128 * 1024, 42));  // bulk create rode the shm rings
  a.die();  // no Shutdown, no release calls: just a closed fd
  ASSERT_TRUE(h.wait_for([](const proxyd::Stats& st) {
    return st.disconnects >= 1 && st.clients_current == 0;
  }));
  EXPECT_EQ(h.d->stats().leaked_handles, 0u);
  EXPECT_TRUE(h.d->stats().per_client.empty());
  // The per-client segment is unlinked at attach and unmapped on both sides
  // at death: no zombie /dev/shm entries survive the client.
  EXPECT_LE(checl_shm_segments(), shm_before);
}

// ---------------------------------------------------------------------------
// admission control
// ---------------------------------------------------------------------------

TEST(ProxydAdmission, MaxClientsRejectsWithTypedError) {
  DaemonHost h;
  proxyd::Options dopts;
  dopts.max_clients = 2;
  ASSERT_TRUE(h.start(dopts));
  const proxy::SpawnOptions o = daemon_opts(h.path);
  RawClient a, b, c;
  ASSERT_TRUE(a.attach(o));
  ASSERT_TRUE(b.attach(o));
  EXPECT_FALSE(c.attach(o));
  EXPECT_EQ(c.attach_error, CL_CHECL_DAEMON_FULL);
  EXPECT_TRUE(h.wait_for(
      [](const proxyd::Stats& st) { return st.admission_rejects >= 1; }));

  // Capacity is returned on disconnect, not lost.
  a.die();
  ASSERT_TRUE(h.wait_for(
      [](const proxyd::Stats& st) { return st.clients_current == 1; }));
  EXPECT_TRUE(c.attach(o));
  EXPECT_EQ(configure(*c.c), CL_SUCCESS);
}

TEST(ProxydAdmission, MemCapRejectsAndReleaseReturnsBudget) {
  DaemonHost h;
  proxyd::Options dopts;
  dopts.max_client_mem_bytes = 64 * 1024;
  ASSERT_TRUE(h.start(dopts));
  RawClient a;
  ASSERT_TRUE(a.attach(daemon_opts(h.path)));
  Tenant t;
  ASSERT_TRUE(t.up(*a.c, 32 * 1024, 1));  // 32K of the 64K budget

  proxy::RemoteHandle over = 0;
  EXPECT_EQ(a.c->create_buffer(t.ctx, 0, 64 * 1024, {}, over),
            CL_CHECL_MEM_CAP_EXCEEDED);
  // Releasing the first buffer returns its budget; the same create then fits.
  EXPECT_EQ(a.c->retain_release(Op::ReleaseMemObject, t.mem), CL_SUCCESS);
  EXPECT_EQ(a.c->create_buffer(t.ctx, 0, 64 * 1024, {}, over), CL_SUCCESS);
  EXPECT_TRUE(h.wait_for(
      [](const proxyd::Stats& st) { return st.mem_rejects >= 1; }));
  a.die();
}

// Raw framing helpers: the in-flight cap only matters for a client that
// pipelines past its responses, which the synchronous Client cannot do.
bool send_all(int fd, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  while (n > 0) {
    const ssize_t k = ::send(fd, b, n, MSG_NOSIGNAL);
    if (k <= 0) return false;
    b += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}
bool recv_all(int fd, void* p, std::size_t n) {
  auto* b = static_cast<std::uint8_t*>(p);
  while (n > 0) {
    const ssize_t k = ::recv(fd, b, n, 0);
    if (k <= 0) return false;
    b += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}
void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  const auto off = v.size();
  v.resize(off + 4);
  std::memcpy(v.data() + off, &x, 4);
}

TEST(ProxydAdmission, InflightCapRejectsPipelinedFrames) {
  DaemonHost h;
  proxyd::Options dopts;
  dopts.max_inflight = 4;
  ASSERT_TRUE(h.start(dopts));

  const int fd = ipc::unix_connect(h.path.c_str());
  ASSERT_GE(fd, 0);
  // Attach handshake: [u32 proto][str ""][u64 threshold=0], no shm.
  std::vector<std::uint8_t> attach;
  put_u32(attach, static_cast<std::uint32_t>(Op::Attach));
  put_u32(attach, 20);
  put_u32(attach, proxy::kProxydProtoVersion);
  put_u32(attach, 0);  // empty string: u64 length 0...
  put_u32(attach, 0);
  put_u32(attach, 0);  // u64 threshold 0
  put_u32(attach, 0);
  ASSERT_TRUE(send_all(fd, attach.data(), attach.size()));
  std::uint32_t hdr[2];
  ASSERT_TRUE(recv_all(fd, hdr, sizeof hdr));
  std::vector<std::uint8_t> resp(hdr[1]);
  ASSERT_TRUE(recv_all(fd, resp.data(), resp.size()));
  cl_int err = -1;
  std::memcpy(&err, resp.data(), 4);
  ASSERT_EQ(err, CL_SUCCESS);

  // One burst of 200 empty Ping frames in a single send: the daemon parses
  // them in one pass, so everything past the cap must come back as the typed
  // in-flight reject — in order, without killing the session.
  constexpr int kBurst = 200;
  std::vector<std::uint8_t> burst;
  for (int i = 0; i < kBurst; ++i) {
    put_u32(burst, static_cast<std::uint32_t>(Op::Ping));
    put_u32(burst, 0);
  }
  ASSERT_TRUE(send_all(fd, burst.data(), burst.size()));
  int ok = 0, rejected = 0;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(recv_all(fd, hdr, sizeof hdr)) << "response " << i;
    resp.resize(hdr[1]);
    ASSERT_TRUE(recv_all(fd, resp.data(), resp.size()));
    ASSERT_GE(resp.size(), 4u);
    std::memcpy(&err, resp.data(), 4);
    if (err == CL_SUCCESS) ++ok;
    if (err == CL_CHECL_INFLIGHT_CAP_EXCEEDED) ++rejected;
  }
  EXPECT_EQ(ok + rejected, kBurst);
  EXPECT_GE(ok, 4);  // the frames within the cap were served
  EXPECT_GE(rejected, 1);
  EXPECT_TRUE(h.wait_for(
      [](const proxyd::Stats& st) { return st.queue_rejects >= 1; }));
  ::close(fd);
}

// ---------------------------------------------------------------------------
// stats plumbing
// ---------------------------------------------------------------------------

TEST(ProxydStats, DisconnectRemovesPerClientEntry) {
  DaemonHost h;
  ASSERT_TRUE(h.start());
  const proxy::SpawnOptions o = daemon_opts(h.path);
  RawClient a, b;
  ASSERT_TRUE(a.attach(o) && b.attach(o));
  ASSERT_EQ(configure(*a.c), CL_SUCCESS);
  ASSERT_EQ(configure(*b.c), CL_SUCCESS);
  ASSERT_TRUE(h.wait_for([](const proxyd::Stats& st) {
    return st.per_client.size() == 2 && st.calls >= 2;
  }));
  const std::string js = checl::stats_json();
  EXPECT_NE(js.find("\"proxyd\": {"), std::string::npos) << js;
  EXPECT_NE(js.find("\"clients\": {"), std::string::npos) << js;

  a.die();
  ASSERT_TRUE(h.wait_for(
      [](const proxyd::Stats& st) { return st.per_client.size() == 1; }));
  EXPECT_EQ(h.d->stats().clients_current, 1u);
  b.die();
  ASSERT_TRUE(h.wait_for(
      [](const proxyd::Stats& st) { return st.per_client.empty(); }));
}

// ---------------------------------------------------------------------------
// Configure semantics on a shared substrate (the spawn-mode/daemon-mode fix)
// ---------------------------------------------------------------------------

TEST(ProxydConfigure, SecondClientResetDoesNotRewindSharedClock) {
  DaemonHost h;
  ASSERT_TRUE(h.start());
  const proxy::SpawnOptions o = daemon_opts(h.path);
  proxy::Spawned a = proxy::spawn_proxy(proxy::Transport::Daemon, o);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(configure(*a.client()), CL_SUCCESS);
  ASSERT_EQ(a.client()->sim_advance_host_ns(1'000'000), CL_SUCCESS);
  cl_ulong t1 = 0;
  ASSERT_EQ(a.client()->sim_get_host_time_ns(t1), CL_SUCCESS);
  ASSERT_GE(t1, 1'000'000u);

  // B's handshake is the spawn-mode Configure verbatim — reset_clock=true.
  // On the shared daemon that must configure only B's session, not rewind
  // the clock A is running on.
  proxy::Spawned b = proxy::spawn_proxy(proxy::Transport::Daemon, o);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(configure(*b.client()), CL_SUCCESS);
  cl_ulong t2 = 0;
  ASSERT_EQ(a.client()->sim_get_host_time_ns(t2), CL_SUCCESS);
  EXPECT_GE(t2, t1) << "a late attacher's Configure rewound the shared clock";
  // And both sessions dispatch fine after the second handshake.
  Tenant tb;
  ASSERT_TRUE(tb.up(*b.client(), 4096, 8));
  EXPECT_TRUE(tb.intact(*b.client()));
  a.stop();
  b.stop();
}

// ---------------------------------------------------------------------------
// supervised recovery against the surviving daemon
// ---------------------------------------------------------------------------

TEST(ProxydSupervision, ReattachAndReplayAfterSessionDeath) {
  DaemonHost h;
  ASSERT_TRUE(h.start());

  checl::CheclRuntime& rt = checl::CheclRuntime::instance();
  chaoskit::Engine& chaos = chaoskit::Engine::instance();
  chaos.disarm();
  rt.reset_all();
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Daemon;
  node.proxyd_socket = h.path;
  rt.set_node(node);
  rt.restore_parallel = false;
  rt.supervise = true;
  checl::bind_checl();
  chaos_harness::detail::Scenario sc;
  ASSERT_TRUE(sc.create());

  auto iterate = [&sc] {
    const std::size_t g = static_cast<std::size_t>(sc.n);
    const cl_int e = clEnqueueNDRangeKernel(sc.queue, sc.kernel, 1, nullptr,
                                            &g, nullptr, 0, nullptr, nullptr);
    return e != CL_SUCCESS ? e : clFinish(sc.queue);
  };
  ASSERT_EQ(iterate(), CL_SUCCESS);

  // The daemon drops this client's session at its next frame; the supervisor
  // must re-attach to the *surviving* daemon and replay the namespace.  The
  // probe is replayable (Ping), so recovery is fully transparent.
  chaoskit::Fault f;
  f.site = chaoskit::Site::ProxydClientDeath;
  f.actor = chaoskit::Actor::Proxy;
  f.nth = 0;
  chaos.arm(f);
  EXPECT_EQ(rt.client()->ping(), CL_SUCCESS)
      << "session death was application-visible despite supervision";
  EXPECT_TRUE(chaos.fired());
  chaos.disarm();

  EXPECT_GE(rt.supervisor().stats().recoveries, 1u);
  // Replay re-created every object in a fresh session epoch: work continues
  // and both iterations are in the buffer, byte-identical to spawn mode.
  EXPECT_EQ(iterate(), CL_SUCCESS);
  std::vector<float> out;
  ASSERT_TRUE(sc.read_bytes(out));
  EXPECT_EQ(out[0], 2.0f);

  EXPECT_TRUE(h.wait_for(
      [](const proxyd::Stats& st) { return st.attaches >= 2; }));
  rt.reset_all();
  checl::bind_native();
  EXPECT_TRUE(h.wait_for([](const proxyd::Stats& st) {
    return st.clients_current == 0 && st.leaked_handles == 0;
  }));
}

}  // namespace
