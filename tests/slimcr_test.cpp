// slimcr_test.cpp — the host checkpointer substrate: snapshot format,
// CRC verification, corruption detection, and the storage cost models.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "slimcr/snapshot.h"

namespace {

std::string tmp_path(const char* name) {
  return std::string("/tmp/slimcr_test_") + name + ".snap";
}

TEST(Crc32, KnownVectors) {
  // "123456789" -> 0xCBF43926 (standard CRC-32 check value)
  const char* s = "123456789";
  EXPECT_EQ(slimcr::crc32(reinterpret_cast<const std::uint8_t*>(s), 9),
            0xCBF43926u);
  EXPECT_EQ(slimcr::crc32(nullptr, 0), 0u);
}

TEST(Snapshot, SaveLoadRoundTrip) {
  slimcr::Snapshot snap;
  snap.set("alpha", {1, 2, 3});
  snap.set("beta", std::vector<std::uint8_t>(10000, 0x42));
  snap.set("empty", {});
  const auto path = tmp_path("roundtrip");
  const slimcr::IoResult wr = snap.save(path, slimcr::local_disk());
  ASSERT_TRUE(wr.ok) << wr.error;
  EXPECT_GT(wr.bytes, 10000u);
  EXPECT_GT(wr.duration_ns, 0u);

  slimcr::Snapshot in;
  const slimcr::IoResult rd = in.load(path, slimcr::local_disk());
  ASSERT_TRUE(rd.ok) << rd.error;
  ASSERT_NE(in.get("alpha"), nullptr);
  EXPECT_EQ(*in.get("alpha"), (std::vector<std::uint8_t>{1, 2, 3}));
  ASSERT_NE(in.get("beta"), nullptr);
  EXPECT_EQ(in.get("beta")->size(), 10000u);
  ASSERT_NE(in.get("empty"), nullptr);
  EXPECT_TRUE(in.get("empty")->empty());
  EXPECT_EQ(in.get("nonexistent"), nullptr);
  std::remove(path.c_str());
}

TEST(Snapshot, OverwriteSectionKeepsLatest) {
  slimcr::Snapshot snap;
  snap.set("x", {1});
  snap.set("x", {2, 3});
  ASSERT_EQ(snap.section_count(), 1u);
  EXPECT_EQ(*snap.get("x"), (std::vector<std::uint8_t>{2, 3}));
}

TEST(Snapshot, DetectsBitFlip) {
  slimcr::Snapshot snap;
  snap.set("payload", std::vector<std::uint8_t>(4096, 0x7E));
  const auto path = tmp_path("bitflip");
  ASSERT_TRUE(snap.save(path, slimcr::ram_disk()).ok);
  {
    // flip one byte in the middle of the payload
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(1000);
    const char c = 0x00;
    f.write(&c, 1);
  }
  slimcr::Snapshot in;
  const slimcr::IoResult rd = in.load(path, slimcr::ram_disk());
  EXPECT_FALSE(rd.ok);
  EXPECT_EQ(rd.kind, slimcr::IoError::CrcMismatch);
  EXPECT_NE(rd.error.find("CRC"), std::string::npos);
  EXPECT_EQ(in.section_count(), 0u);  // nothing half-loaded
  std::remove(path.c_str());
}

TEST(Snapshot, RejectsTruncatedFile) {
  slimcr::Snapshot snap;
  snap.set("payload", std::vector<std::uint8_t>(4096, 0x11));
  const auto path = tmp_path("truncated");
  ASSERT_TRUE(snap.save(path, slimcr::ram_disk()).ok);
  // truncate to half
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write("SLIMCR01", 8);
  f.close();
  slimcr::Snapshot in;
  const slimcr::IoResult rd = in.load(path, slimcr::ram_disk());
  EXPECT_FALSE(rd.ok);
  EXPECT_EQ(rd.kind, slimcr::IoError::Truncated);
  std::remove(path.c_str());
}

TEST(Snapshot, RejectsWrongMagic) {
  const auto path = tmp_path("magic");
  std::ofstream f(path, std::ios::binary);
  f.write("NOTASNAP", 8);
  f.close();
  slimcr::Snapshot in;
  const slimcr::IoResult rd = in.load(path, slimcr::ram_disk());
  EXPECT_FALSE(rd.ok);
  EXPECT_EQ(rd.kind, slimcr::IoError::BadMagic);
  EXPECT_NE(rd.error.find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Snapshot, MissingFileFailsCleanly) {
  slimcr::Snapshot in;
  const slimcr::IoResult rd =
      in.load("/tmp/definitely_not_here.snap", slimcr::ram_disk());
  EXPECT_FALSE(rd.ok);
  EXPECT_EQ(rd.kind, slimcr::IoError::OpenFailed);
}

TEST(Snapshot, ErrorKindsHaveNames) {
  EXPECT_STREQ(slimcr::io_error_name(slimcr::IoError::None), "none");
  EXPECT_STREQ(slimcr::io_error_name(slimcr::IoError::CrcMismatch),
               "crc-mismatch");
  EXPECT_STREQ(slimcr::io_error_name(slimcr::IoError::MissingBase),
               "missing-base");
  // a successful save reports kind None
  slimcr::Snapshot snap;
  snap.set("x", {1, 2, 3});
  const auto path = tmp_path("kinds");
  const slimcr::IoResult wr = snap.save(path, slimcr::ram_disk());
  EXPECT_TRUE(wr.ok);
  EXPECT_EQ(wr.kind, slimcr::IoError::None);
  std::remove(path.c_str());
}

TEST(Snapshot, SectionsAccessorIsOrdered) {
  slimcr::Snapshot snap;
  snap.set("b", {2});
  snap.set("a", {1});
  std::vector<std::string> names;
  for (const auto& [name, data] : snap.sections()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

TEST(StorageModel, TableIBandwidths) {
  const auto local = slimcr::local_disk();
  const auto nfs = slimcr::nfs();
  const auto ram = slimcr::ram_disk();
  const std::uint64_t mb100 = 100ull << 20;
  // Table I (rate-scaled): local 110 MB/s write, NFS 72.5, RAM disk 2881
  EXPECT_NEAR(static_cast<double>(local.write_ns(mb100)) / 1e9,
              static_cast<double>(mb100) / (110.0e6 / slimcr::kRateScale), 0.1);
  EXPECT_NEAR(static_cast<double>(nfs.write_ns(mb100)) / 1e9,
              static_cast<double>(mb100) / (72.5e6 / slimcr::kRateScale), 0.1);
  EXPECT_NEAR(static_cast<double>(ram.write_ns(mb100)) / 1e9,
              static_cast<double>(mb100) / (2881.0e6 / slimcr::kRateScale), 0.1);
  // NFS reads are the slowest (21.2 MB/s), RAM disk the fastest
  EXPECT_GT(nfs.read_ns(mb100), local.read_ns(mb100));
  EXPECT_GT(local.read_ns(mb100), ram.read_ns(mb100));
}

TEST(StorageModel, WriteTimeProportionalToSize) {
  const auto sm = slimcr::local_disk();
  const std::uint64_t t1 = sm.write_ns(10ull << 20) - sm.open_latency_ns;
  const std::uint64_t t2 = sm.write_ns(20ull << 20) - sm.open_latency_ns;
  EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t1), 2.0, 0.01);
}

}  // namespace
