// workloads_test.cpp — parameterized integration sweep: every workload in the
// suite must set up, run, and verify under (a) the native binding and (b) the
// CheCL binding, and must survive a checkpoint/restart mid-life under CheCL.
#include <gtest/gtest.h>

#include "checl/checl.h"
#include "workloads/harness.h"

namespace {

struct Case {
  std::string workload;
  workloads::Binding binding;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& e : workloads::suite()) {
    cases.push_back({e.name, workloads::Binding::Native});
    cases.push_back({e.name, workloads::Binding::CheCL});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string n = info.param.workload +
                  (info.param.binding == workloads::Binding::Native ? "_native"
                                                                    : "_checl");
  for (char& c : n)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return n;
}

class WorkloadSweep : public ::testing::TestWithParam<Case> {
 protected:
  void TearDown() override {
    checl::CheclRuntime::instance().reset_all();
    checl::bind_native();
  }
};

TEST_P(WorkloadSweep, RunsAndVerifies) {
  const Case& c = GetParam();
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;  // keep 80 tests fast
  workloads::fresh_process(c.binding, node);
  workloads::Env env;
  env.shrink = 8;
  ASSERT_EQ(workloads::open_env(env, CL_DEVICE_TYPE_GPU, "NVIDIA"), CL_SUCCESS);
  auto w = workloads::create(c.workload);
  ASSERT_NE(w, nullptr);
  const workloads::RunResult res = workloads::run_workload(*w, env, 1);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.verified) << res.error;
  workloads::close_env(env);
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadSweep, ::testing::ValuesIn(all_cases()),
                         case_name);

// Checkpoint/restart correctness per workload: run once, checkpoint, run the
// remaining iteration, restart, and confirm verification still passes after
// recomputation (buffer contents and kernel args must have been restored).
class CprSweep : public ::testing::TestWithParam<std::string> {
 protected:
  void TearDown() override {
    checl::CheclRuntime::instance().reset_all();
    checl::bind_native();
  }
};

TEST_P(CprSweep, SurvivesCheckpointRestart) {
  const std::string& name = GetParam();
  auto w = workloads::create(name);
  ASSERT_NE(w, nullptr);
  if (!w->executes_kernel()) GTEST_SKIP() << "transfer/compile-only workload";

  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;
  workloads::fresh_process(workloads::Binding::CheCL, node);
  auto& rt = checl::CheclRuntime::instance();
  const std::string path = "/tmp/checl_cpr_sweep.ckpt";

  workloads::Env env;
  env.shrink = 8;
  ASSERT_EQ(workloads::open_env(env, CL_DEVICE_TYPE_GPU, "NVIDIA"), CL_SUCCESS);
  ASSERT_EQ(w->setup(env), CL_SUCCESS);
  ASSERT_EQ(w->run(env), CL_SUCCESS);
  ASSERT_EQ(rt.engine().checkpoint(path, nullptr), CL_SUCCESS);
  ASSERT_EQ(rt.engine().restart_in_place(path, std::nullopt, nullptr),
            CL_SUCCESS);
  // everything still works after restoration
  ASSERT_EQ(w->run(env), CL_SUCCESS);
  EXPECT_TRUE(w->verify(env));
  w->teardown(env);
  workloads::close_env(env);
}

std::vector<std::string> kernel_workload_names() {
  std::vector<std::string> names;
  for (const auto& e : workloads::suite()) names.push_back(e.name);
  return names;
}

std::string name_only(const ::testing::TestParamInfo<std::string>& info) {
  std::string n = info.param;
  for (char& c : n)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(Suite, CprSweep,
                         ::testing::ValuesIn(kernel_workload_names()), name_only);

// The paper's portability observation: oclSortingNetworks needs work-groups
// of 512, which the AMD-like GPU (max 256) rejects while CPU and NVIDIA GPU
// accept.
TEST(Portability, SortingNetworksPerDevice) {
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;

  struct Probe {
    const char* platform;
    cl_device_type type;
    bool expect_ok;
  };
  const Probe probes[] = {
      {"NVIDIA", CL_DEVICE_TYPE_GPU, true},
      {"AMD", CL_DEVICE_TYPE_GPU, false},  // WG 512 > 256 limit
      {"AMD", CL_DEVICE_TYPE_CPU, true},
  };
  for (const Probe& probe : probes) {
    workloads::fresh_process(workloads::Binding::Native, node);
    workloads::Env env;
    env.shrink = 8;
    ASSERT_EQ(workloads::open_env(env, probe.type, probe.platform), CL_SUCCESS);
    auto w = workloads::create("oclSortingNetworks");
    const workloads::RunResult res = workloads::run_workload(*w, env, 1);
    EXPECT_EQ(res.ok && res.verified, probe.expect_ok)
        << probe.platform << (probe.type == CL_DEVICE_TYPE_GPU ? " GPU" : " CPU")
        << ": " << res.error;
    workloads::close_env(env);
  }
  checl::CheclRuntime::instance().reset_all();
  checl::bind_native();
}

// Cross-device verification: a few representative workloads must verify on
// all three paper configurations.
class DeviceMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
 protected:
  void TearDown() override {
    checl::CheclRuntime::instance().reset_all();
    checl::bind_native();
  }
};

TEST_P(DeviceMatrix, VerifiesEverywhere) {
  const auto& [name, cfg_idx] = GetParam();
  const char* platforms[] = {"NVIDIA", "AMD", "AMD"};
  const cl_device_type types[] = {CL_DEVICE_TYPE_GPU, CL_DEVICE_TYPE_GPU,
                                  CL_DEVICE_TYPE_CPU};
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;
  workloads::fresh_process(workloads::Binding::CheCL, node);
  workloads::Env env;
  env.shrink = 8;
  ASSERT_EQ(workloads::open_env(env, types[cfg_idx], platforms[cfg_idx]),
            CL_SUCCESS);
  auto w = workloads::create(name);
  ASSERT_NE(w, nullptr);
  const workloads::RunResult res = workloads::run_workload(*w, env, 1);
  EXPECT_TRUE(res.ok && res.verified) << res.error;
  workloads::close_env(env);
}

std::string matrix_case_name(
    const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
  static const char* kCfg[] = {"nvidia_gpu", "amd_gpu", "amd_cpu"};
  return std::get<0>(info.param) + "_" + kCfg[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DeviceMatrix,
    ::testing::Combine(::testing::Values("oclVectorAdd", "oclMatrixMul",
                                         "oclHistogram", "Stencil2D", "FFT",
                                         "imageRotate"),
                       ::testing::Values(0, 1, 2)),
    matrix_case_name);

}  // namespace
