// proxy_test.cpp — the API proxy: spawn (thread + process transports), full
// RPC surface, determinism of the virtual clock across transports, IPC cost
// charging, and failure injection (killed proxy).
#include <gtest/gtest.h>

#include <unistd.h>

#include "proxy/spawn.h"
#include "simcl/specs.h"

namespace {

const char* kSrc =
    "__kernel void scale(__global float* d, float s, int n) {"
    "  int i = get_global_id(0); if (i < n) d[i] = d[i] * s; }";

// Runs a small workload through a client; returns the final virtual time.
cl_ulong run_scenario(proxy::Client& c) {
  EXPECT_EQ(c.configure(simcl::default_platforms(), proxy::IpcCosts{}, true),
            CL_SUCCESS);
  std::vector<proxy::RemoteHandle> plats;
  cl_uint n = 0;
  EXPECT_EQ(c.get_platform_ids(4, plats, n), CL_SUCCESS);
  EXPECT_EQ(n, 2u);
  std::vector<proxy::RemoteHandle> devs;
  EXPECT_EQ(c.get_device_ids(plats[0], CL_DEVICE_TYPE_GPU, 4, devs, n), CL_SUCCESS);

  proxy::RemoteHandle ctx = 0;
  proxy::RemoteHandle q = 0;
  proxy::RemoteHandle buf = 0;
  proxy::RemoteHandle prog = 0;
  proxy::RemoteHandle kern = 0;
  EXPECT_EQ(c.create_context({}, {devs.data(), 1}, ctx), CL_SUCCESS);
  EXPECT_EQ(c.create_queue(ctx, devs[0], 0, q), CL_SUCCESS);
  const int count = 1024;
  std::vector<float> host(count, 2.0f);
  EXPECT_EQ(c.create_buffer(ctx, CL_MEM_READ_WRITE, count * 4,
                            {reinterpret_cast<const std::uint8_t*>(host.data()),
                             static_cast<std::size_t>(count) * 4},
                            buf),
            CL_SUCCESS);
  EXPECT_EQ(c.create_program_with_source(ctx, kSrc, prog), CL_SUCCESS);
  EXPECT_EQ(c.build_program(prog, {devs.data(), 1}, ""), CL_SUCCESS);
  EXPECT_EQ(c.create_kernel(prog, "scale", kern), CL_SUCCESS);
  EXPECT_EQ(c.set_kernel_arg_mem(kern, 0, buf), CL_SUCCESS);
  const float s = 3.0f;
  EXPECT_EQ(c.set_kernel_arg_bytes(
                kern, 1, {reinterpret_cast<const std::uint8_t*>(&s), 4}),
            CL_SUCCESS);
  EXPECT_EQ(c.set_kernel_arg_bytes(
                kern, 2, {reinterpret_cast<const std::uint8_t*>(&count), 4}),
            CL_SUCCESS);
  std::size_t gsz[1] = {static_cast<std::size_t>(count)};
  proxy::RemoteHandle ev = 0;
  EXPECT_EQ(c.enqueue_ndrange(q, kern, 1, nullptr, gsz, nullptr, true, ev),
            CL_SUCCESS);
  EXPECT_EQ(c.wait_for_events({&ev, 1}), CL_SUCCESS);
  EXPECT_EQ(c.retain_release(proxy::Op::ReleaseEvent, ev), CL_SUCCESS);
  std::vector<float> out(count, 0.0f);
  proxy::RemoteHandle rev = 0;
  EXPECT_EQ(c.enqueue_read(q, buf, 0, count * 4, out.data(), false, rev),
            CL_SUCCESS);
  for (const float v : out) EXPECT_FLOAT_EQ(v, 6.0f);

  cl_ulong t = 0;
  EXPECT_EQ(c.sim_get_host_time_ns(t), CL_SUCCESS);
  c.retain_release(proxy::Op::ReleaseKernel, kern);
  c.retain_release(proxy::Op::ReleaseProgram, prog);
  c.retain_release(proxy::Op::ReleaseMemObject, buf);
  c.retain_release(proxy::Op::ReleaseCommandQueue, q);
  c.retain_release(proxy::Op::ReleaseContext, ctx);
  return t;
}

TEST(Proxy, ThreadTransportScenario) {
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Thread);
  ASSERT_TRUE(sp.ok()) << sp.error();
  const cl_ulong t = run_scenario(*sp.client());
  EXPECT_GT(t, 0u);
  sp.stop();
}

TEST(Proxy, ProcessTransportScenario) {
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Process);
  ASSERT_TRUE(sp.ok()) << sp.error();
  EXPECT_GT(sp.pid(), 0);
  const cl_ulong t = run_scenario(*sp.client());
  EXPECT_GT(t, 0u);
  sp.stop();
}

TEST(Proxy, VirtualTimeIdenticalAcrossTransports) {
  proxy::Spawned a = proxy::spawn_proxy(proxy::Transport::Thread);
  proxy::Spawned b = proxy::spawn_proxy(proxy::Transport::Process);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok()) << b.error();
  const cl_ulong ta = run_scenario(*a.client());
  const cl_ulong tb = run_scenario(*b.client());
  EXPECT_EQ(ta, tb);  // the discrete-event model is transport-independent
  a.stop();
  b.stop();
}

TEST(Proxy, PingReportsDifferentPidForProcess) {
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Process);
  ASSERT_TRUE(sp.ok()) << sp.error();
  sp.client()->configure(simcl::default_platforms(), proxy::IpcCosts{}, true);
  std::uint32_t pid = 0;
  ASSERT_EQ(sp.client()->ping(&pid), CL_SUCCESS);
  EXPECT_NE(pid, static_cast<std::uint32_t>(::getpid()));
  EXPECT_EQ(pid, static_cast<std::uint32_t>(sp.pid()));
  sp.stop();
}

TEST(Proxy, IpcCostsChargedPerCall) {
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Thread);
  ASSERT_TRUE(sp.ok());
  proxy::IpcCosts costs;
  costs.per_call_ns = 1'000'000;  // exaggerated: 1 ms per call
  costs.spawn_ns = 0;
  ASSERT_EQ(sp.client()->configure(simcl::default_platforms(), costs, true),
            CL_SUCCESS);
  cl_ulong t0 = 0;
  sp.client()->sim_get_host_time_ns(t0);
  std::vector<proxy::RemoteHandle> plats;
  cl_uint n = 0;
  for (int i = 0; i < 10; ++i) sp.client()->get_platform_ids(4, plats, n);
  cl_ulong t1 = 0;
  sp.client()->sim_get_host_time_ns(t1);
  EXPECT_GE(t1 - t0, 10u * costs.per_call_ns);
  sp.stop();
}

TEST(Proxy, SpawnCostChargedAtConfigure) {
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Thread);
  ASSERT_TRUE(sp.ok());
  proxy::IpcCosts costs;  // default spawn: 80 ms
  ASSERT_EQ(sp.client()->configure(simcl::default_platforms(), costs, true),
            CL_SUCCESS);
  cl_ulong t = 0;
  sp.client()->sim_get_host_time_ns(t);
  EXPECT_GE(t, costs.spawn_ns);
  sp.stop();
}

TEST(Proxy, KilledProxyFailsGracefully) {
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Process);
  ASSERT_TRUE(sp.ok()) << sp.error();
  ASSERT_EQ(sp.client()->configure(simcl::default_platforms(), proxy::IpcCosts{},
                                   true),
            CL_SUCCESS);
  sp.kill_hard();
  std::vector<proxy::RemoteHandle> plats;
  cl_uint n = 0;
  EXPECT_NE(sp.client()->get_platform_ids(4, plats, n), CL_SUCCESS);
  EXPECT_FALSE(sp.client()->alive());
  // subsequent calls stay failed instead of hanging
  cl_ulong t = 0;
  EXPECT_NE(sp.client()->sim_get_host_time_ns(t), CL_SUCCESS);
  sp.stop();
}

TEST(Proxy, BadRemoteHandleIsRejectedByServer) {
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Thread);
  ASSERT_TRUE(sp.ok());
  sp.client()->configure(simcl::default_platforms(), proxy::IpcCosts{}, true);
  // a bogus token must come back as an OpenCL error, not a crash
  EXPECT_EQ(sp.client()->retain_release(proxy::Op::ReleaseContext, 0xDEAD),
            CL_INVALID_CONTEXT);
  EXPECT_EQ(sp.client()->finish(0xDEAD), CL_INVALID_COMMAND_QUEUE);
  sp.stop();
}

TEST(Proxy, MalformedPayloadDoesNotCrashServer) {
  // drive the raw channel: truncated and garbage payloads must come back as
  // error replies (or at worst a clean close), never a crash
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Process);
  ASSERT_TRUE(sp.ok()) << sp.error();
  sp.client()->configure(simcl::default_platforms(), proxy::IpcCosts{}, true);

  // a CreateContext request with a truncated body: the Reader under-runs and
  // the server must answer with an error
  proxy::RemoteHandle out = 0;
  // (craft via the public client API with empty device list — also invalid)
  EXPECT_NE(sp.client()->create_context({}, {}, out), CL_SUCCESS);

  // unknown opcodes are rejected, not fatal: use a raw second channel is not
  // possible here, so verify the server survives a burst of invalid calls
  for (int i = 0; i < 50; ++i)
    EXPECT_NE(sp.client()->retain_release(proxy::Op::ReleaseKernel,
                                          0xBAD0 + static_cast<unsigned>(i)),
              CL_SUCCESS);
  std::uint32_t pid = 0;
  EXPECT_EQ(sp.client()->ping(&pid), CL_SUCCESS);  // still alive
  sp.stop();
}

TEST(Proxy, CrossTypeRemoteHandleRejected) {
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Thread);
  ASSERT_TRUE(sp.ok());
  proxy::Client& c = *sp.client();
  c.configure(simcl::default_platforms(), proxy::IpcCosts{}, true);
  std::vector<proxy::RemoteHandle> plats;
  cl_uint n = 0;
  c.get_platform_ids(4, plats, n);
  // a platform handle used as a context / queue / program must be rejected
  EXPECT_EQ(c.retain_release(proxy::Op::ReleaseContext, plats[0]),
            CL_INVALID_CONTEXT);
  EXPECT_EQ(c.finish(plats[0]), CL_INVALID_COMMAND_QUEUE);
  proxy::RemoteHandle out = 0;
  EXPECT_EQ(c.create_kernel(plats[0], "k", out), CL_INVALID_PROGRAM);
  sp.stop();
}

TEST(Proxy, RemoteTcpProxyScenario) {
  // Section V extension: the API proxy lives behind TCP instead of a
  // socketpair — here on loopback, standing in for another machine.
  proxy::Spawned sp = proxy::spawn_tcp_proxy(38417);
  if (!sp.ok()) GTEST_SKIP() << sp.error();  // port may be busy on CI
  const cl_ulong t = run_scenario(*sp.client());
  EXPECT_GT(t, 0u);
  sp.stop();
}

TEST(Proxy, RemoteTcpVirtualTimeMatchesLocal) {
  proxy::Spawned local = proxy::spawn_proxy(proxy::Transport::Process);
  ASSERT_TRUE(local.ok()) << local.error();
  proxy::Spawned remote = proxy::spawn_tcp_proxy(38423);
  if (!remote.ok()) GTEST_SKIP() << remote.error();
  EXPECT_EQ(run_scenario(*local.client()), run_scenario(*remote.client()));
  local.stop();
  remote.stop();
}

TEST(Proxy, ShmTransportScenarioAndStats) {
  // full workload over the Process transport with the shm data plane on and a
  // threshold low enough that buffer traffic rides the ring
  proxy::SpawnOptions opts;
  opts.use_shm = true;
  opts.shm_threshold = 1024;
  opts.shm_ring_bytes = 4u << 20;
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Process, opts);
  ASSERT_TRUE(sp.ok()) << sp.error();
  const cl_ulong t = run_scenario(*sp.client());
  EXPECT_GT(t, 0u);
  const auto ch = sp.client()->channel_stats();
  EXPECT_GT(ch.shm_msgs_sent + ch.shm_msgs_recvd, 0u)
      << "bulk traffic never took the shm path";
  sp.stop();
}

TEST(Proxy, ShmVirtualTimeMatchesPlainSocket) {
  // the data plane must be invisible to the discrete-event model
  proxy::SpawnOptions plain;
  plain.use_shm = false;
  proxy::SpawnOptions shm;
  shm.use_shm = true;
  shm.shm_threshold = 1024;
  proxy::Spawned a = proxy::spawn_proxy(proxy::Transport::Process, plain);
  proxy::Spawned b = proxy::spawn_proxy(proxy::Transport::Process, shm);
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(b.ok()) << b.error();
  EXPECT_EQ(run_scenario(*a.client()), run_scenario(*b.client()));
  a.stop();
  b.stop();
}

TEST(Proxy, BatchFlushPreservesOrdering) {
  // queue up arg-set + ndrange as a batch, then read back through the
  // synchronous path: the flush must land before the read for the result to
  // be correct
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Process);
  ASSERT_TRUE(sp.ok()) << sp.error();
  proxy::Client& c = *sp.client();
  c.set_batching(true);
  const cl_ulong t = run_scenario(c);  // checks read-back values internally
  EXPECT_GT(t, 0u);
  EXPECT_GT(c.stats().batched_calls, 0u) << "batching never engaged";
  EXPECT_GT(c.stats().batch_flushes, 0u);
  // far fewer round-trips than calls when batching is on
  EXPECT_LT(c.stats().batch_flushes, c.stats().batched_calls);
  sp.stop();
}

TEST(Proxy, BatchingVirtualTimeDeterministicAndNoDearer) {
  // batching legitimately reduces modeled IPC cost (one per-call charge per
  // flushed frame instead of N), so batched != unbatched; what must hold is
  // that batched runs are deterministic and never dearer than unbatched
  proxy::Spawned a = proxy::spawn_proxy(proxy::Transport::Process);
  proxy::Spawned b = proxy::spawn_proxy(proxy::Transport::Process);
  proxy::Spawned c = proxy::spawn_proxy(proxy::Transport::Process);
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(b.ok()) << b.error();
  ASSERT_TRUE(c.ok()) << c.error();
  b.client()->set_batching(true);
  c.client()->set_batching(true);
  const cl_ulong unbatched = run_scenario(*a.client());
  const cl_ulong batched1 = run_scenario(*b.client());
  const cl_ulong batched2 = run_scenario(*c.client());
  EXPECT_EQ(batched1, batched2);
  EXPECT_LE(batched1, unbatched);
  a.stop();
  b.stop();
  c.stop();
}

TEST(Proxy, BatchedErrorDeferredToSyncPoint) {
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Thread);
  ASSERT_TRUE(sp.ok());
  proxy::Client& c = *sp.client();
  c.configure(simcl::default_platforms(), proxy::IpcCosts{}, true);
  c.set_batching(true);
  // a fire-and-forget op on a bogus handle is queued, so it reports success...
  EXPECT_EQ(c.set_kernel_arg_mem(0xDEAD, 0, 0xBEEF), CL_SUCCESS);
  // ...and the real error surfaces (and clears) at the next sync point
  const cl_int deferred = c.sync();
  EXPECT_NE(deferred, CL_SUCCESS);
  EXPECT_EQ(c.deferred_error(), CL_SUCCESS);  // cleared after surfacing
  EXPECT_EQ(c.sync(), CL_SUCCESS);            // sticky only until surfaced
  sp.stop();
}

TEST(Proxy, DisablingBatchingFlushesQueue) {
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Thread);
  ASSERT_TRUE(sp.ok());
  proxy::Client& c = *sp.client();
  c.configure(simcl::default_platforms(), proxy::IpcCosts{}, true);
  c.set_batching(true);
  EXPECT_EQ(c.set_kernel_arg_mem(0xDEAD, 0, 0xBEEF), CL_SUCCESS);
  c.set_batching(false);  // flush happens here
  // the queued call's failure is now the deferred error, surfaced at sync
  EXPECT_NE(c.sync(), CL_SUCCESS);
  sp.stop();
}

TEST(Proxy, InfoQueriesThroughRpc) {
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Process);
  ASSERT_TRUE(sp.ok()) << sp.error();
  proxy::Client& c = *sp.client();
  c.configure(simcl::default_platforms(), proxy::IpcCosts{}, true);
  std::vector<proxy::RemoteHandle> plats;
  cl_uint n = 0;
  c.get_platform_ids(4, plats, n);
  // size-query protocol across the wire
  std::size_t need = 0;
  ASSERT_EQ(c.get_info(proxy::Op::GetPlatformInfo, plats[0], CL_PLATFORM_NAME, 0,
                       nullptr, &need),
            CL_SUCCESS);
  ASSERT_GT(need, 0u);
  std::vector<char> name(need);
  ASSERT_EQ(c.get_info(proxy::Op::GetPlatformInfo, plats[0], CL_PLATFORM_NAME,
                       need, name.data(), nullptr),
            CL_SUCCESS);
  EXPECT_NE(std::string(name.data()).find("NVIDIA"), std::string::npos);
  sp.stop();
}

}  // namespace
