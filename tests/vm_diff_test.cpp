// vm_diff_test.cpp — differential testing of the clc bytecode VM against the
// tree-walking interpreter (the oracle).
//
// The VM's correctness claim is *bit-identity*: for every kernel, every output
// buffer must hold exactly the same bytes under both engines, because both
// bottom out in the same binary_op/convert/load/store/builtin helpers.  The
// suites here prove that claim three ways:
//   * the fig4 workload-kernel corpus (src/workloads/fig4_kernels.h);
//   * seeded randomized expression kernels over the scalar/vector type grid;
//   * a hand-picked corpus of the semantics corners (swizzle stores, structs,
//    compound assignment, short-circuiting, user functions, wrap-around);
// plus the serialize -> deserialize -> execute round-trip (what a compile-cache
// hit runs), runtime-fault parity, and the stats_json "clc" section.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "clc/bytecode.h"
#include "clc/interp.h"
#include "clc/program.h"
#include "core/stats.h"
#include "workloads/fig4_kernels.h"

namespace {

using workloads::Fig4Kernel;
using workloads::Fig4Launch;

clc::LaunchResult run_engine(const clc::Module& mod, const clc::FuncDecl& fn,
                             const Fig4Launch& L, clc::ExecEngine engine) {
  clc::LaunchOptions opts;
  opts.engine = engine;
  return clc::execute_ndrange(mod, fn, L.args, L.nd, opts);
}

// Runs `k` once per engine on bit-identical inputs and asserts every buffer
// (inputs too — the kernel must not scribble) matches afterwards.  When
// `deserialized` is non-null it is used for the VM run instead of the
// compiled module (the compile-cache-hit configuration: metadata + bytecode,
// no AST bodies).
void expect_bit_identical(const Fig4Kernel& k,
                          const clc::Module* deserialized = nullptr) {
  SCOPED_TRACE(std::string(k.workload) + "/" + k.kernel);
  clc::CompileResult res = clc::compile(k.source);
  ASSERT_TRUE(res.ok()) << res.diag.to_string();
  const clc::FuncDecl* fn = res.module->find_func(k.kernel);
  ASSERT_NE(fn, nullptr);

  Fig4Launch li = workloads::make_fig4_launch(k);
  const clc::LaunchResult ri =
      run_engine(*res.module, *fn, li, clc::ExecEngine::Interp);
  ASSERT_TRUE(ri.ok) << ri.error;

  const clc::Module& vm_mod = deserialized ? *deserialized : *res.module;
  const clc::FuncDecl* vm_fn = vm_mod.find_func(k.kernel);
  ASSERT_NE(vm_fn, nullptr);
  Fig4Launch lv = workloads::make_fig4_launch(k);
  const clc::LaunchResult rv =
      run_engine(vm_mod, *vm_fn, lv, clc::ExecEngine::Vm);
  ASSERT_TRUE(rv.ok) << rv.error;

  ASSERT_EQ(li.buffers.size(), lv.buffers.size());
  for (std::size_t b = 0; b < li.buffers.size(); ++b) {
    SCOPED_TRACE("buffer " + std::to_string(b));
    ASSERT_EQ(li.buffers[b].size(), lv.buffers[b].size());
    EXPECT_EQ(0, std::memcmp(li.buffers[b].data(), lv.buffers[b].data(),
                             li.buffers[b].size()));
  }
}

// ---------------------------------------------------------------------------
// fig4 workload kernels
// ---------------------------------------------------------------------------

TEST(VmDiff, Fig4KernelsBitIdentical) {
  for (const Fig4Kernel& k : workloads::fig4_kernels()) expect_bit_identical(k);
}

TEST(VmDiff, Fig4KernelsBitIdenticalAfterSerializeRoundTrip) {
  for (const Fig4Kernel& k : workloads::fig4_kernels()) {
    SCOPED_TRACE(std::string(k.workload) + "/" + k.kernel);
    clc::CompileResult res = clc::compile(k.source);
    ASSERT_TRUE(res.ok()) << res.diag.to_string();
    const std::vector<std::uint8_t> blob = clc::serialize_module(*res.module);
    ASSERT_FALSE(blob.empty());
    std::string err;
    std::shared_ptr<const clc::Module> back =
        clc::deserialize_module(blob, &err);
    ASSERT_NE(back, nullptr) << err;
    // The round-tripped module carries no AST: execution below can only be
    // the VM interpreting the deserialized bytecode.
    for (const auto& f : back->funcs) EXPECT_EQ(f->body, nullptr);
    expect_bit_identical(k, back.get());
  }
}

// ---------------------------------------------------------------------------
// randomized expression kernels
// ---------------------------------------------------------------------------

struct RandGen {
  std::mt19937 rng;
  bool is_float;

  explicit RandGen(std::uint32_t seed, bool f) : rng(seed), is_float(f) {}

  int pick(int n) { return static_cast<int>(rng() % static_cast<unsigned>(n)); }

  std::string leaf() {
    switch (pick(4)) {
      case 0: return "x";
      case 1: return "y";
      case 2:
        return is_float ? std::to_string(pick(16)) + ".25f"
                        : std::to_string(pick(64) - 32);
      default: return is_float ? "2.5f" : "3";
    }
  }

  std::string expr(int depth) {
    if (depth <= 0) return leaf();
    const std::string a = expr(depth - 1);
    const std::string b = expr(depth - 1);
    if (is_float) {
      switch (pick(7)) {
        case 0: return "(" + a + " + " + b + ")";
        case 1: return "(" + a + " - " + b + ")";
        case 2: return "(" + a + " * " + b + ")";
        case 3: return "fmin(" + a + ", " + b + ")";
        case 4: return "fmax(" + a + ", " + b + ")";
        case 5: return "fabs(" + a + ")";
        default: return "mad(" + a + ", " + b + ", " + expr(depth - 1) + ")";
      }
    }
    switch (pick(10)) {
      case 0: return "(" + a + " + " + b + ")";
      case 1: return "(" + a + " - " + b + ")";
      case 2: return "(" + a + " * " + b + ")";
      case 3: return "(" + a + " & " + b + ")";
      case 4: return "(" + a + " | " + b + ")";
      case 5: return "(" + a + " ^ " + b + ")";
      case 6: return "(" + a + " << (" + b + " & 7))";
      case 7: return "(" + a + " >> (" + b + " & 7))";
      case 8: return "(" + a + " / (" + b + " | 1))";   // |1: no div-by-zero
      default: return "(" + a + " % (" + b + " | 1))";
    }
  }
};

// One randomized kernel: out[i] = f(a[i], b[i]) for a seeded random f.
// Scalar types additionally exercise comparisons and the ternary operator.
void run_random_kernel(const char* type, std::size_t elem_bytes, bool is_float,
                       bool is_vector, std::uint32_t seed) {
  SCOPED_TRACE(std::string(type) + " seed=" + std::to_string(seed));
  RandGen gen(seed, is_float);
  std::string body = gen.expr(3);
  if (!is_vector && gen.pick(2) == 0)
    body = "((x < y) ? " + body + " : " + gen.expr(2) + ")";
  const std::string src = std::string("__kernel void k(__global ") + type +
                          "* out, __global const " + type +
                          "* a, __global const " + type + "* b) {\n"
                          "  int i = get_global_id(0);\n  " +
                          type + " x = a[i];\n  " + type + " y = b[i];\n"
                          "  out[i] = " + body + ";\n}\n";

  clc::CompileResult res = clc::compile(src.c_str());
  ASSERT_TRUE(res.ok()) << src << "\n" << res.diag.to_string();
  const clc::FuncDecl* fn = res.module->find_func("k");
  ASSERT_NE(fn, nullptr);

  const std::size_t n = 256;
  auto fill = [&](std::uint32_t fseed) {
    std::vector<std::uint8_t> buf(n * elem_bytes);
    std::uint32_t lcg = fseed;
    if (is_float) {
      for (std::size_t i = 0; i + 4 <= buf.size(); i += 4) {
        lcg = lcg * 1664525u + 1013904223u;
        const float f =
            -8.0f + 16.0f * static_cast<float>((lcg >> 8) & 0xFFFFu) / 65536.0f;
        std::memcpy(buf.data() + i, &f, 4);
      }
    } else {
      for (auto& byte : buf) {
        lcg = lcg * 1664525u + 1013904223u;
        byte = static_cast<std::uint8_t>(lcg >> 13);
      }
    }
    return buf;
  };

  auto run = [&](clc::ExecEngine engine) {
    std::vector<std::uint8_t> a = fill(seed * 7 + 1);
    std::vector<std::uint8_t> b = fill(seed * 13 + 2);
    std::vector<std::uint8_t> out(n * elem_bytes, 0xAB);
    std::vector<clc::KernelArg> args(3);
    args[0].k = clc::KernelArg::K::GlobalPtr;
    args[0].ptr = out.data();
    args[1].k = clc::KernelArg::K::GlobalPtr;
    args[1].ptr = a.data();
    args[2].k = clc::KernelArg::K::GlobalPtr;
    args[2].ptr = b.data();
    clc::NDRange nd;
    nd.dim = 1;
    nd.global[0] = n;
    nd.local[0] = 32;
    clc::LaunchOptions opts;
    opts.engine = engine;
    const clc::LaunchResult r =
        clc::execute_ndrange(*res.module, *fn, args, nd, opts);
    EXPECT_TRUE(r.ok) << src << "\n" << r.error;
    return out;
  };

  const std::vector<std::uint8_t> oi = run(clc::ExecEngine::Interp);
  const std::vector<std::uint8_t> ov = run(clc::ExecEngine::Vm);
  EXPECT_EQ(oi, ov) << src;
}

TEST(VmDiff, RandomizedKernelsBitIdentical) {
  struct Ty {
    const char* name;
    std::size_t bytes;
    bool is_float;
    bool is_vector;
  };
  const Ty kTypes[] = {
      {"int", 4, false, false},    {"uint", 4, false, false},
      {"char", 1, false, false},   {"short", 2, false, false},
      {"float", 4, true, false},   {"float2", 8, true, true},
      {"float4", 16, true, true},  {"int4", 16, false, true},
  };
  for (const Ty& t : kTypes)
    for (std::uint32_t seed = 1; seed <= 8; ++seed)
      run_random_kernel(t.name, t.bytes, t.is_float, t.is_vector, seed);
}

// ---------------------------------------------------------------------------
// semantics-corner corpus (the clc_test feature axes, engine-diffed)
// ---------------------------------------------------------------------------

// Each corpus kernel writes `out` (uint words) from `a`/`b` inputs; the
// harness diff-runs it like the randomized ones.
void diff_corpus_kernel(const char* tag, const std::string& src) {
  SCOPED_TRACE(tag);
  clc::CompileResult res = clc::compile(src.c_str());
  ASSERT_TRUE(res.ok()) << res.diag.to_string();
  const clc::FuncDecl* fn = res.module->find_func("k");
  ASSERT_NE(fn, nullptr);

  const std::size_t n = 64;
  auto run = [&](clc::ExecEngine engine) {
    std::vector<std::uint32_t> out(4 * n, 0xCDCDCDCDu);
    std::vector<std::uint32_t> in(4 * n);
    for (std::size_t i = 0; i < in.size(); ++i)
      in[i] = static_cast<std::uint32_t>(i * 2654435761u);
    std::vector<clc::KernelArg> args(2);
    args[0].k = clc::KernelArg::K::GlobalPtr;
    args[0].ptr = out.data();
    args[1].k = clc::KernelArg::K::GlobalPtr;
    args[1].ptr = in.data();
    clc::NDRange nd;
    nd.dim = 1;
    nd.global[0] = n;
    nd.local[0] = 16;
    clc::LaunchOptions opts;
    opts.engine = engine;
    const clc::LaunchResult r =
        clc::execute_ndrange(*res.module, *fn, args, nd, opts);
    EXPECT_TRUE(r.ok) << r.error;
    return out;
  };
  EXPECT_EQ(run(clc::ExecEngine::Interp), run(clc::ExecEngine::Vm));
}

TEST(VmDiff, CorpusControlFlowAndCompoundAssign) {
  diff_corpus_kernel("loops", R"CL(
__kernel void k(__global uint* out, __global const uint* in) {
  int i = get_global_id(0);
  uint acc = 0u;
  for (int j = 0; j < 8; ++j) acc += in[i] >> j;
  int w = 0;
  while (w < 4) { acc ^= in[w]; ++w; }
  do { acc = acc * 3u + 1u; } while (acc % 5u != 0u);
  int c = 0;
  for (int j = 0; j < 16; ++j) {
    if (j == 3) continue;
    if (j == 12) break;
    c += j;
  }
  acc += (uint)c;
  acc <<= 1;
  acc |= 1u;
  acc -= in[i] & 0xFFu;
  out[i] = acc;
}
)CL");
}

TEST(VmDiff, CorpusShortCircuitAndIncDec) {
  diff_corpus_kernel("short-circuit", R"CL(
__kernel void k(__global uint* out, __global const uint* in) {
  int i = get_global_id(0);
  int touched = 0;
  int cond = (in[i] % 2u == 0u) && (++touched > 0);
  int cond2 = (in[i] % 2u == 1u) || (touched-- < 0);
  uint x = in[i];
  uint pre = ++x;
  uint post = x++;
  out[i] = (uint)(cond * 4 + cond2 * 2 + touched) + pre * 3u + post;
}
)CL");
}

TEST(VmDiff, CorpusStructsAndPrivateArrays) {
  diff_corpus_kernel("structs", R"CL(
typedef struct { float x; float y; int tag; } Pt;
__kernel void k(__global uint* out, __global const uint* in) {
  int i = get_global_id(0);
  Pt p;
  p.x = (float)(in[i] & 15u);
  p.y = 2.0f;
  p.tag = i;
  Pt q = p;
  q.x += q.y;
  float arr[8];
  for (int j = 0; j < 8; ++j) arr[j] = (float)j * p.x;
  float s = 0.0f;
  for (int j = 7; j >= 0; --j) s += arr[j];
  out[i] = (uint)(s + q.x) + (uint)q.tag;
}
)CL");
}

TEST(VmDiff, CorpusVectorsAndSwizzles) {
  diff_corpus_kernel("swizzles", R"CL(
__kernel void k(__global uint* out, __global const uint* in) {
  int i = get_global_id(0);
  float4 v = (float4)((float)(in[i] & 7u), 2.0f, 3.0f, 4.0f);
  float4 w = (float4)(1.5f);
  float tmpx = v.x;
  v.x = v.y;
  v.y = tmpx;
  v.w = dot(v, w);
  float2 t = v.xz;
  int4 m = (int4)(1, 2, 3, 4);
  m.z += (int)v.x;
  out[i] = (uint)(v.x + v.y + v.z + v.w + t.x + t.y) + (uint)(m.x + m.z);
}
)CL");
}

TEST(VmDiff, CorpusUserFunctionsAndConversions) {
  diff_corpus_kernel("user-funcs", R"CL(
int twice(int v) { return v * 2; }
float mix2(float a, float b) { return a * 0.25f + b * 0.75f; }
__kernel void k(__global uint* out, __global const uint* in) {
  int i = get_global_id(0);
  char c = (char)in[i];
  short s = (short)(in[i] >> 4);
  uchar uc = (uchar)(c + 7);
  float f = mix2((float)c, (float)s);
  out[i] = (uint)twice((int)uc) + (uint)(int)f + (uint)(s * c);
}
)CL");
}

// ---------------------------------------------------------------------------
// runtime-fault parity
// ---------------------------------------------------------------------------

TEST(VmDiff, RuntimeFaultsProduceIdenticalErrors) {
  struct Case {
    const char* tag;
    const char* src;
  } kCases[] = {
      {"div-by-zero", R"CL(
__kernel void k(__global int* out, __global const int* a) {
  int i = get_global_id(0);
  out[i] = a[i] / (a[i] - a[i]);
}
)CL"},
      {"missing-return", R"CL(
int f(int v) { if (v > 100000) return v; }
__kernel void k(__global int* out, __global const int* a) {
  int i = get_global_id(0);
  out[i] = f(a[i]);
}
)CL"},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.tag);
    clc::CompileResult res = clc::compile(c.src);
    ASSERT_TRUE(res.ok()) << res.diag.to_string();
    const clc::FuncDecl* fn = res.module->find_func("k");
    ASSERT_NE(fn, nullptr);
    auto run = [&](clc::ExecEngine engine) {
      std::vector<std::int32_t> out(16, 0), a(16, 3);
      std::vector<clc::KernelArg> args(2);
      args[0].k = clc::KernelArg::K::GlobalPtr;
      args[0].ptr = out.data();
      args[1].k = clc::KernelArg::K::GlobalPtr;
      args[1].ptr = a.data();
      clc::NDRange nd;
      nd.dim = 1;
      nd.global[0] = 16;
      nd.local[0] = 4;
      clc::LaunchOptions opts;
      opts.engine = engine;
      return clc::execute_ndrange(*res.module, *fn, args, nd, opts);
    };
    const clc::LaunchResult ri = run(clc::ExecEngine::Interp);
    const clc::LaunchResult rv = run(clc::ExecEngine::Vm);
    EXPECT_FALSE(ri.ok);
    EXPECT_FALSE(rv.ok);
    EXPECT_EQ(ri.error, rv.error);
  }
}

// ---------------------------------------------------------------------------
// stats: engine dispatch counters + the stats_json "clc" section
// ---------------------------------------------------------------------------

TEST(VmDiff, ExecStatsAndStatsJsonClcSection) {
  clc::reset_exec_stats();
  const Fig4Kernel& k = workloads::fig4_kernels().front();  // VectorAdd
  clc::CompileResult res = clc::compile(k.source);
  ASSERT_TRUE(res.ok());
  const clc::FuncDecl* fn = res.module->find_func(k.kernel);
  ASSERT_NE(fn, nullptr);
  const std::size_t items = k.global[0];

  Fig4Launch lv = workloads::make_fig4_launch(k);
  ASSERT_TRUE(run_engine(*res.module, *fn, lv, clc::ExecEngine::Vm).ok);
  Fig4Launch li = workloads::make_fig4_launch(k);
  ASSERT_TRUE(run_engine(*res.module, *fn, li, clc::ExecEngine::Interp).ok);

  const clc::ExecStats es = clc::exec_stats();
  EXPECT_EQ(es.vm_launches, 1u);
  EXPECT_EQ(es.interp_launches, 1u);
  EXPECT_EQ(es.vm_items, items);
  EXPECT_EQ(es.interp_items, items);

  const std::string js = checl::stats_json();
  EXPECT_NE(js.find("\"clc\": {"), std::string::npos) << js;
  EXPECT_NE(js.find("\"vm_launches\": 1"), std::string::npos) << js;
  EXPECT_NE(js.find("\"interp_launches\": 1"), std::string::npos) << js;
  EXPECT_NE(js.find("\"cache_hits\""), std::string::npos) << js;
  EXPECT_NE(js.find("\"cache_poisoned\""), std::string::npos) << js;
}

}  // namespace
