// limitations_test.cpp — the Section IV-D limitations, reproduced as
// documented behaviors: handles inside user structs are not converted,
// callbacks are ignored, clCreateProgramWithBinary relies on the address
// heuristic, and CL_MEM_USE_HOST_PTR works but pays redundant transfers.
#include <gtest/gtest.h>

#include "checl/checl.h"
#include "checl/cl.h"
#include "checl/cl_ext.h"

namespace {

class LimitationsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& rt = checl::CheclRuntime::instance();
    rt.reset_all();
    checl::NodeConfig node = checl::dual_node();
    node.transport = proxy::Transport::Thread;
    rt.set_node(node);
    checl::bind_checl();
    clGetPlatformIDs(1, &platform_, nullptr);
    clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device_, nullptr);
    cl_int err = CL_SUCCESS;
    ctx_ = clCreateContext(nullptr, 1, &device_, nullptr, nullptr, &err);
    queue_ = clCreateCommandQueue(ctx_, device_, 0, &err);
  }
  void TearDown() override {
    if (queue_ != nullptr) clReleaseCommandQueue(queue_);
    if (ctx_ != nullptr) clReleaseContext(ctx_);
    checl::CheclRuntime::instance().reset_all();
    checl::bind_native();
  }

  cl_platform_id platform_ = nullptr;
  cl_device_id device_ = nullptr;
  cl_context ctx_ = nullptr;
  cl_command_queue queue_ = nullptr;
};

// "if a user-defined structure including CheCL handles is given to
// clSetKernelArg as an argument, CheCL overlooks the handles in the
// structure" — the struct goes through as raw bytes, so the embedded handle
// is a CheCL pointer the device-side cannot use.
TEST_F(LimitationsTest, HandleInsideStructIsNotConverted) {
  const char* src = R"CL(
typedef struct { int n; __global float* data; } Box;
__kernel void k(Box box, __global float* out) {
  out[0] = (float)box.n;
}
)CL";
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &src, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(p, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  cl_kernel k = clCreateKernel(p, "k", &err);
  ASSERT_EQ(err, CL_SUCCESS);

  cl_mem data = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 64, nullptr, &err);
  cl_mem out = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 64, nullptr, &err);
  struct Box {
    std::int32_t n;
    cl_mem data;  // a CheCL handle hiding inside a by-value struct
  };
  Box box{7, data};
  // accepted: CheCL cannot see inside
  ASSERT_EQ(clSetKernelArg(k, 0, sizeof box, &box), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(k, 1, sizeof out, &out), CL_SUCCESS);
  // the recorded arg is Bytes — the handle inside was NOT converted
  auto* ko = checl::as_checl<checl::KernelObj>(k);
  ASSERT_NE(ko, nullptr);
  EXPECT_EQ(ko->args[0].kind, checl::KernelObj::ArgRec::Kind::Bytes);
  EXPECT_EQ(ko->args[0].mem, nullptr);

  clReleaseKernel(k);
  clReleaseProgram(p);
  clReleaseMemObject(data);
  clReleaseMemObject(out);
}

// "CheCL does not currently support callback functions ... CheCL just
// ignores those callback functions."
TEST_F(LimitationsTest, BuildCallbackIgnoredNotInvoked) {
  static bool called = false;
  called = false;
  const char* src = "__kernel void k(__global int* d) { d[0] = 1; }";
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &src, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  auto notify = [](cl_program, void*) { called = true; };
  ASSERT_EQ(clBuildProgram(p, 1, &device_, "", notify, nullptr), CL_SUCCESS);
  EXPECT_FALSE(called);  // ignored, as documented
  clReleaseProgram(p);
}

// The address heuristic can misfire: a by-value argument whose bits happen to
// equal a live CheCL handle address is converted as if it were a handle.
// This documents the risk the paper describes.
TEST_F(LimitationsTest, AddressHeuristicFalsePositiveIsPossible) {
  const char* src =
      "__kernel void k(__global float* buf, ulong id) { buf[0] = (float)id; }";
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &src, nullptr, &err);
  ASSERT_EQ(clBuildProgram(p, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  // extract + reimport as binary: signatures lost, heuristic active
  std::size_t bin_size = 0;
  clGetProgramInfo(p, CL_PROGRAM_BINARY_SIZES, sizeof bin_size, &bin_size, nullptr);
  std::vector<unsigned char> bin(bin_size);
  unsigned char* ptrs[1] = {bin.data()};
  clGetProgramInfo(p, CL_PROGRAM_BINARIES, sizeof ptrs, ptrs, nullptr);
  const unsigned char* cptr = bin.data();
  cl_program pb = clCreateProgramWithBinary(ctx_, 1, &device_, &bin_size, &cptr,
                                            nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(pb, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  cl_kernel k = clCreateKernel(pb, "k", &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem buf = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 64, nullptr, &err);

  // a ulong argument that accidentally equals the buffer's handle value
  const std::uint64_t accidental = reinterpret_cast<std::uintptr_t>(buf);
  ASSERT_EQ(clSetKernelArg(k, 1, sizeof accidental, &accidental), CL_SUCCESS);
  auto* ko = checl::as_checl<checl::KernelObj>(k);
  // misclassified as a Mem binding — the documented false positive
  EXPECT_EQ(ko->args[1].kind, checl::KernelObj::ArgRec::Kind::Mem);

  clReleaseKernel(k);
  clReleaseProgram(pb);
  clReleaseProgram(p);
  clReleaseMemObject(buf);
}

// "CL_MEM_USE_HOST_PTR ... is available even in the current implementation of
// CheCL, but usually causes severe performance degradation" — correctness
// holds, and the redundant per-launch transfers are visible in virtual time.
TEST_F(LimitationsTest, UseHostPtrWorksButPaysRedundantTransfers) {
  const char* src =
      "__kernel void inc(__global int* d) { d[get_global_id(0)] += 1; }";
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &src, nullptr, &err);
  ASSERT_EQ(clBuildProgram(p, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  cl_kernel k = clCreateKernel(p, "inc", &err);

  const std::size_t n = 1 << 14;
  std::vector<std::int32_t> cached(n, 100);
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE | CL_MEM_USE_HOST_PTR,
                            n * 4, cached.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(k, 0, sizeof m, &m), CL_SUCCESS);

  cl_ulong t0 = 0;
  clSimGetHostTimeNS(&t0);
  const std::size_t g = n;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, k, 1, nullptr, &g, nullptr, 0, nullptr,
                                   nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clFinish(queue_), CL_SUCCESS);
  cl_ulong t_hostptr = 0;
  clSimGetHostTimeNS(&t_hostptr);

  // correctness: the host cache reflects the kernel's writes with no read
  for (const std::int32_t v : cached) ASSERT_EQ(v, 101);

  // cost: the same kernel on a normal buffer is cheaper per launch
  cl_mem plain = clCreateBuffer(ctx_, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                                n * 4, cached.data(), &err);
  ASSERT_EQ(clSetKernelArg(k, 0, sizeof plain, &plain), CL_SUCCESS);
  cl_ulong t1 = 0;
  clSimGetHostTimeNS(&t1);
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, k, 1, nullptr, &g, nullptr, 0, nullptr,
                                   nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clFinish(queue_), CL_SUCCESS);
  cl_ulong t_plain = 0;
  clSimGetHostTimeNS(&t_plain);

  // the USE_HOST_PTR launch pays for the extra host<->device round trip on
  // top of the identical kernel cost: two more RPCs plus 2*n*4 bytes of
  // redundant transfer (~86 us at this size); require a solid margin
  EXPECT_GT(t_hostptr - t0, (t_plain - t1) + 50'000)
      << "USE_HOST_PTR should pay for the redundant copies";

  clReleaseKernel(k);
  clReleaseProgram(p);
  clReleaseMemObject(m);
  clReleaseMemObject(plain);
}

// Restoring a binary-created program works on the same node (our "binary"
// format is portable in-sim), but stays flagged deprecated.
TEST_F(LimitationsTest, BinaryProgramSurvivesRestartOnSameNode) {
  const char* src = "__kernel void five(__global int* d) { d[0] = 5; }";
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(ctx_, 1, &src, nullptr, &err);
  ASSERT_EQ(clBuildProgram(p, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  std::size_t bin_size = 0;
  clGetProgramInfo(p, CL_PROGRAM_BINARY_SIZES, sizeof bin_size, &bin_size, nullptr);
  std::vector<unsigned char> bin(bin_size);
  unsigned char* ptrs[1] = {bin.data()};
  clGetProgramInfo(p, CL_PROGRAM_BINARIES, sizeof ptrs, ptrs, nullptr);
  clReleaseProgram(p);
  const unsigned char* cptr = bin.data();
  cl_program pb = clCreateProgramWithBinary(ctx_, 1, &device_, &bin_size, &cptr,
                                            nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(pb, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
  cl_kernel k = clCreateKernel(pb, "five", &err);
  cl_mem m = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 64, nullptr, &err);
  clSetKernelArg(k, 0, sizeof m, &m);

  auto& rt = checl::CheclRuntime::instance();
  ASSERT_EQ(rt.engine().checkpoint("/tmp/checl_limit_bin.ckpt", nullptr),
            CL_SUCCESS);
  ASSERT_EQ(rt.engine().restart_in_place("/tmp/checl_limit_bin.ckpt",
                                         std::nullopt, nullptr),
            CL_SUCCESS);
  // the binary-created kernel still launches after restart
  const std::size_t g = 1;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, k, 1, nullptr, &g, nullptr, 0, nullptr,
                                   nullptr),
            CL_SUCCESS);
  std::int32_t out = 0;
  ASSERT_EQ(clEnqueueReadBuffer(queue_, m, CL_TRUE, 0, 4, &out, 0, nullptr,
                                nullptr),
            CL_SUCCESS);
  EXPECT_EQ(out, 5);

  clReleaseKernel(k);
  clReleaseProgram(pb);
  clReleaseMemObject(m);
}

}  // namespace
