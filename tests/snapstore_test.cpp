// snapstore_test.cpp — codecs, the content-addressed store, dedup/GC
// accounting, and fault injection (corrupt/truncated/missing files must come
// back as typed errors, never partial snapshots or crashes).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <random>

#include "chaoskit/chaoskit.h"
#include "slimcr/storage.h"
#include "snapstore/chunk.h"
#include "snapstore/codec.h"
#include "snapstore/store.h"

namespace fs = std::filesystem;
using snapstore::ChunkKey;
using snapstore::CodecId;
using snapstore::ErrKind;
using snapstore::Store;

namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

std::vector<std::uint8_t> patterned_bytes(std::size_t n, std::uint32_t seed) {
  // Repetitive but not constant: compressible by both RLE and LZ.
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>((i / 64 + seed) % 7);
  return v;
}

void roundtrip(CodecId id, const std::vector<std::uint8_t>& data) {
  const snapstore::Codec* c = snapstore::codec_for(id);
  ASSERT_NE(c, nullptr);
  const std::vector<std::uint8_t> enc = c->compress(data);
  std::vector<std::uint8_t> dec;
  ASSERT_TRUE(c->decompress(enc, data.size(), dec))
      << snapstore::codec_name(id) << " n=" << data.size();
  EXPECT_EQ(dec, data);
}

// ---------------------------------------------------------------------------
// codecs
// ---------------------------------------------------------------------------

TEST(SnapstoreCodec, RoundTripsAllShapes) {
  const std::vector<std::vector<std::uint8_t>> inputs = {
      {},                                  // empty
      {42},                                // single byte
      std::vector<std::uint8_t>(4096, 0),  // all-zero
      random_bytes(4096, 1),               // incompressible
      patterned_bytes(4096, 2),            // compressible
      random_bytes(3, 3),                  // below LZ min-match
      patterned_bytes(70000, 4),           // beyond the 64 KiB LZ window
  };
  for (const CodecId id : {CodecId::Identity, CodecId::Rle, CodecId::Lz}) {
    for (const auto& in : inputs) roundtrip(id, in);
  }
}

TEST(SnapstoreCodec, CompressesRepetitiveData) {
  const auto data = patterned_bytes(64 * 1024, 0);
  for (const CodecId id : {CodecId::Rle, CodecId::Lz}) {
    const auto enc = snapstore::codec_for(id)->compress(data);
    EXPECT_LT(enc.size(), data.size() / 4) << snapstore::codec_name(id);
  }
}

TEST(SnapstoreCodec, DecodersRejectMalformedInput) {
  // Truncated streams, wrong raw_len, and random garbage must fail cleanly.
  const auto data = patterned_bytes(4096, 5);
  for (const CodecId id : {CodecId::Rle, CodecId::Lz}) {
    const snapstore::Codec* c = snapstore::codec_for(id);
    const auto enc = c->compress(data);
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(c->decompress({enc.data(), enc.size() / 2}, data.size(), out));
    EXPECT_FALSE(c->decompress(enc, data.size() - 1, out));
    EXPECT_FALSE(c->decompress(enc, data.size() + 1, out));
    for (std::uint32_t seed = 0; seed < 8; ++seed) {
      const auto garbage = random_bytes(256, 100 + seed);
      (void)c->decompress(garbage, 4096, out);  // must not crash or overrun
    }
  }
}

TEST(SnapstoreCodec, ParseAndNames) {
  CodecId id;
  EXPECT_TRUE(snapstore::parse_codec("lz", id));
  EXPECT_EQ(id, CodecId::Lz);
  EXPECT_TRUE(snapstore::parse_codec("rle", id));
  EXPECT_TRUE(snapstore::parse_codec("identity", id));
  EXPECT_FALSE(snapstore::parse_codec("zstd", id));
  EXPECT_STREQ(snapstore::codec_name(CodecId::Lz), "lz");
  EXPECT_EQ(snapstore::codec_for(static_cast<CodecId>(99)), nullptr);
}

TEST(SnapstoreChunk, HashIsStableAndLengthAware) {
  const auto a = random_bytes(1024, 7);
  EXPECT_EQ(snapstore::hash64(a.data(), a.size()),
            snapstore::hash64(a.data(), a.size()));
  const ChunkKey k1{snapstore::hash64(a.data(), a.size()), a.size(), 0};
  const ChunkKey k2{snapstore::hash64(a.data(), a.size() - 1), a.size() - 1, 0};
  EXPECT_FALSE(k1 == k2);
}

// ---------------------------------------------------------------------------
// store
// ---------------------------------------------------------------------------

class SnapstoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = "/tmp/checl_snapstore_test";
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static slimcr::Snapshot make_snapshot(std::uint32_t seed, std::size_t nbufs,
                                        std::size_t bytes) {
    slimcr::Snapshot s;
    for (std::size_t i = 0; i < nbufs; ++i) {
      // half patterned, half random — realistic mixed compressibility
      auto data = (i % 2 == 0)
                      ? patterned_bytes(bytes, seed + static_cast<std::uint32_t>(i))
                      : random_bytes(bytes, seed + static_cast<std::uint32_t>(i));
      s.set("mem." + std::to_string(i), std::move(data));
    }
    return s;
  }

  static void expect_equal(const slimcr::Snapshot& a, const slimcr::Snapshot& b) {
    ASSERT_EQ(a.section_count(), b.section_count());
    for (const auto& [name, data] : a.sections()) {
      const auto* other = b.get(name);
      ASSERT_NE(other, nullptr) << name;
      EXPECT_EQ(*other, data) << name;
    }
  }

  // One chunk file under root/chunks (by index, sorted for determinism).
  std::vector<fs::path> chunk_files() const {
    std::vector<fs::path> v;
    for (const auto& e : fs::directory_iterator(root_ + "/chunks"))
      v.push_back(e.path());
    std::sort(v.begin(), v.end());
    return v;
  }

  std::string root_;
  slimcr::StorageModel disk_ = slimcr::local_disk();
};

TEST_F(SnapstoreTest, PutGetRoundTripBitExact) {
  Store st;
  ASSERT_TRUE(st.open(root_).ok());
  const slimcr::Snapshot snap = make_snapshot(1, 8, 96 * 1024);
  const snapstore::PutResult pr = st.put("ckpt_a", snap, disk_);
  ASSERT_TRUE(pr.status.ok()) << pr.status.message;
  EXPECT_EQ(pr.raw_bytes, snap.payload_bytes() - [&] {
    std::uint64_t names = 0;
    for (const auto& [n, d] : snap.sections()) names += n.size();
    return names;
  }());
  EXPECT_GT(pr.new_chunks, 0u);
  EXPECT_GT(pr.duration_ns, 0u);

  slimcr::Snapshot back;
  const snapstore::GetResult gr = st.get("ckpt_a", back, disk_);
  ASSERT_TRUE(gr.status.ok()) << gr.status.message;
  expect_equal(snap, back);
}

TEST_F(SnapstoreTest, DedupTwoCheckpointsShareCleanChunks) {
  Store st;
  ASSERT_TRUE(st.open(root_).ok());
  slimcr::Snapshot snap = make_snapshot(2, 10, 64 * 1024);
  const snapstore::PutResult p1 = st.put("ckpt_a", snap, disk_);
  ASSERT_TRUE(p1.status.ok());

  // Dirty exactly one buffer; the other nine must dedup wholesale.
  snap.set("mem.3", random_bytes(64 * 1024, 999));
  const snapstore::PutResult p2 = st.put("ckpt_b", snap, disk_);
  ASSERT_TRUE(p2.status.ok());
  EXPECT_EQ(p2.new_chunks, 1u);  // 64 KiB buffer = one 64 KiB chunk
  EXPECT_GE(p2.dedup_hits, 9u);
  // Second checkpoint's storage charge is a small fraction of the first.
  EXPECT_LT(p2.stored_bytes, p1.stored_bytes / 4);

  const snapstore::Stats& s = st.stats();
  EXPECT_EQ(s.manifests, 2u);
  // Pool bytes grew only by the one new chunk, not by another full snapshot.
  EXPECT_LT(s.pool_stored_bytes, p1.stored_bytes + 2 * 64 * 1024);

  // Both restore bit-exact.
  slimcr::Snapshot back_b;
  ASSERT_TRUE(st.get("ckpt_b", back_b, disk_).status.ok());
  expect_equal(snap, back_b);

  // GC of the first must not break the second (shared chunks keep refs).
  ASSERT_TRUE(st.remove("ckpt_a").ok());
  slimcr::Snapshot back_b2;
  ASSERT_TRUE(st.get("ckpt_b", back_b2, disk_).status.ok());
  expect_equal(snap, back_b2);

  // Removing the last manifest empties the pool completely.
  ASSERT_TRUE(st.remove("ckpt_b").ok());
  EXPECT_EQ(st.stats().chunks_in_pool, 0u);
  EXPECT_EQ(st.stats().pool_stored_bytes, 0u);
  EXPECT_TRUE(fs::is_empty(root_ + "/chunks"));
}

TEST_F(SnapstoreTest, OverwriteSameNameDedupsAgainstOldVersion) {
  Store st;
  ASSERT_TRUE(st.open(root_).ok());
  slimcr::Snapshot snap = make_snapshot(3, 6, 64 * 1024);
  ASSERT_TRUE(st.put("ckpt", snap, disk_).status.ok());
  snap.set("mem.0", random_bytes(64 * 1024, 777));
  const snapstore::PutResult p2 = st.put("ckpt", snap, disk_);
  ASSERT_TRUE(p2.status.ok());
  EXPECT_EQ(p2.new_chunks, 1u);
  EXPECT_EQ(st.stats().manifests, 1u);
  slimcr::Snapshot back;
  ASSERT_TRUE(st.get("ckpt", back, disk_).status.ok());
  expect_equal(snap, back);
  // The replaced version's now-unreferenced chunk was collected.
  ASSERT_TRUE(st.remove("ckpt").ok());
  EXPECT_EQ(st.stats().chunks_in_pool, 0u);
}

TEST_F(SnapstoreTest, DedupOffWritesEveryChunk) {
  Store st;
  snapstore::Options opt;
  opt.dedup = false;
  opt.codec = CodecId::Identity;
  ASSERT_TRUE(st.open(root_, opt).ok());
  const slimcr::Snapshot snap = make_snapshot(4, 4, 64 * 1024);
  const snapstore::PutResult p1 = st.put("a", snap, disk_);
  const snapstore::PutResult p2 = st.put("b", snap, disk_);
  ASSERT_TRUE(p1.status.ok());
  ASSERT_TRUE(p2.status.ok());
  EXPECT_EQ(p2.dedup_hits, 0u);
  EXPECT_EQ(p2.new_chunks, p1.new_chunks);
  // Identical content, but stored twice — that's the ablation's point.
  EXPECT_EQ(st.stats().chunks_in_pool, p1.new_chunks + p2.new_chunks);
  slimcr::Snapshot back;
  ASSERT_TRUE(st.get("b", back, disk_).status.ok());
  expect_equal(snap, back);
}

TEST_F(SnapstoreTest, AsyncAndSyncProduceIdenticalPools) {
  const slimcr::Snapshot snap = make_snapshot(5, 8, 80 * 1024);
  std::vector<std::uint64_t> stored;
  for (const bool async : {false, true}) {
    fs::remove_all(root_);
    Store st;
    snapstore::Options opt;
    opt.async = async;
    opt.workers = async ? 4 : 0;
    ASSERT_TRUE(st.open(root_, opt).ok());
    const snapstore::PutResult pr = st.put("ckpt", snap, disk_);
    ASSERT_TRUE(pr.status.ok());
    stored.push_back(pr.stored_bytes);
    slimcr::Snapshot back;
    ASSERT_TRUE(st.get("ckpt", back, disk_).status.ok());
    expect_equal(snap, back);
  }
  // The pipeline is a wall-clock optimization; bytes and sim time are
  // deterministic regardless of threading.
  EXPECT_EQ(stored[0], stored[1]);
}

TEST_F(SnapstoreTest, ReopenRebuildsRefcounts) {
  slimcr::Snapshot snap = make_snapshot(6, 5, 64 * 1024);
  {
    Store st;
    ASSERT_TRUE(st.open(root_).ok());
    ASSERT_TRUE(st.put("a", snap, disk_).status.ok());
    snap.set("mem.1", random_bytes(64 * 1024, 42));
    ASSERT_TRUE(st.put("b", snap, disk_).status.ok());
  }
  Store st;
  ASSERT_TRUE(st.open(root_).ok());
  EXPECT_EQ(st.stats().manifests, 2u);
  EXPECT_GT(st.stats().chunks_in_pool, 0u);
  EXPECT_GT(st.stats().pool_stored_bytes, 0u);
  // Refcounts were rebuilt: GC of 'a' keeps 'b' whole, GC of both drains.
  ASSERT_TRUE(st.remove("a").ok());
  slimcr::Snapshot back;
  ASSERT_TRUE(st.get("b", back, disk_).status.ok());
  expect_equal(snap, back);
  ASSERT_TRUE(st.remove("b").ok());
  EXPECT_EQ(st.stats().chunks_in_pool, 0u);
}

TEST_F(SnapstoreTest, RefcountGcPropertySurvivesRandomInterleavings) {
  // Property test over the refcount GC, seeded with the same SplitMix64
  // generator the chaos harness uses: any interleaving of put / overwrite /
  // remove / reopen must keep every *live* manifest bit-exact readable, and
  // removing the last manifest must drain the chunk pool completely.
  //
  // Section data is drawn from a tiny seed space on purpose: most chunks are
  // shared by several manifests, so a GC that retires a reference too early
  // (or loses one across reopen) breaks a surviving manifest's get().
  chaoskit::Prng rng(20260805);
  auto st = std::make_unique<Store>();
  ASSERT_TRUE(st->open(root_).ok());

  std::map<std::string, slimcr::Snapshot> live;  // the model
  const std::array<const char*, 5> names = {"m0", "m1", "m2", "m3", "m4"};

  for (int step = 0; step < 90; ++step) {
    const std::uint64_t op = rng.below(10);
    if (op < 5) {
      // put or overwrite, drawing content from 4 seeds for heavy dedup
      const char* name = names[rng.below(names.size())];
      slimcr::Snapshot snap =
          make_snapshot(static_cast<std::uint32_t>(rng.below(4)),
                        1 + rng.below(3), 16 * 1024);
      ASSERT_TRUE(st->put(name, snap, disk_).status.ok()) << "step " << step;
      live[name] = std::move(snap);
    } else if (op < 8) {
      if (!live.empty()) {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.below(live.size())));
        ASSERT_TRUE(st->remove(it->first).ok())
            << "step " << step << " removing " << it->first;
        live.erase(it);
      }
    } else if (op == 8) {
      // removing a name that was never put (or is already gone) must be a
      // typed error and must not disturb anything live
      EXPECT_FALSE(st->remove("never_put").ok());
    } else {
      // reopen: refcounts are rebuilt by scanning manifests on disk
      st = std::make_unique<Store>();
      ASSERT_TRUE(st->open(root_).ok()) << "step " << step;
      ASSERT_EQ(st->stats().manifests, live.size()) << "step " << step;
    }

    // The property: every live manifest stays fully readable.
    ASSERT_EQ(st->manifest_names().size(), live.size()) << "step " << step;
    for (const auto& [name, expected] : live) {
      ASSERT_TRUE(st->contains(name)) << "step " << step << " " << name;
      slimcr::Snapshot back;
      ASSERT_TRUE(st->get(name, back, disk_).status.ok())
          << "step " << step << ": live manifest " << name
          << " unreadable (GC retired a chunk still in use?)";
      expect_equal(expected, back);
    }
  }

  // Drain: once the last manifest is gone the pool must be empty — a
  // refcount leaked anywhere above would leave an orphaned chunk here.
  for (const auto& [name, snap] : live) ASSERT_TRUE(st->remove(name).ok());
  EXPECT_EQ(st->stats().chunks_in_pool, 0u);
  EXPECT_TRUE(st->manifest_names().empty());
  EXPECT_TRUE(chunk_files().empty());
}

TEST_F(SnapstoreTest, SimClockChargesOnlyNewBytes) {
  Store st;
  ASSERT_TRUE(st.open(root_).ok());
  slimcr::Snapshot snap = make_snapshot(7, 10, 64 * 1024);
  const snapstore::PutResult p1 = st.put("a", snap, disk_);
  snap.set("mem.2", random_bytes(64 * 1024, 4242));
  const snapstore::PutResult p2 = st.put("b", snap, disk_);
  ASSERT_TRUE(p1.status.ok());
  ASSERT_TRUE(p2.status.ok());
  // The deduped checkpoint's simulated write time shrinks with its bytes.
  EXPECT_LT(p2.duration_ns, p1.duration_ns / 2);
  EXPECT_EQ(p2.duration_ns, disk_.write_ns(p2.stored_bytes));
}

// ---------------------------------------------------------------------------
// fault injection
// ---------------------------------------------------------------------------

class SnapstoreFaultTest : public SnapstoreTest {
 protected:
  // Populates the store with one snapshot and returns it.
  slimcr::Snapshot populate(Store& st) {
    slimcr::Snapshot snap = make_snapshot(8, 4, 48 * 1024);
    EXPECT_TRUE(st.open(root_).ok());
    EXPECT_TRUE(st.put("ckpt", snap, disk_).status.ok());
    return snap;
  }

  static void flip_byte(const fs::path& p, std::size_t offset_from_end) {
    std::FILE* f = std::fopen(p.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -static_cast<long>(offset_from_end), SEEK_END);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }

  static void truncate_file(const fs::path& p, std::uintmax_t new_size) {
    fs::resize_file(p, new_size);
  }

  // `out` must stay exactly as seeded after a failed get.
  static void expect_untouched(Store& st, ErrKind want) {
    slimcr::Snapshot out;
    out.set("sentinel", {1, 2, 3});
    slimcr::StorageModel disk = slimcr::local_disk();
    const snapstore::GetResult gr = st.get("ckpt", out, disk);
    EXPECT_FALSE(gr.status.ok());
    EXPECT_EQ(gr.status.kind, want)
        << "got: " << snapstore::errkind_name(gr.status.kind) << " — "
        << gr.status.message;
    ASSERT_EQ(out.section_count(), 1u);
    EXPECT_NE(out.get("sentinel"), nullptr);
  }
};

TEST_F(SnapstoreFaultTest, MissingChunkIsTypedAndNamed) {
  Store st;
  populate(st);
  const auto victim = chunk_files().front();
  fs::remove(victim);
  slimcr::Snapshot out;
  const snapstore::GetResult gr = st.get("ckpt", out, disk_);
  EXPECT_EQ(gr.status.kind, ErrKind::MissingChunk);
  // The diagnostic names both the chunk file and the manifest.
  EXPECT_NE(gr.status.message.find(victim.filename().string()),
            std::string::npos)
      << gr.status.message;
  EXPECT_NE(gr.status.message.find("ckpt"), std::string::npos);
  EXPECT_EQ(out.section_count(), 0u);
}

TEST_F(SnapstoreFaultTest, CorruptChunkBodyDetected) {
  Store st;
  populate(st);
  flip_byte(chunk_files().front(), 1);  // last payload byte
  expect_untouched(st, ErrKind::Corrupt);
}

TEST_F(SnapstoreFaultTest, CorruptChunkHeaderDetected) {
  Store st;
  populate(st);
  const auto victim = chunk_files().front();
  std::FILE* f = std::fopen(victim.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fputc('X', f);  // clobber the magic
  std::fclose(f);
  expect_untouched(st, ErrKind::BadMagic);
}

TEST_F(SnapstoreFaultTest, TruncatedChunkDetected) {
  Store st;
  populate(st);
  const auto victim = chunk_files().front();
  truncate_file(victim, fs::file_size(victim) / 2);
  expect_untouched(st, ErrKind::Truncated);
}

TEST_F(SnapstoreFaultTest, CorruptManifestDetected) {
  Store st;
  populate(st);
  flip_byte(root_ + "/manifests/ckpt.manifest", 10);
  expect_untouched(st, ErrKind::Corrupt);
}

TEST_F(SnapstoreFaultTest, TruncatedManifestDetected) {
  Store st;
  populate(st);
  const fs::path mp = root_ + "/manifests/ckpt.manifest";
  truncate_file(mp, fs::file_size(mp) / 2);
  slimcr::Snapshot out;
  const snapstore::GetResult gr = st.get("ckpt", out, disk_);
  EXPECT_FALSE(gr.status.ok());
  // Either the CRC no longer matches (Corrupt) or the structure ends early.
  EXPECT_TRUE(gr.status.kind == ErrKind::Corrupt ||
              gr.status.kind == ErrKind::Truncated)
      << snapstore::errkind_name(gr.status.kind);
  EXPECT_EQ(out.section_count(), 0u);
}

TEST_F(SnapstoreFaultTest, MissingManifestIsTyped) {
  Store st;
  ASSERT_TRUE(st.open(root_).ok());
  slimcr::Snapshot out;
  const snapstore::GetResult gr = st.get("nope", out, disk_);
  EXPECT_EQ(gr.status.kind, ErrKind::MissingManifest);
  EXPECT_NE(gr.status.message.find("nope"), std::string::npos);
  EXPECT_FALSE(st.remove("nope").ok());
}

}  // namespace
