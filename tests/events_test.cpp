// events_test.cpp — event semantics across queues on the virtual timeline:
// wait lists order commands between queues, timelines overlap, markers chain,
// and the whole simulation is deterministic run-to-run.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "checl/checl.h"
#include "checl/cl.h"
#include "checl/cl_ext.h"
#include "core/object_db.h"
#include "core/runtime.h"
#include "simcl/runtime.h"

namespace {

const char* kBurnSrc = R"CL(
__kernel void burn(__global float* d, int iters) {
  int i = get_global_id(0);
  float a = d[i];
  for (int it = 0; it < iters; it = it + 1) a = mad(a, 1.0001f, 0.5f);
  d[i] = a;
}
)CL";

class EventsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    checl::bind_native();
    simcl::Runtime::instance().configure(simcl::default_platforms());
    simcl::Runtime::instance().clock().reset();
    ASSERT_EQ(clGetPlatformIDs(1, &platform_, nullptr), CL_SUCCESS);
    ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device_, nullptr),
              CL_SUCCESS);
    cl_int err = CL_SUCCESS;
    ctx_ = clCreateContext(nullptr, 1, &device_, nullptr, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    q1_ = clCreateCommandQueue(ctx_, device_, CL_QUEUE_PROFILING_ENABLE, &err);
    q2_ = clCreateCommandQueue(ctx_, device_, CL_QUEUE_PROFILING_ENABLE, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    cl_program p = clCreateProgramWithSource(ctx_, 1, &kBurnSrc, nullptr, &err);
    ASSERT_EQ(clBuildProgram(p, 1, &device_, "", nullptr, nullptr), CL_SUCCESS);
    kernel_ = clCreateKernel(p, "burn", &err);
    clReleaseProgram(p);
    buf_ = clCreateBuffer(ctx_, CL_MEM_READ_WRITE, 256 * 4, nullptr, &err);
    int iters = 200;
    clSetKernelArg(kernel_, 0, sizeof buf_, &buf_);
    clSetKernelArg(kernel_, 1, sizeof iters, &iters);
  }
  void TearDown() override {
    clReleaseKernel(kernel_);
    clReleaseMemObject(buf_);
    clReleaseCommandQueue(q1_);
    clReleaseCommandQueue(q2_);
    clReleaseContext(ctx_);
  }

  cl_event launch(cl_command_queue q, cl_uint nwait = 0,
                  const cl_event* wait = nullptr) {
    const std::size_t g = 256;
    cl_event ev = nullptr;
    EXPECT_EQ(clEnqueueNDRangeKernel(q, kernel_, 1, nullptr, &g, nullptr, nwait,
                                     wait, &ev),
              CL_SUCCESS);
    return ev;
  }

  static cl_ulong prof(cl_event ev, cl_profiling_info what) {
    cl_ulong v = 0;
    EXPECT_EQ(clGetEventProfilingInfo(ev, what, sizeof v, &v, nullptr), CL_SUCCESS);
    return v;
  }

  cl_platform_id platform_ = nullptr;
  cl_device_id device_ = nullptr;
  cl_context ctx_ = nullptr;
  cl_command_queue q1_ = nullptr;
  cl_command_queue q2_ = nullptr;
  cl_kernel kernel_ = nullptr;
  cl_mem buf_ = nullptr;
};

TEST_F(EventsTest, CrossQueueWaitListOrdersExecution) {
  cl_event e1 = launch(q1_);
  cl_event e2 = launch(q2_, 1, &e1);  // q2's kernel must start after q1's ends
  ASSERT_EQ(clWaitForEvents(1, &e2), CL_SUCCESS);
  EXPECT_GE(prof(e2, CL_PROFILING_COMMAND_START), prof(e1, CL_PROFILING_COMMAND_END));
  clReleaseEvent(e1);
  clReleaseEvent(e2);
}

TEST_F(EventsTest, IndependentQueuesOverlapInVirtualTime) {
  cl_event e1 = launch(q1_);
  cl_event e2 = launch(q2_);  // no dependency: may start before e1 finishes
  cl_event both[2] = {e1, e2};
  ASSERT_EQ(clWaitForEvents(2, both), CL_SUCCESS);
  EXPECT_LT(prof(e2, CL_PROFILING_COMMAND_START), prof(e1, CL_PROFILING_COMMAND_END));
  clReleaseEvent(e1);
  clReleaseEvent(e2);
}

TEST_F(EventsTest, InOrderQueueSerializesItsOwnCommands) {
  cl_event e1 = launch(q1_);
  cl_event e2 = launch(q1_);
  ASSERT_EQ(clFinish(q1_), CL_SUCCESS);
  EXPECT_GE(prof(e2, CL_PROFILING_COMMAND_START), prof(e1, CL_PROFILING_COMMAND_END));
  clReleaseEvent(e1);
  clReleaseEvent(e2);
}

TEST_F(EventsTest, MarkerAfterKernelCompletesAfterIt) {
  cl_event ek = launch(q1_);
  cl_event em = nullptr;
  ASSERT_EQ(clEnqueueMarker(q1_, &em), CL_SUCCESS);
  ASSERT_EQ(clWaitForEvents(1, &em), CL_SUCCESS);
  EXPECT_GE(prof(em, CL_PROFILING_COMMAND_END), prof(ek, CL_PROFILING_COMMAND_END));
  clReleaseEvent(ek);
  clReleaseEvent(em);
}

TEST_F(EventsTest, EnqueueWaitForEventsBlocksQueue) {
  cl_event e1 = launch(q1_);
  ASSERT_EQ(clEnqueueWaitForEvents(q2_, 1, &e1), CL_SUCCESS);
  cl_event e2 = launch(q2_);
  ASSERT_EQ(clWaitForEvents(1, &e2), CL_SUCCESS);
  EXPECT_GE(prof(e2, CL_PROFILING_COMMAND_START), prof(e1, CL_PROFILING_COMMAND_END));
  clReleaseEvent(e1);
  clReleaseEvent(e2);
}

TEST_F(EventsTest, InvalidWaitListRejected) {
  cl_event junk = nullptr;
  const std::size_t g = 256;
  EXPECT_EQ(clEnqueueNDRangeKernel(q1_, kernel_, 1, nullptr, &g, nullptr, 1,
                                   &junk, nullptr),
            CL_INVALID_EVENT_WAIT_LIST);
  EXPECT_EQ(clEnqueueNDRangeKernel(q1_, kernel_, 1, nullptr, &g, nullptr, 1,
                                   nullptr, nullptr),
            CL_INVALID_EVENT_WAIT_LIST);
}

// The whole simulation is deterministic: re-running an identical program
// (fresh clock, fresh queues — queue timelines live with the queue) yields
// bit-identical virtual timestamps.
TEST_F(EventsTest, VirtualTimeIsDeterministic) {
  auto run_once = [&]() -> cl_ulong {
    simcl::Runtime::instance().clock().reset();
    cl_int err = CL_SUCCESS;
    cl_command_queue a = clCreateCommandQueue(ctx_, device_,
                                              CL_QUEUE_PROFILING_ENABLE, &err);
    cl_command_queue b = clCreateCommandQueue(ctx_, device_,
                                              CL_QUEUE_PROFILING_ENABLE, &err);
    cl_event e1 = launch(a);
    cl_event e2 = launch(b, 1, &e1);
    clWaitForEvents(1, &e2);
    const cl_ulong end = prof(e2, CL_PROFILING_COMMAND_END);
    clReleaseEvent(e1);
    clReleaseEvent(e2);
    clReleaseCommandQueue(a);
    clReleaseCommandQueue(b);
    return end;
  };
  const cl_ulong first = run_once();
  const cl_ulong second = run_once();
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// ObjectDB invariants
// ---------------------------------------------------------------------------

TEST(ObjectDb, IdOrderAndAddressSet) {
  checl::ObjectDB db;
  auto* a = new checl::PlatformObj();
  auto* b = new checl::MemObj();
  auto* c = new checl::PlatformObj();
  db.add(a);
  db.add(b);
  db.add(c);
  EXPECT_LT(a->id, b->id);
  EXPECT_LT(b->id, c->id);
  EXPECT_TRUE(db.contains_addr(a));
  EXPECT_TRUE(checl::is_checl_object(b));

  const auto platforms = db.all_of<checl::PlatformObj>();
  ASSERT_EQ(platforms.size(), 2u);
  EXPECT_EQ(platforms[0], a);  // creation order preserved
  EXPECT_EQ(platforms[1], c);

  db.remove(b);
  EXPECT_FALSE(db.contains_addr(b));
  EXPECT_FALSE(checl::is_checl_object(b));
  EXPECT_EQ(db.by_id(b->id), nullptr);
  EXPECT_EQ(db.size(), 2u);

  db.clear();
  EXPECT_EQ(db.size(), 0u);
  EXPECT_FALSE(checl::is_checl_object(a));
  delete a;
  delete b;
  delete c;
}

TEST(ObjectDb, IdsNeverReused) {
  checl::ObjectDB db;
  auto* a = new checl::MemObj();
  db.add(a);
  const std::uint64_t first = a->id;
  db.remove(a);
  auto* b = new checl::MemObj();
  db.add(b);
  EXPECT_GT(b->id, first);
  db.remove(b);
  delete a;
  delete b;
}

// ---------------------------------------------------------------------------
// events across a delayed-mode checkpoint
// ---------------------------------------------------------------------------

TEST(EventsAcrossRestore, DummyEventCompleteAfterDelayedCheckpoint) {
  // Delayed mode defers a requested checkpoint until the app's next sync
  // call; restore then replaces every live event with a dummy marker.  A
  // handle the app kept from *before* the checkpoint must still answer
  // CL_COMPLETE and never block a waiter.
  auto& rt = checl::CheclRuntime::instance();
  rt.reset_all();
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;
  rt.set_node(node);
  checl::bind_checl();
  const char* path = "/tmp/checl_events_delayed.ckpt";

  cl_platform_id plat = nullptr;
  cl_device_id dev = nullptr;
  ASSERT_EQ(clGetPlatformIDs(1, &plat, nullptr), CL_SUCCESS);
  ASSERT_EQ(clGetDeviceIDs(plat, CL_DEVICE_TYPE_GPU, 1, &dev, nullptr),
            CL_SUCCESS);
  cl_int err = CL_SUCCESS;
  cl_context ctx = clCreateContext(nullptr, 1, &dev, nullptr, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_command_queue q = clCreateCommandQueue(ctx, dev, 0, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_program p = clCreateProgramWithSource(ctx, 1, &kBurnSrc, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(p, 1, &dev, "", nullptr, nullptr), CL_SUCCESS);
  cl_kernel k = clCreateKernel(p, "burn", &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem buf = clCreateBuffer(ctx, CL_MEM_READ_WRITE, 256 * 4, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  int iters = 50;
  ASSERT_EQ(clSetKernelArg(k, 0, sizeof buf, &buf), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(k, 1, sizeof iters, &iters), CL_SUCCESS);

  const std::size_t g = 256;
  cl_event ev = nullptr;
  ASSERT_EQ(
      clEnqueueNDRangeKernel(q, k, 1, nullptr, &g, nullptr, 0, nullptr, &ev),
      CL_SUCCESS);
  ASSERT_EQ(clWaitForEvents(1, &ev), CL_SUCCESS);

  // Request while busy-at-the-API-level: the checkpoint must NOT happen on
  // the request itself, only at the next sync point.
  rt.mode = checl::CheckpointMode::Delayed;
  rt.checkpoint_path = path;
  rt.request_checkpoint();
  EXPECT_TRUE(rt.checkpoint_pending());
  ASSERT_EQ(clFinish(q), CL_SUCCESS);  // the sync point: checkpoint fires
  EXPECT_FALSE(rt.checkpoint_pending());

  ASSERT_EQ(rt.engine().restart_in_place(path, std::nullopt, nullptr),
            CL_SUCCESS);

  // The pre-checkpoint handle now denotes a dummy marker: complete, non-blocking.
  cl_int st = -1;
  ASSERT_EQ(clGetEventInfo(ev, CL_EVENT_COMMAND_EXECUTION_STATUS, sizeof st,
                           &st, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(st, CL_COMPLETE);
  ASSERT_EQ(clWaitForEvents(1, &ev), CL_SUCCESS);

  // And the restored graph still does work: new enqueues complete normally.
  cl_event ev2 = nullptr;
  ASSERT_EQ(
      clEnqueueNDRangeKernel(q, k, 1, nullptr, &g, nullptr, 0, nullptr, &ev2),
      CL_SUCCESS);
  ASSERT_EQ(clWaitForEvents(1, &ev2), CL_SUCCESS);

  clReleaseEvent(ev);
  clReleaseEvent(ev2);
  clReleaseKernel(k);
  clReleaseProgram(p);
  clReleaseMemObject(buf);
  clReleaseCommandQueue(q);
  clReleaseContext(ctx);
  rt.reset_all();
  checl::bind_native();
  std::remove(path);
}

}  // namespace
