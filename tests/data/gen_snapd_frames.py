#!/usr/bin/env python3
"""Regenerates the pinned checl_snapd wire-protocol corpus (snapd_v1_frames.bin).

The binary is committed; this script only exists so a reader can see how the
bytes were produced.  If src/snapd/proto.cpp stops round-tripping these frames
that is a PROTOCOL revision breaking live fleets mid-upgrade — it must be
handled with a version bump (kVersion), not by regenerating the corpus.

Frame layout (little-endian, src/snapd/proto.h):
  magic u32 'SPD1' | version u16 | op u16 | status u16 | reserved u16 |
  body_len u32 | body[body_len] | fnv u64
The trailing FNV-1a 64 covers header + body.  The corpus file is simply the
frames concatenated; each frame is self-describing via body_len.
"""
import struct
from pathlib import Path

MAGIC = 0x31445053  # 'S','P','D','1' LE
VERSION = 1

# Op codes (src/snapd/proto.h)
PING, PUT_CHUNK, GET_CHUNK, HAS_CHUNK, DEL_CHUNK = 1, 2, 3, 4, 5
PUT_MANIFEST, GET_MANIFEST, DEL_MANIFEST = 6, 7, 8
LIST_MANIFESTS, LIST_CHUNKS, STAT, SHUTDOWN = 9, 10, 11, 12

# Wire status
OK, MISSING, IO, BAD_REQUEST, CORRUPT, UNSUPPORTED = 0, 1, 2, 3, 4, 5


def fnv1a64(data: bytes) -> int:
    h = 14695981039346656037
    for b in data:
        h ^= b
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h


def frame(op: int, status: int, body: bytes = b"") -> bytes:
    hdr = struct.pack("<IHHHHI", MAGIC, VERSION, op, status, 0, len(body))
    return hdr + body + struct.pack("<Q", fnv1a64(hdr + body))


def key(h: int, length: int, uniq: int = 0) -> bytes:
    return struct.pack("<QQI", h, length, uniq)


def main() -> None:
    payload = bytes(range(16))  # stands in for a SNAPCHK1 chunk file
    frames = [
        frame(PING, OK),                                       # 0 request
        frame(PUT_CHUNK, OK,                                   # 1 request
              key(0x0123456789ABCDEF, 16) + payload),
        frame(GET_CHUNK, OK, payload),                         # 2 reply
        frame(GET_CHUNK, MISSING),                             # 3 reply
        frame(PUT_MANIFEST, OK,                                # 4 request
              struct.pack("<QH", 7, 2) + b"ck" + b"MANIFEST-BYTES"),
        frame(STAT, OK, struct.pack("<7Q", 1, 2, 3, 4, 5, 6, 7)),  # 5 reply
        frame(SHUTDOWN, UNSUPPORTED),                          # 6 reply
    ]
    out = Path(__file__).with_name("snapd_v1_frames.bin")
    out.write_bytes(b"".join(frames))
    print(f"wrote {out} ({sum(len(f) for f in frames)} bytes, "
          f"{len(frames)} frames)")


if __name__ == "__main__":
    main()
