#!/usr/bin/env python3
"""Regenerates the pinned object-DB decode corpus (golden_v1.db, golden_v2.db).

The binaries are committed; this script only exists so a reader can see how
the bytes were produced and regenerate them if the *intended* graph changes.
If the codec's wire format changes such that these files stop decoding, that
is a compatibility break with existing checkpoints and must be handled with a
new container version, not by regenerating the corpus.

Wire format (src/core/replay/codec.cpp, little-endian throughout):
  v1: [u32 1] then per class in ObjType order: [u32 count][records]
  v2: [u32 2][u32 section_count] then per section:
      [u32 class_tag][u32 count][u64 body_len][body]
  record: [u64 old_id][fields...]   (field order = fields() in codec.cpp)
  str/bytes = u64 length + raw; bool = u8 0/1; links = u32 n + n*u64 ids
"""
import struct
import sys
from pathlib import Path


class W:
    def __init__(self):
        self.b = bytearray()

    def u8(self, v): self.b += struct.pack("<B", v)
    def u32(self, v): self.b += struct.pack("<I", v)
    def u64(self, v): self.b += struct.pack("<Q", v)
    def i64(self, v): self.b += struct.pack("<q", v)
    def boolean(self, v): self.u8(1 if v else 0)

    def str_(self, s):
        raw = s.encode()
        self.u64(len(raw))
        self.b += raw

    def bytes_(self, raw):
        self.u64(len(raw))
        self.b += bytes(raw)

    def i64s(self, vals):
        self.u32(len(vals))
        for v in vals:
            self.i64(v)

    def links(self, ids):
        self.u32(len(ids))
        for i in ids:
            self.u64(i)


# CL constants (include/checl/cl.h).
CL_DEVICE_TYPE_GPU = 1 << 2
CL_CONTEXT_PLATFORM = 0x1084
CL_QUEUE_PROFILING_ENABLE = 1 << 1
CL_MEM_READ_WRITE = 1 << 0
CL_MEM_READ_ONLY = 1 << 2
CL_RGBA = 0x10B5
CL_UNSIGNED_INT8 = 0x10DA
CL_ADDRESS_CLAMP = 0x1132
CL_FILTER_LINEAR = 0x1141
CL_COMMAND_NDRANGE_KERNEL = 0x11F0

# ArgRec::Kind (src/core/objects.h).
ARG_UNSET, ARG_BYTES, ARG_MEM, ARG_SAMPLER, ARG_LOCAL = range(5)

GOLDEN_SOURCE = "__kernel void golden(__global float* d, int n) { d[0] = n; }"

# One record-emitter per class; old ids are deliberately non-contiguous so a
# decoder that ignores the id map and relies on allocation order would fail.
# Event 111 links queue id 999, which does not exist: decode_db must tolerate
# the dangling link (queue == nullptr) rather than reject the stream.


def platforms():
    w = W()
    w.u64(101); w.str_("GoldenCL Platform"); w.u32(0)
    return 1, w.b


def devices():
    w = W()
    w.u64(102); w.u64(101); w.u64(CL_DEVICE_TYPE_GPU); w.u32(0)
    w.str_("GoldenCL GPU 0")
    return 1, w.b


def contexts():
    w = W()
    w.u64(103); w.links([102]); w.i64s([CL_CONTEXT_PLATFORM, 101, 0])
    return 1, w.b


def queues():
    w = W()
    w.u64(104); w.u64(103); w.u64(102); w.u64(CL_QUEUE_PROFILING_ENABLE)
    return 1, w.b


def mems():
    w = W()
    # Plain buffer.
    w.u64(105); w.u64(103); w.u64(CL_MEM_READ_WRITE); w.u64(4096)
    w.boolean(False); w.u32(0); w.u32(0); w.u64(0); w.u64(0); w.u64(0)
    w.boolean(False)
    # Image, originally created with a host pointer.
    w.u64(106); w.u64(103); w.u64(CL_MEM_READ_ONLY); w.u64(2048)
    w.boolean(True); w.u32(CL_RGBA); w.u32(CL_UNSIGNED_INT8)
    w.u64(16); w.u64(8); w.u64(64)
    w.boolean(True)
    return 2, w.b


def samplers():
    w = W()
    w.u64(107); w.u64(103); w.u32(1); w.u32(CL_ADDRESS_CLAMP)
    w.u32(CL_FILTER_LINEAR)
    return 1, w.b


def programs():
    w = W()
    w.u64(108); w.u64(103); w.str_(GOLDEN_SOURCE); w.str_("-DGOLDEN=1")
    w.boolean(True); w.boolean(False); w.bytes_(b"")
    return 1, w.b


def kernels():
    w = W()
    w.u64(109); w.u64(108); w.str_("golden")
    w.u32(5)  # one arg of every kind
    w.u8(ARG_BYTES); w.bytes_(bytes([1, 2, 3, 4]))
    w.u8(ARG_MEM); w.u64(105)
    w.u8(ARG_SAMPLER); w.u64(107)
    w.u8(ARG_LOCAL); w.u64(64)
    w.u8(ARG_UNSET)
    return 1, w.b


def events():
    w = W()
    w.u64(110); w.u64(104); w.u32(CL_COMMAND_NDRANGE_KERNEL)
    w.u64(111); w.u64(999); w.u32(4242)  # dangling queue link
    return 2, w.b


CLASSES = [platforms, devices, contexts, queues, mems, samplers, programs,
           kernels, events]


def emit_v1():
    w = W()
    w.u32(1)
    for cls in CLASSES:
        count, body = cls()
        w.u32(count)
        w.b += body
    return bytes(w.b)


def emit_v2():
    w = W()
    w.u32(2)
    w.u32(len(CLASSES) + 1)  # +1: an unknown future-class section
    for tag, cls in enumerate(CLASSES):
        count, body = cls()
        w.u32(tag); w.u32(count); w.u64(len(body))
        w.b += body
    # Unknown class tag: a v2 reader must skip it by length.
    future = b"\xde\xad\xbe\xef\x00\x11\x22\x33"
    w.u32(99); w.u32(1); w.u64(len(future))
    w.b += future
    return bytes(w.b)


def main():
    out = Path(__file__).resolve().parent
    (out / "golden_v1.db").write_bytes(emit_v1())
    (out / "golden_v2.db").write_bytes(emit_v2())
    print(f"wrote {out / 'golden_v1.db'} and {out / 'golden_v2.db'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
