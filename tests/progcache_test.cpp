// progcache_test.cpp — the content-addressed compile cache (simcl/progcache):
// key sensitivity, in-memory LRU behaviour, the on-disk snapstore pool that
// survives a process-fresh reset(), the chaoskit compile_cache_poison site
// (corrupt bytecode must fall back to recompile, never execute), and the warm
// clBuildProgram fast path through the public CL API.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "chaoskit/chaoskit.h"
#include "checl/cl_ext.h"
#include "clc/program.h"
#include "simcl/progcache.h"
#include "simcl/runtime.h"
#include "workloads/harness.h"

namespace {

using simcl::ProgCache;
using simcl::ProgCacheConfig;

const char* kSrcA = R"CL(
__kernel void k(__global int* out) { out[get_global_id(0)] = 41; }
)CL";
const char* kSrcB = R"CL(
__kernel void k(__global int* out) { out[get_global_id(0)] = 42; }
)CL";
const char* kSrcC = R"CL(
__kernel void k(__global int* out) { out[get_global_id(0)] = 43; }
)CL";

std::shared_ptr<const clc::Module> compiled(const char* src) {
  clc::CompileResult res = clc::compile(src);
  EXPECT_TRUE(res.ok()) << res.diag.to_string();
  return std::shared_ptr<const clc::Module>(std::move(res.module));
}

class ProgCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/checl_progcache_test";
    std::filesystem::remove_all(dir_);
    chaoskit::Engine::instance().disarm();
    ProgCache::instance().reset();
    ProgCache::instance().configure({});  // memory-only defaults
  }
  void TearDown() override {
    chaoskit::Engine::instance().disarm();
    ProgCache::instance().reset();
    ProgCache::instance().configure({});
    std::filesystem::remove_all(dir_);
  }

  ProgCacheConfig disk_config() {
    ProgCacheConfig cfg;
    cfg.root = dir_;
    return cfg;
  }

  std::string dir_;
};

TEST_F(ProgCacheTest, KeyDependsOnSourceOptionsAndDevice) {
  const std::uint64_t base = ProgCache::key(kSrcA, "", "Tesla C1060");
  EXPECT_EQ(base, ProgCache::key(kSrcA, "", "Tesla C1060"));
  EXPECT_NE(base, ProgCache::key(kSrcB, "", "Tesla C1060"));
  EXPECT_NE(base, ProgCache::key(kSrcA, "-D N=4", "Tesla C1060"));
  EXPECT_NE(base, ProgCache::key(kSrcA, "", "Radeon HD5870"));
}

TEST_F(ProgCacheTest, KeyIsOverPreprocessedSource) {
  // The address is FNV over the *preprocessed* text: a macro spelling and its
  // expansion share one entry.  (The preprocessor replaces the #define line
  // with a bare newline to keep line numbers aligned, hence the blank first
  // line of the literal spelling.)
  const char* macro_src =
      "#define ANSWER 41\n"
      "__kernel void k(__global int* out) { out[get_global_id(0)] = ANSWER; }\n";
  const char* plain_src =
      "\n"
      "__kernel void k(__global int* out) { out[get_global_id(0)] = 41; }\n";
  EXPECT_EQ(ProgCache::key(macro_src, "", "dev"),
            ProgCache::key(plain_src, "", "dev"));
  // ...and macro-relevant differences do change the address.
  const char* macro_src2 =
      "#define ANSWER 42\n"
      "__kernel void k(__global int* out) { out[get_global_id(0)] = ANSWER; }\n";
  EXPECT_NE(ProgCache::key(macro_src, "", "dev"),
            ProgCache::key(macro_src2, "", "dev"));
}

TEST_F(ProgCacheTest, MemoryHitMissAndLruEviction) {
  ProgCacheConfig cfg;
  cfg.max_modules = 2;
  ProgCache::instance().configure(cfg);
  ProgCache& cache = ProgCache::instance();

  const std::uint64_t ka = ProgCache::key(kSrcA, "", "dev");
  const std::uint64_t kb = ProgCache::key(kSrcB, "", "dev");
  const std::uint64_t kc = ProgCache::key(kSrcC, "", "dev");

  EXPECT_FALSE(cache.lookup(ka).has_value());
  cache.insert(ka, compiled(kSrcA));
  cache.insert(kb, compiled(kSrcB));

  auto hit = cache.lookup(ka);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->from_disk);
  EXPECT_GT(hit->serialized_bytes, 0u);
  EXPECT_NE(hit->module->find_func("k"), nullptr);

  // ka was just touched, so inserting kc evicts kb (the LRU tail).
  cache.insert(kc, compiled(kSrcC));
  EXPECT_TRUE(cache.lookup(ka).has_value());
  EXPECT_FALSE(cache.lookup(kb).has_value());
  EXPECT_TRUE(cache.lookup(kc).has_value());

  const simcl::ProgCacheStats st = cache.stats();
  EXPECT_EQ(st.puts, 3u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.disk_hits, 0u);
  EXPECT_EQ(st.poisoned, 0u);
}

TEST_F(ProgCacheTest, DiskPoolSurvivesProcessFreshReset) {
  ProgCache& cache = ProgCache::instance();
  cache.configure(disk_config());
  const std::uint64_t ka = ProgCache::key(kSrcA, "", "dev");
  cache.insert(ka, compiled(kSrcA));

  // Simulate a fresh process on the same node: memory gone, disk root kept.
  cache.reset();
  cache.configure(disk_config());

  auto hit = cache.lookup(ka);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->from_disk);
  ASSERT_NE(hit->module, nullptr);
  // The disk entry is VM-only bytecode: no AST bodies survive the trip.
  for (const auto& f : hit->module->funcs) EXPECT_EQ(f->body, nullptr);
  EXPECT_EQ(cache.stats().disk_hits, 1u);

  // Second lookup is served from memory (the disk hit was promoted).
  auto again = cache.lookup(ka);
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again->from_disk);
}

TEST_F(ProgCacheTest, ResetWithoutRootForgetsEverything) {
  ProgCache& cache = ProgCache::instance();
  const std::uint64_t ka = ProgCache::key(kSrcA, "", "dev");
  cache.insert(ka, compiled(kSrcA));
  cache.reset();
  EXPECT_FALSE(cache.lookup(ka).has_value());
  EXPECT_EQ(cache.stats().hits, 0u);  // reset() zeroes stats too
}

TEST_F(ProgCacheTest, DisabledCacheServesNothing) {
  ProgCacheConfig cfg;
  cfg.enabled = false;
  ProgCache& cache = ProgCache::instance();
  cache.configure(cfg);
  const std::uint64_t ka = ProgCache::key(kSrcA, "", "dev");
  cache.insert(ka, compiled(kSrcA));
  EXPECT_FALSE(cache.lookup(ka).has_value());
}

// The chaoskit site: a disk entry corrupted between put and get must be
// detected, dropped, and reported — never deserialized into execution.
TEST_F(ProgCacheTest, PoisonedDiskEntryFallsBackAndNamesTheSite) {
  for (const std::int64_t arg : {std::int64_t{12}, std::int64_t{-1}}) {
    SCOPED_TRACE(arg < 0 ? "truncated" : "bit-flipped");
    std::filesystem::remove_all(dir_);
    ProgCache& cache = ProgCache::instance();
    cache.reset();
    cache.configure(disk_config());
    const std::uint64_t ka = ProgCache::key(kSrcA, "", "dev");
    cache.insert(ka, compiled(kSrcA));
    cache.reset();  // drop the in-memory copy, keep the disk pool
    cache.configure(disk_config());

    chaoskit::Fault f;
    f.site = chaoskit::Site::CompileCachePoison;
    f.arg = arg;
    chaoskit::Engine::instance().arm(f);

    // The poisoned read is rejected -> miss, so the caller recompiles.
    EXPECT_FALSE(cache.lookup(ka).has_value());
    chaoskit::Engine::instance().disarm();

    const simcl::ProgCacheStats st = cache.stats();
    EXPECT_EQ(st.poisoned, 1u);
    EXPECT_EQ(st.hits, 0u);
    const std::string err = cache.last_error();
    EXPECT_NE(err.find("rejected"), std::string::npos) << err;
    EXPECT_NE(err.find("compile_cache_poison"), std::string::npos) << err;

    // The corrupt entry was removed from the pool: the next (unpoisoned)
    // lookup is a clean miss, and a re-insert round-trips again.
    EXPECT_FALSE(cache.lookup(ka).has_value());
    cache.insert(ka, compiled(kSrcA));
    cache.reset();
    cache.configure(disk_config());
    auto healed = cache.lookup(ka);
    ASSERT_TRUE(healed.has_value());
    EXPECT_TRUE(healed->from_disk);
  }
}

// ---------------------------------------------------------------------------
// end-to-end: the clBuildProgram warm path through the public API
// ---------------------------------------------------------------------------

// Builds the same program twice in two "fresh processes" sharing a cache
// root: the second build must be a disk hit, charge the deserialize model
// (cheaper than the compile model), and still produce a working kernel.
TEST_F(ProgCacheTest, WarmBuildProgramIsCheaperAndStillCorrect) {
  const char* kSrc = R"CL(
__kernel void scale(__global int* data, int m) {
  int i = get_global_id(0);
  data[i] = data[i] * m;
}
)CL";

  auto run_once = [&](bool warm_root) -> std::uint64_t {
    checl::NodeConfig node = checl::nvidia_node();
    if (warm_root) node.clc_cache.root = dir_;
    workloads::fresh_process(workloads::Binding::Native, node);
    workloads::Env env;
    EXPECT_EQ(workloads::open_env(env, CL_DEVICE_TYPE_GPU, "NVIDIA"),
              CL_SUCCESS);

    cl_ulong t0 = 0, t1 = 0;
    clSimGetHostTimeNS(&t0);
    cl_int err = CL_SUCCESS;
    cl_program p = clCreateProgramWithSource(env.ctx, 1, &kSrc, nullptr, &err);
    EXPECT_EQ(err, CL_SUCCESS);
    EXPECT_EQ(clBuildProgram(p, 0, nullptr, "", nullptr, nullptr), CL_SUCCESS);
    clSimGetHostTimeNS(&t1);
    const std::uint64_t build_ns = t1 - t0;

    // The built kernel must work regardless of which path produced it.
    cl_kernel k = clCreateKernel(p, "scale", &err);
    EXPECT_EQ(err, CL_SUCCESS);
    int host[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    cl_mem buf = clCreateBuffer(env.ctx, CL_MEM_COPY_HOST_PTR, sizeof host,
                                host, &err);
    EXPECT_EQ(err, CL_SUCCESS);
    const int m = 3;
    clSetKernelArg(k, 0, sizeof(cl_mem), &buf);
    clSetKernelArg(k, 1, sizeof(int), &m);
    std::size_t g = 8;
    EXPECT_EQ(clEnqueueNDRangeKernel(env.queue, k, 1, nullptr, &g, nullptr, 0,
                                     nullptr, nullptr),
              CL_SUCCESS);
    EXPECT_EQ(clEnqueueReadBuffer(env.queue, buf, CL_TRUE, 0, sizeof host,
                                  host, 0, nullptr, nullptr),
              CL_SUCCESS);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(host[i], (i + 1) * 3);

    clReleaseMemObject(buf);
    clReleaseKernel(k);
    clReleaseProgram(p);
    workloads::close_env(env);
    return build_ns;
  };

  const std::uint64_t cold_ns = run_once(true);
  EXPECT_EQ(ProgCache::instance().stats().puts, 1u);
  const std::uint64_t warm_ns = run_once(true);
  const simcl::ProgCacheStats st = ProgCache::instance().stats();
  EXPECT_EQ(st.disk_hits, 1u);
  EXPECT_GT(cold_ns, 0u);
  EXPECT_GT(warm_ns, 0u);
  // compile model: 30ms base; deserialize model: 1ms base + 1ns/B.
  EXPECT_LT(warm_ns * 5, cold_ns);
}

}  // namespace
