// ksig_test.cpp — the kernel-signature parser behind CheCL's clSetKernelArg
// handle conversion (Section III-B).
#include <gtest/gtest.h>

#include "core/ksig.h"

namespace {

using checl::ksig::ParamClass;
using checl::ksig::parse_signatures;

TEST(Ksig, ClassifiesAllParameterKinds) {
  const auto sigs = parse_signatures(
      "__kernel void k(__global float* a, __local int* tmp,\n"
      "                __constant float* coeffs, image2d_t img, image3d_t vol,\n"
      "                sampler_t smp, float scalar, int4 vec,\n"
      "                __global const float4* restrict b) {}");
  ASSERT_EQ(sigs.kernels.size(), 1u);
  const auto& k = sigs.kernels[0];
  EXPECT_EQ(k.name, "k");
  ASSERT_EQ(k.params.size(), 9u);
  EXPECT_EQ(k.params[0].cls, ParamClass::MemGlobal);
  EXPECT_EQ(k.params[1].cls, ParamClass::Local);
  EXPECT_EQ(k.params[2].cls, ParamClass::MemConstant);
  EXPECT_EQ(k.params[3].cls, ParamClass::Image);
  EXPECT_EQ(k.params[4].cls, ParamClass::Image);
  EXPECT_EQ(k.params[5].cls, ParamClass::Sampler);
  EXPECT_EQ(k.params[6].cls, ParamClass::Value);
  EXPECT_EQ(k.params[7].cls, ParamClass::Value);
  EXPECT_EQ(k.params[8].cls, ParamClass::MemGlobal);
  EXPECT_EQ(k.params[0].name, "a");
  EXPECT_EQ(k.params[8].name, "b");
}

TEST(Ksig, MultipleKernelsAndHelpers) {
  const auto sigs = parse_signatures(
      "float helper(float x) { return x * 2.0f; }\n"
      "__kernel void first(__global int* d) { d[0] = 1; }\n"
      "void another_helper(__global int* p) {}\n"
      "__kernel void second(float v, __global float* out) { out[0] = helper(v); }\n");
  ASSERT_EQ(sigs.kernels.size(), 2u);
  EXPECT_EQ(sigs.kernels[0].name, "first");
  EXPECT_EQ(sigs.kernels[1].name, "second");
  EXPECT_EQ(sigs.kernels[1].params[0].cls, ParamClass::Value);
  EXPECT_EQ(sigs.kernels[1].params[1].cls, ParamClass::MemGlobal);
  EXPECT_NE(sigs.find("second"), nullptr);
  EXPECT_EQ(sigs.find("helper"), nullptr);  // not a kernel
}

TEST(Ksig, AlternateQualifierSpellings) {
  const auto sigs = parse_signatures(
      "kernel void k(global float* a, local int* b, constant float* c) {}");
  ASSERT_EQ(sigs.kernels.size(), 1u);
  EXPECT_EQ(sigs.kernels[0].params[0].cls, ParamClass::MemGlobal);
  EXPECT_EQ(sigs.kernels[0].params[1].cls, ParamClass::Local);
  EXPECT_EQ(sigs.kernels[0].params[2].cls, ParamClass::MemConstant);
}

TEST(Ksig, EmptyAndVoidParameterLists) {
  const auto sigs = parse_signatures(
      "__kernel void none() {}\n__kernel void v(void) {}");
  ASSERT_EQ(sigs.kernels.size(), 2u);
  EXPECT_TRUE(sigs.kernels[0].params.empty());
  EXPECT_TRUE(sigs.kernels[1].params.empty());
}

TEST(Ksig, MacroExpandedDeclarations) {
  const auto sigs = parse_signatures(
      "#define GPTR __global float*\n"
      "__kernel void k(GPTR data, int n) {}");
  ASSERT_EQ(sigs.kernels.size(), 1u);
  ASSERT_EQ(sigs.kernels[0].params.size(), 2u);
  EXPECT_EQ(sigs.kernels[0].params[0].cls, ParamClass::MemGlobal);
}

TEST(Ksig, BuildOptionDefinesRespected) {
  const auto sigs = parse_signatures(
      "#ifdef USE_IMG\n"
      "__kernel void k(image2d_t img) {}\n"
      "#else\n"
      "__kernel void k(__global float* buf) {}\n"
      "#endif\n",
      "-D USE_IMG");
  ASSERT_EQ(sigs.kernels.size(), 1u);
  EXPECT_EQ(sigs.kernels[0].params[0].cls, ParamClass::Image);
}

TEST(Ksig, SurvivesBodiesTheFullParserRejects) {
  // the body uses a construct clc does not support; declaration scanning
  // must still classify parameters (the paper used Clang for decls only)
  const auto sigs = parse_signatures(
      "__kernel void k(__global float* d) {\n"
      "  goto out;  /* not in the clc subset */\n"
      "out:\n"
      "  d[0] = 1.0f;\n"
      "}");
  ASSERT_EQ(sigs.kernels.size(), 1u);
  EXPECT_EQ(sigs.kernels[0].params[0].cls, ParamClass::MemGlobal);
}

TEST(Ksig, StructByValueParamIsValueClass) {
  // the Section IV-D limitation: struct parameters are Value — any handle
  // hidden inside will NOT be converted
  const auto sigs = parse_signatures(
      "typedef struct { int n; float s; } Config;\n"
      "__kernel void k(Config cfg, __global float* d) {}");
  ASSERT_EQ(sigs.kernels.size(), 1u);
  EXPECT_EQ(sigs.kernels[0].params[0].cls, ParamClass::Value);
  EXPECT_EQ(sigs.kernels[0].params[1].cls, ParamClass::MemGlobal);
}

TEST(Ksig, IsMemHandleHelper) {
  checl::ksig::ParamSig p;
  p.cls = ParamClass::MemGlobal;
  EXPECT_TRUE(p.is_mem_handle());
  p.cls = ParamClass::Image;
  EXPECT_TRUE(p.is_mem_handle());
  p.cls = ParamClass::Sampler;
  EXPECT_FALSE(p.is_mem_handle());
  p.cls = ParamClass::Local;
  EXPECT_FALSE(p.is_mem_handle());
}

TEST(Ksig, EmptySourceYieldsNoKernels) {
  EXPECT_TRUE(parse_signatures("").kernels.empty());
  EXPECT_TRUE(parse_signatures("int x;").kernels.empty());
}

}  // namespace
