// chaos_test.cpp — the crash-schedule torture test over chaoskit.
//
// Enumerates 200+ distinct fault schedules from one PRNG seed and runs each
// through the checkpoint/restore lifecycle (tests/chaos_harness.h).  Every
// failure prints a one-line repro command:
//
//   CHECL_CHAOS_SEED=<n> CHECL_CHAOS_CASE=<i> ./test_chaos
//
// CHECL_CHAOS_SEED overrides the master seed; CHECL_CHAOS_CASE restricts the
// sweep to one schedule index (for bisecting a failing case).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "chaos_harness.h"

namespace {

using chaos_harness::ArmPoint;
using chaos_harness::Schedule;
using chaos_harness::Verdict;

constexpr std::uint64_t kDefaultSeed = 20260805;
constexpr std::size_t kCases = 224;

std::uint64_t master_seed() {
  if (const char* v = std::getenv("CHECL_CHAOS_SEED");
      v != nullptr && *v != '\0')
    return std::strtoull(v, nullptr, 10);
  return kDefaultSeed;
}

TEST(ChaosSchedules, DerivationIsDeterministicAndDiverse) {
  const auto a = chaos_harness::derive_schedules(master_seed(), kCases);
  const auto b = chaos_harness::derive_schedules(master_seed(), kCases);
  ASSERT_EQ(a.size(), kCases);
  for (std::size_t i = 0; i < kCases; ++i) {
    EXPECT_EQ(chaos_harness::schedule_name(a[i]),
              chaos_harness::schedule_name(b[i]))
        << "schedule derivation is not a pure function of the seed (case " << i
        << ")";
  }
  // Distinct schedules, and real breadth: the acceptance bar is >= 200
  // schedules across >= 4 sites.
  std::set<std::string> names;
  std::set<chaoskit::Site> sites;
  for (const Schedule& s : a) {
    names.insert(chaos_harness::schedule_name(s));
    sites.insert(s.fault.site);
  }
  EXPECT_GE(names.size(), 200u);
  EXPECT_GE(sites.size(), 4u);
}

TEST(ChaosTorture, EveryScheduleKeepsTheInvariants) {
  const std::uint64_t seed = master_seed();
  const auto schedules = chaos_harness::derive_schedules(seed, kCases);

  std::size_t lo = 0, hi = schedules.size();
  if (const char* v = std::getenv("CHECL_CHAOS_CASE");
      v != nullptr && *v != '\0') {
    lo = std::strtoull(v, nullptr, 10);
    ASSERT_LT(lo, schedules.size());
    hi = lo + 1;
  }

  std::size_t failures = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    const Verdict v = chaos_harness::run_schedule(schedules[i]);
    if (!v.pass) {
      ++failures;
      ADD_FAILURE() << "schedule " << i << " ["
                    << chaos_harness::schedule_name(schedules[i])
                    << "]: " << v.detail << "\n  repro: "
                    << chaos_harness::repro_line(seed, i);
    }
  }
  EXPECT_EQ(failures, 0u);
}

TEST(ChaosTorture, SingleScheduleRerunsIdentically) {
  // Determinism spot-check: the same schedule run twice produces the same
  // verdict, firing state, and diagnostic.
  const auto schedules = chaos_harness::derive_schedules(master_seed(), kCases);
  for (const std::size_t i : {std::size_t{0}, kCases / 2, kCases - 1}) {
    const Verdict a = chaos_harness::run_schedule(schedules[i]);
    const Verdict b = chaos_harness::run_schedule(schedules[i]);
    EXPECT_EQ(a.pass, b.pass) << chaos_harness::schedule_name(schedules[i]);
    EXPECT_EQ(a.fired, b.fired) << chaos_harness::schedule_name(schedules[i]);
    EXPECT_EQ(a.op_failed, b.op_failed)
        << chaos_harness::schedule_name(schedules[i]);
    // Diagnostics embed content hashes and object ids (fresh per run), so
    // determinism is judged on outcomes: both clean, or both broken.
    EXPECT_EQ(a.detail.empty(), b.detail.empty())
        << chaos_harness::schedule_name(schedules[i]) << ": \"" << a.detail
        << "\" vs \"" << b.detail << "\"";
  }
}

TEST(ChaosSurvive, EligibleSchedulesCompleteByteIdentical) {
  // The tentpole contract: the same crash schedules that run_schedule proves
  // *fail cleanly* must, with supervision on, complete with zero
  // application-visible CL errors and byte-identical output.
  const std::uint64_t seed = master_seed();
  const auto schedules = chaos_harness::derive_schedules(seed, kCases);

  std::size_t lo = 0, hi = schedules.size();
  if (const char* v = std::getenv("CHECL_CHAOS_CASE");
      v != nullptr && *v != '\0') {
    lo = std::strtoull(v, nullptr, 10);
    ASSERT_LT(lo, schedules.size());
    hi = lo + 1;
  }

  std::size_t ran = 0, failures = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    if (!chaos_harness::survive_eligible(schedules[i])) continue;
    ++ran;
    const Verdict v = chaos_harness::run_schedule_survive(schedules[i]);
    if (!v.pass) {
      ++failures;
      ADD_FAILURE() << "survive schedule " << i << " ["
                    << chaos_harness::schedule_name(schedules[i])
                    << "]: " << v.detail << "\n  repro: "
                    << chaos_harness::repro_line(seed, i);
    }
  }
  EXPECT_EQ(failures, 0u);
  // Schedules dedupe on (site, nth, arg), so the eligible slice is the full
  // enumeration of the seven survivable sites: 5 channel sites x nth 1..4
  // plus StoreEnospc x3 and SlimcrEnospc x1 = 24.
  if (lo == 0 && hi == schedules.size()) {
    EXPECT_GE(ran, 24u) << "survive-eligible slice unexpectedly thin";
  }
}

TEST(ChaosSurvive, RecoveryIsCountedAndTimed) {
  // A proxy death mid-run must show up in the public counters: at least one
  // recovery, with a non-zero wall-clock time-to-recover (the MTTR source).
  Schedule s;
  s.fault.site = chaoskit::Site::ProxyDieBeforeReply;
  s.fault.actor = chaoskit::Actor::Proxy;
  s.fault.nth = 1;
  s.when = ArmPoint::AtRestore;
  const Verdict v = chaos_harness::run_schedule_survive(s);
  EXPECT_TRUE(v.pass) << v.detail;
  EXPECT_TRUE(v.fired);
  EXPECT_GE(v.recoveries, 1u);
  EXPECT_GT(v.recover_ns, 0u);
}

TEST(ChaosSurvive, StorageFaultAbsorbedByRetry) {
  // A single-shot ENOSPC during a store-mode checkpoint is retried away;
  // the operation succeeds and the retry is visible in io_retries.
  Schedule s;
  s.fault.site = chaoskit::Site::StoreEnospc;
  s.fault.actor = chaoskit::Actor::Any;
  s.fault.nth = 1;
  s.when = ArmPoint::AtCheckpoint;
  s.store_mode = true;
  const Verdict v = chaos_harness::run_schedule_survive(s);
  EXPECT_TRUE(v.pass) << v.detail;
  EXPECT_TRUE(v.fired);
  EXPECT_GE(v.io_retries, 1u);
}

TEST(ChaosEnv, FaultRoundTripsThroughEnvString) {
  // CHECL_CHAOS is how a fork/exec'd proxy daemon inherits the armed fault.
  chaoskit::Fault f;
  f.site = chaoskit::Site::ProxyInjectClError;
  f.nth = 3;
  f.arg = CL_OUT_OF_RESOURCES;
  f.actor = chaoskit::Actor::Proxy;
  const std::string env = chaoskit::Engine::to_env(f);
  ::setenv("CHECL_CHAOS", env.c_str(), 1);
  auto& chaos = chaoskit::Engine::instance();
  chaos.disarm();
  chaos.arm_from_env();
  ::unsetenv("CHECL_CHAOS");
  ASSERT_TRUE(chaos.armed());
  const chaoskit::Fault g = chaos.current();
  EXPECT_EQ(g.site, f.site);
  EXPECT_EQ(g.nth, f.nth);
  EXPECT_EQ(g.arg, f.arg);
  EXPECT_EQ(g.actor, f.actor);
  chaos.disarm();
}

TEST(ChaosEngine, DisarmedConsultationsAreFreeAndInert) {
  auto& chaos = chaoskit::Engine::instance();
  chaos.disarm();
  for (int i = 0; i < 1000; ++i)
    ASSERT_FALSE(chaos.should_fire(chaoskit::Site::IpcSendEpipe));
  EXPECT_FALSE(chaos.fired());
}

}  // namespace
