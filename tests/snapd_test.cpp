// snapd_test.cpp — the distributed snapstore torture battery: consistent-hash
// ring properties, the pinned v1 wire-format corpus, single-daemon lifecycle,
// and the replication/repair path under real process death and replica
// corruption (4 daemons, R=2: kill one mid-seal → old-or-new never torn;
// corrupt one replica → restore fails over byte-identically; repair() returns
// the fleet to full replication).
//
// The chaos cases are reproducible: CHECL_CHAOS_SEED=<n> ./test_snapd reruns
// the exact schedule a failure printed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unordered_map>
#include <random>
#include <string>
#include <vector>

#include "chaoskit/chaoskit.h"
#include "checl/checl.h"
#include "checl/cl.h"
#include "core/stats.h"
#include "slimcr/storage.h"
#include "snapd/client.h"
#include "snapd/proto.h"
#include "snapd/spawn.h"
#include "snapstore/shard.h"
#include "snapstore/store.h"

namespace fs = std::filesystem;
using snapstore::ChunkKey;
using snapstore::ErrKind;
using snapstore::HashRing;
using snapstore::ShardedStore;
using snapstore::ShardOptions;

namespace {

std::uint64_t master_seed() {
  if (const char* v = std::getenv("CHECL_CHAOS_SEED");
      v != nullptr && *v != '\0')
    return std::strtoull(v, nullptr, 10);
  return 12345;
}

std::string repro_line() {
  return "CHECL_CHAOS_SEED=" + std::to_string(master_seed()) + " ./test_snapd";
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

std::vector<std::uint8_t> patterned_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>((i / 64 + seed) % 7);
  return v;
}

slimcr::Snapshot make_snapshot(std::uint32_t seed, std::size_t nbufs,
                               std::size_t bytes) {
  slimcr::Snapshot s;
  for (std::size_t i = 0; i < nbufs; ++i) {
    auto data = (i % 2 == 0)
                    ? patterned_bytes(bytes, seed + static_cast<std::uint32_t>(i))
                    : random_bytes(bytes, seed + static_cast<std::uint32_t>(i));
    s.set("mem." + std::to_string(i), std::move(data));
  }
  return s;
}

void expect_equal(const slimcr::Snapshot& a, const slimcr::Snapshot& b) {
  ASSERT_EQ(a.section_count(), b.section_count()) << "  repro: " << repro_line();
  for (const auto& [name, data] : a.sections()) {
    const auto* other = b.get(name);
    ASSERT_NE(other, nullptr) << name << "\n  repro: " << repro_line();
    EXPECT_EQ(*other, data) << name << "\n  repro: " << repro_line();
  }
}

// ---------------------------------------------------------------------------
// consistent-hash ring: balance, distinctness, minimal movement
// ---------------------------------------------------------------------------

std::vector<std::string> shard_ids(unsigned n) {
  std::vector<std::string> ids;
  for (unsigned i = 0; i < n; ++i) ids.push_back("shard" + std::to_string(i));
  return ids;
}

TEST(SnapdRing, BalancedAtSixtyFourVnodes) {
  // The load-balance gate: with >= 64 vnodes per shard no shard owns more
  // than 1.25x the mean share of keys.
  std::mt19937_64 rng(master_seed());
  for (const unsigned nshards : {3u, 4u, 8u}) {
    for (const unsigned vnodes : {64u, 128u}) {
      HashRing ring;
      ring.build(shard_ids(nshards), vnodes);
      std::vector<std::uint64_t> counts(nshards, 0);
      const std::size_t nkeys = 40000;
      for (std::size_t i = 0; i < nkeys; ++i) counts[ring.place(rng(), 1)[0]]++;
      const double mean = static_cast<double>(nkeys) / nshards;
      const std::uint64_t worst = *std::max_element(counts.begin(), counts.end());
      EXPECT_LE(static_cast<double>(worst) / mean, 1.25)
          << nshards << " shards, " << vnodes << " vnodes\n  repro: "
          << repro_line();
    }
  }
}

TEST(SnapdRing, ReplicasAreDistinctAndClamped) {
  HashRing ring;
  ring.build(shard_ids(4), 64);
  std::mt19937_64 rng(master_seed() + 1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t h = rng();
    for (const unsigned r : {1u, 2u, 3u, 4u, 9u}) {
      const std::vector<unsigned> reps = ring.place(h, r);
      EXPECT_EQ(reps.size(), std::min(r, 4u));
      std::vector<unsigned> sorted = reps;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
          << "duplicate replica for key " << h;
      for (const unsigned s : reps) EXPECT_LT(s, 4u);
    }
  }
  // same key, same placement — placement is a pure function of the ring
  const std::vector<unsigned> a = ring.place(42, 2);
  const std::vector<unsigned> b = ring.place(42, 2);
  EXPECT_EQ(a, b);
}

TEST(SnapdRing, GrowthMovesRoughlyOneOverNKeys) {
  // Stable shard identities make growth N -> N+1 remap ~1/(N+1) of the keys.
  // A naive mod-N placement would remap ~N/(N+1) — the property test pins the
  // consistent-hash behaviour, with generous slack for vnode variance.
  std::mt19937_64 rng(master_seed() + 2);
  const std::size_t nkeys = 30000;
  std::vector<std::uint64_t> keys(nkeys);
  for (auto& k : keys) k = rng();
  for (const unsigned n : {4u, 8u}) {
    HashRing before, after;
    before.build(shard_ids(n), 64);
    after.build(shard_ids(n + 1), 64);
    std::size_t moved = 0;
    for (const std::uint64_t k : keys)
      if (before.place(k, 1)[0] != after.place(k, 1)[0]) moved++;
    const double expected = static_cast<double>(nkeys) / (n + 1);
    EXPECT_GT(moved, 0u);
    EXPECT_LT(static_cast<double>(moved), 2.0 * expected)
        << n << " -> " << n + 1 << " shards moved " << moved
        << "\n  repro: " << repro_line();
    // and nothing close to a full reshuffle
    EXPECT_LT(moved, nkeys / 2);
  }
}

// ---------------------------------------------------------------------------
// wire format: the pinned v1 corpus (tests/data/snapd_v1_frames.bin)
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> read_corpus() {
  const char* dir = std::getenv("CHECL_TEST_DATA");
  if (dir == nullptr || *dir == '\0') dir = CHECL_TEST_DATA_DIR;
  const std::string path = std::string(dir) + "/snapd_v1_frames.bin";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// Walks the concatenated corpus; each frame is self-describing via body_len.
std::vector<std::vector<std::uint8_t>> split_frames(
    const std::vector<std::uint8_t>& all) {
  std::vector<std::vector<std::uint8_t>> frames;
  std::size_t off = 0;
  while (off + snapd::kHeaderBytes + snapd::kTrailerBytes <= all.size()) {
    std::uint32_t body_len = 0;
    std::memcpy(&body_len, all.data() + off + 12, 4);
    const std::size_t total =
        snapd::kHeaderBytes + body_len + snapd::kTrailerBytes;
    if (off + total > all.size()) break;
    frames.emplace_back(all.begin() + static_cast<std::ptrdiff_t>(off),
                        all.begin() + static_cast<std::ptrdiff_t>(off + total));
    off += total;
  }
  EXPECT_EQ(off, all.size()) << "trailing garbage in corpus";
  return frames;
}

TEST(SnapdWire, EncoderReproducesGoldenCorpus) {
  // encode_frame on the documented inputs must produce the pinned bytes —
  // a mismatch is a protocol revision, not a refactor (bump kVersion).
  const auto frames = split_frames(read_corpus());
  ASSERT_EQ(frames.size(), 7u);

  using snapd::Op;
  using snapd::Wire;
  const std::vector<std::uint8_t> payload = [] {
    std::vector<std::uint8_t> v(16);
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = static_cast<std::uint8_t>(i);
    return v;
  }();

  EXPECT_EQ(frames[0], snapd::encode_frame(Op::Ping, Wire::Ok, nullptr, 0));

  std::vector<std::uint8_t> put_body;
  snapd::put_key(put_body, ChunkKey{0x0123456789ABCDEFull, 16, 0});
  put_body.insert(put_body.end(), payload.begin(), payload.end());
  EXPECT_EQ(frames[1], snapd::encode_frame(Op::PutChunk, Wire::Ok,
                                           put_body.data(), put_body.size()));

  EXPECT_EQ(frames[2], snapd::encode_frame(Op::GetChunk, Wire::Ok,
                                           payload.data(), payload.size()));
  EXPECT_EQ(frames[3],
            snapd::encode_frame(Op::GetChunk, Wire::Missing, nullptr, 0));

  std::vector<std::uint8_t> man_body;
  const std::uint64_t seq = 7;
  const std::uint16_t nlen = 2;
  man_body.insert(man_body.end(),
                  reinterpret_cast<const std::uint8_t*>(&seq),
                  reinterpret_cast<const std::uint8_t*>(&seq) + 8);
  man_body.insert(man_body.end(),
                  reinterpret_cast<const std::uint8_t*>(&nlen),
                  reinterpret_cast<const std::uint8_t*>(&nlen) + 2);
  const std::string name_and_payload = "ckMANIFEST-BYTES";
  man_body.insert(man_body.end(), name_and_payload.begin(),
                  name_and_payload.end());
  EXPECT_EQ(frames[4], snapd::encode_frame(Op::PutManifest, Wire::Ok,
                                           man_body.data(), man_body.size()));

  std::vector<std::uint8_t> stat_body;
  for (std::uint64_t v = 1; v <= 7; ++v)
    stat_body.insert(stat_body.end(),
                     reinterpret_cast<const std::uint8_t*>(&v),
                     reinterpret_cast<const std::uint8_t*>(&v) + 8);
  EXPECT_EQ(frames[5], snapd::encode_frame(Op::Stat, Wire::Ok,
                                           stat_body.data(), stat_body.size()));
  EXPECT_EQ(frames[6],
            snapd::encode_frame(Op::Shutdown, Wire::Unsupported, nullptr, 0));
}

TEST(SnapdWire, DecoderAcceptsCorpusAndRejectsTampering) {
  const auto frames = split_frames(read_corpus());
  ASSERT_EQ(frames.size(), 7u);
  // every pinned frame decodes with the expected op/status
  const std::vector<std::pair<snapd::Op, snapd::Wire>> want = {
      {snapd::Op::Ping, snapd::Wire::Ok},
      {snapd::Op::PutChunk, snapd::Wire::Ok},
      {snapd::Op::GetChunk, snapd::Wire::Ok},
      {snapd::Op::GetChunk, snapd::Wire::Missing},
      {snapd::Op::PutManifest, snapd::Wire::Ok},
      {snapd::Op::Stat, snapd::Wire::Ok},
      {snapd::Op::Shutdown, snapd::Wire::Unsupported},
  };
  for (std::size_t i = 0; i < frames.size(); ++i) {
    snapd::Frame f;
    ASSERT_TRUE(snapd::decode_frame(frames[i].data(), frames[i].size(), f))
        << "frame " << i;
    EXPECT_EQ(f.op, want[i].first) << "frame " << i;
    EXPECT_EQ(f.status, want[i].second) << "frame " << i;
  }
  // the key round-trips out of the pinned PutChunk body
  snapd::Frame put;
  ASSERT_TRUE(snapd::decode_frame(frames[1].data(), frames[1].size(), put));
  ChunkKey k;
  ASSERT_TRUE(snapd::get_key(put.body.data(), put.body.size(), k));
  EXPECT_EQ(k.hash, 0x0123456789ABCDEFull);
  EXPECT_EQ(k.len, 16u);
  EXPECT_EQ(k.uniq, 0u);

  // a single flipped bit ANYWHERE in a frame must fail the FNV trailer
  std::mt19937 rng(static_cast<std::uint32_t>(master_seed() + 3));
  for (const auto& orig : frames) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<std::uint8_t> bad = orig;
      bad[rng() % bad.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
      snapd::Frame f;
      EXPECT_FALSE(snapd::decode_frame(bad.data(), bad.size(), f))
          << "tampered frame accepted\n  repro: " << repro_line();
    }
    // truncation must fail too
    snapd::Frame f;
    EXPECT_FALSE(snapd::decode_frame(orig.data(), orig.size() - 1, f));
  }
}

// ---------------------------------------------------------------------------
// one daemon: chunk/manifest lifecycle over the real socket
// ---------------------------------------------------------------------------

class SnapdDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = "/tmp/checl_snapd_test_daemon";
    fs::remove_all(root_);
    shard_ = snapd::spawn_snapd(root_);
    ASSERT_TRUE(shard_.ok()) << shard_.error;
    ASSERT_TRUE(client_.connect("127.0.0.1", shard_.port, "shard0"));
  }
  void TearDown() override {
    client_.close();
    snapd::kill_snapd(shard_);
    fs::remove_all(root_);
  }

  std::string root_;
  snapd::SpawnedShard shard_;
  snapd::ShardClient client_;
};

TEST_F(SnapdDaemonTest, ChunkLifecycle) {
  ASSERT_EQ(client_.ping(), snapd::Wire::Ok);
  const auto raw = random_bytes(4096, 7);
  const auto file =
      snapstore::encode_chunk_file(raw.data(), raw.size(), snapstore::CodecId::Lz);
  const ChunkKey k{snapstore::hash64(raw.data(), raw.size()), raw.size(), 0};

  EXPECT_EQ(client_.has_chunk(k), snapd::Wire::Missing);
  ASSERT_EQ(client_.put_chunk(k, file.data(), file.size()), snapd::Wire::Ok);
  EXPECT_EQ(client_.has_chunk(k), snapd::Wire::Ok);

  std::vector<std::uint8_t> got;
  ASSERT_EQ(client_.get_chunk(k, got), snapd::Wire::Ok);
  EXPECT_EQ(got, file);  // stored verbatim — the daemon never re-encodes
  std::vector<std::uint8_t> decoded;
  ASSERT_TRUE(snapstore::decode_chunk_file(got.data(), got.size(), k.len,
                                           decoded, "shard0")
                  .ok());
  EXPECT_EQ(decoded, raw);

  std::vector<snapd::ChunkEntry> listing;
  ASSERT_EQ(client_.list_chunks(listing), snapd::Wire::Ok);
  ASSERT_EQ(listing.size(), 1u);
  EXPECT_EQ(listing[0].key, k);
  EXPECT_EQ(listing[0].file_len, file.size());

  EXPECT_EQ(client_.del_chunk(k), snapd::Wire::Ok);
  EXPECT_EQ(client_.del_chunk(k), snapd::Wire::Missing);
  EXPECT_EQ(client_.has_chunk(k), snapd::Wire::Missing);
}

TEST_F(SnapdDaemonTest, ManifestSealSeqAndListing) {
  const std::vector<std::uint8_t> v1 = {1, 2, 3};
  const std::vector<std::uint8_t> v2 = {9, 8, 7, 6};
  ASSERT_EQ(client_.put_manifest("ck", 1, v1.data(), v1.size()),
            snapd::Wire::Ok);
  ASSERT_EQ(client_.put_manifest("ck", 2, v2.data(), v2.size()),
            snapd::Wire::Ok);

  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(client_.get_manifest("ck", seq, payload), snapd::Wire::Ok);
  EXPECT_EQ(seq, 2u);
  EXPECT_EQ(payload, v2);

  std::vector<snapd::ManifestEntry> names;
  ASSERT_EQ(client_.list_manifests(names), snapd::Wire::Ok);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0].name, "ck");
  EXPECT_EQ(names[0].seal_seq, 2u);

  EXPECT_EQ(client_.get_manifest("nope", seq, payload), snapd::Wire::Missing);
  EXPECT_EQ(client_.del_manifest("ck"), snapd::Wire::Ok);
  EXPECT_EQ(client_.get_manifest("ck", seq, payload), snapd::Wire::Missing);
}

TEST_F(SnapdDaemonTest, StateSurvivesDaemonRestart) {
  const auto raw = patterned_bytes(1000, 3);
  const auto file = snapstore::encode_chunk_file(raw.data(), raw.size(),
                                                 snapstore::CodecId::Rle);
  const ChunkKey k{snapstore::hash64(raw.data(), raw.size()), raw.size(), 0};
  ASSERT_EQ(client_.put_chunk(k, file.data(), file.size()), snapd::Wire::Ok);
  ASSERT_EQ(client_.put_manifest("m", 5, raw.data(), raw.size()),
            snapd::Wire::Ok);

  // hard-kill the daemon; a replacement over the same root serves the data
  client_.close();
  snapd::kill_snapd(shard_);
  shard_ = snapd::spawn_snapd(root_);
  ASSERT_TRUE(shard_.ok()) << shard_.error;
  ASSERT_TRUE(client_.connect("127.0.0.1", shard_.port, "shard0"));

  EXPECT_EQ(client_.has_chunk(k), snapd::Wire::Ok);
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(client_.get_manifest("m", seq, payload), snapd::Wire::Ok);
  EXPECT_EQ(seq, 5u);
  EXPECT_EQ(payload, raw);
  // counters were rebuilt from disk
  snapd::StatReply st;
  ASSERT_EQ(client_.stat(st), snapd::Wire::Ok);
  EXPECT_EQ(st.chunks, 1u);
  EXPECT_EQ(st.manifests, 1u);
}

TEST_F(SnapdDaemonTest, StatCountsTraffic) {
  snapd::StatReply before;
  ASSERT_EQ(client_.stat(before), snapd::Wire::Ok);
  const auto raw = random_bytes(512, 11);
  const auto file = snapstore::encode_chunk_file(raw.data(), raw.size(),
                                                 snapstore::CodecId::Identity);
  const ChunkKey k{snapstore::hash64(raw.data(), raw.size()), raw.size(), 0};
  ASSERT_EQ(client_.put_chunk(k, file.data(), file.size()), snapd::Wire::Ok);
  std::vector<std::uint8_t> got;
  ASSERT_EQ(client_.get_chunk(k, got), snapd::Wire::Ok);
  snapd::StatReply after;
  ASSERT_EQ(client_.stat(after), snapd::Wire::Ok);
  EXPECT_EQ(after.chunks, before.chunks + 1);
  EXPECT_EQ(after.puts, before.puts + 1);
  EXPECT_EQ(after.gets, before.gets + 1);
  EXPECT_GT(after.bytes_in, before.bytes_in);
  EXPECT_GT(after.bytes_out, before.bytes_out);
}

// ---------------------------------------------------------------------------
// the sharded store: 4 daemons, R=2
// ---------------------------------------------------------------------------

class ShardedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = "/tmp/checl_snapd_test_fleet";
    fs::remove_all(root_);
    ShardOptions opt;
    opt.replicas = 2;
    ASSERT_TRUE(store_.open_local(root_, 4, opt).ok());
  }
  void TearDown() override {
    store_.close();
    fs::remove_all(root_);
  }

  // The two replicas currently holding the manifest for `name`.
  std::vector<unsigned> manifest_shards(const std::string& name) {
    std::vector<unsigned> out;
    for (unsigned s = 0; s < store_.shard_count(); ++s) {
      snapd::ShardClient* c = store_.client(s);
      if (c == nullptr || !c->alive()) continue;
      std::uint64_t seq = 0;
      std::vector<std::uint8_t> payload;
      if (c->get_manifest(name, seq, payload) == snapd::Wire::Ok)
        out.push_back(s);
    }
    return out;
  }

  // Hard-kill shard `s` and bring a replacement up over the same root,
  // optionally with a chaos schedule armed in the replacement only.
  void revive_shard(unsigned s, const std::string& chaos_env = "") {
    snapd::SpawnedShard* sp = store_.spawned(s);
    ASSERT_NE(sp, nullptr);
    snapd::kill_snapd(*sp);
    *sp = snapd::spawn_snapd(store_.shard_root(s), 0, chaos_env);
    ASSERT_TRUE(sp->ok()) << sp->error;
    ASSERT_TRUE(store_.reconnect(s, sp->port)) << "  repro: " << repro_line();
  }

  std::string root_;
  ShardedStore store_;
  slimcr::StorageModel disk_ = slimcr::local_disk();
};

TEST_F(ShardedStoreTest, PutGetRoundTripBitExact) {
  const slimcr::Snapshot snap = make_snapshot(1, 6, 96 * 1024);
  const snapstore::PutResult put = store_.put("ck", snap, disk_);
  ASSERT_TRUE(put.status.ok()) << put.status.message;
  EXPECT_GT(put.new_chunks, 0u);
  EXPECT_TRUE(store_.contains("ck"));

  slimcr::Snapshot back;
  const snapstore::GetResult got = store_.get("ck", back, disk_);
  ASSERT_TRUE(got.status.ok()) << got.status.message;
  expect_equal(snap, back);
  EXPECT_EQ(store_.sharded_stats().failovers, 0u);
  EXPECT_EQ(store_.under_replicated_total(), 0u);

  // every chunk landed on exactly R shards
  std::unordered_map<ChunkKey, unsigned, snapstore::ChunkKeyHash> copies;
  for (unsigned s = 0; s < store_.shard_count(); ++s) {
    std::vector<snapd::ChunkEntry> listing;
    ASSERT_EQ(store_.client(s)->list_chunks(listing), snapd::Wire::Ok);
    for (const auto& e : listing) copies[e.key]++;
  }
  EXPECT_GT(copies.size(), 0u);
  for (const auto& [k, n] : copies) EXPECT_EQ(n, 2u) << "key " << k.hash;
}

TEST_F(ShardedStoreTest, RepeatPutDedupsAcrossTheFleet) {
  const slimcr::Snapshot snap = make_snapshot(2, 4, 64 * 1024);
  const snapstore::PutResult a = store_.put("a", snap, disk_);
  ASSERT_TRUE(a.status.ok());
  const snapstore::PutResult b = store_.put("b", snap, disk_);
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(b.new_chunks, 0u);
  EXPECT_EQ(b.dedup_hits, a.new_chunks);
  EXPECT_LT(b.stored_bytes, a.stored_bytes / 4);  // only the manifest

  // distributed GC: removing one name keeps the shared chunks alive
  ASSERT_TRUE(store_.remove("a").ok());
  slimcr::Snapshot back;
  ASSERT_TRUE(store_.get("b", back, disk_).status.ok());
  expect_equal(snap, back);
  ASSERT_TRUE(store_.remove("b").ok());
  for (unsigned s = 0; s < store_.shard_count(); ++s) {
    std::vector<snapd::ChunkEntry> listing;
    ASSERT_EQ(store_.client(s)->list_chunks(listing), snapd::Wire::Ok);
    EXPECT_TRUE(listing.empty()) << "shard " << s << " leaked chunks";
  }
}

TEST_F(ShardedStoreTest, RestoreFailsOverWhenAShardDies) {
  const slimcr::Snapshot snap = make_snapshot(3, 8, 80 * 1024);
  ASSERT_TRUE(store_.put("ck", snap, disk_).status.ok());

  // kill any one daemon: every chunk still has its sibling replica
  snapd::kill_snapd(*store_.spawned(1));
  slimcr::Snapshot back;
  const snapstore::GetResult got = store_.get("ck", back, disk_);
  ASSERT_TRUE(got.status.ok()) << got.status.message << "\n  repro: "
                               << repro_line();
  expect_equal(snap, back);
  EXPECT_GT(store_.sharded_stats().failovers, 0u);
}

TEST_F(ShardedStoreTest, DegradedWriteRecordsUnderReplication) {
  snapd::kill_snapd(*store_.spawned(2));
  const slimcr::Snapshot snap = make_snapshot(4, 8, 80 * 1024);
  const snapstore::PutResult put = store_.put("ck", snap, disk_);
  ASSERT_TRUE(put.status.ok()) << put.status.message;  // degraded, not failed
  EXPECT_GT(store_.sharded_stats().degraded_writes, 0u);
  EXPECT_GT(store_.under_replicated_total(), 0u);
  EXPECT_EQ(store_.under_replicated_total(),
            store_.sharded_stats().under_replicated);

  // the degraded checkpoint still restores byte-identically
  slimcr::Snapshot back;
  ASSERT_TRUE(store_.get("ck", back, disk_).status.ok());
  expect_equal(snap, back);
}

TEST_F(ShardedStoreTest, RepairRestoresFullReplication) {
  // write while one shard is down -> under-replicated residue
  snapd::kill_snapd(*store_.spawned(3));
  const slimcr::Snapshot snap = make_snapshot(5, 8, 80 * 1024);
  ASSERT_TRUE(store_.put("ck", snap, disk_).status.ok());
  ASSERT_GT(store_.under_replicated_total(), 0u);

  // revive the shard (empty disk is fine — repair re-replicates content)
  revive_shard(3);
  const snapstore::RepairReport rep = store_.repair();
  ASSERT_TRUE(rep.status.ok()) << rep.status.message;
  EXPECT_GT(rep.chunks_checked, 0u);
  EXPECT_GT(rep.replicas_restored, 0u);
  EXPECT_GT(rep.manifests_rewritten, 0u);
  EXPECT_EQ(rep.unrecoverable, 0u);
  EXPECT_EQ(store_.under_replicated_total(), 0u) << "  repro: " << repro_line();
  EXPECT_GT(store_.sharded_stats().repaired_chunks, 0u);

  // the proof of replication: kill each OTHER shard in turn — any single
  // failure leaves a complete copy reachable
  for (unsigned victim = 0; victim < store_.shard_count(); ++victim) {
    SCOPED_TRACE("victim shard " + std::to_string(victim));
    snapd::kill_snapd(*store_.spawned(victim));
    slimcr::Snapshot back;
    ASSERT_TRUE(store_.get("ck", back, disk_).status.ok())
        << "  repro: " << repro_line();
    expect_equal(snap, back);
    revive_shard(victim);
  }
}

TEST_F(ShardedStoreTest, TotalLossNamesTheShards) {
  const slimcr::Snapshot snap = make_snapshot(6, 2, 32 * 1024);
  ASSERT_TRUE(store_.put("ck", snap, disk_).status.ok());
  for (unsigned s = 0; s < store_.shard_count(); ++s)
    snapd::kill_snapd(*store_.spawned(s));
  slimcr::Snapshot back;
  const snapstore::GetResult got = store_.get("ck", back, disk_);
  ASSERT_FALSE(got.status.ok());
  // the error names which replicas went away
  EXPECT_NE(got.status.message.find("shard"), std::string::npos)
      << got.status.message;
}

TEST_F(ShardedStoreTest, StreamingSessionSealsAndAborts) {
  const auto data = random_bytes(150 * 1024, 9);
  {
    auto ses = store_.begin("live");
    ASSERT_NE(ses, nullptr);
    ASSERT_TRUE(ses->put_section("mem.0", data.data(), data.size(), disk_)
                    .status.ok());
    ASSERT_TRUE(ses->seal(disk_).status.ok());
    EXPECT_TRUE(ses->sealed());
  }
  slimcr::Snapshot back;
  ASSERT_TRUE(store_.get("live", back, disk_).status.ok());
  ASSERT_NE(back.get("mem.0"), nullptr);
  EXPECT_EQ(*back.get("mem.0"), data);

  // an aborted session reclaims its provisional chunks on every replica
  const auto fresh = random_bytes(100 * 1024, 10);
  {
    auto ses = store_.begin("tmp");
    ASSERT_TRUE(ses->put_section("mem.0", fresh.data(), fresh.size(), disk_)
                    .status.ok());
    ses->abort();
  }
  EXPECT_FALSE(store_.contains("tmp"));
  std::size_t total_files = 0;
  std::size_t live_refs = 0;
  for (unsigned s = 0; s < store_.shard_count(); ++s) {
    std::vector<snapd::ChunkEntry> listing;
    ASSERT_EQ(store_.client(s)->list_chunks(listing), snapd::Wire::Ok);
    total_files += listing.size();
  }
  // exactly the sealed manifest's chunks remain, R copies each
  live_refs = (data.size() + store_.options().chunk_bytes - 1) /
              store_.options().chunk_bytes;
  EXPECT_EQ(total_files, live_refs * 2);
}

// ---------------------------------------------------------------------------
// torture: process death mid-seal and replica corruption (the chaos sites)
// ---------------------------------------------------------------------------

TEST_F(ShardedStoreTest, ShardDeathMidSealIsSealOrAbort) {
  // seq 1: a healthy checkpoint everywhere
  const slimcr::Snapshot v1 = make_snapshot(20, 6, 64 * 1024);
  ASSERT_TRUE(store_.put("ck", v1, disk_).status.ok());
  const std::vector<unsigned> hosts = manifest_shards("ck");
  ASSERT_EQ(hosts.size(), 2u);

  // replace one manifest replica with a daemon armed to _exit(9) between the
  // manifest tmp-write and its rename — a torn-write window made real
  chaoskit::Fault death;
  death.site = chaoskit::Site::SnapdShardDeath;
  death.nth = 0;
  revive_shard(hosts[0], chaoskit::Engine::to_env(death));

  // seq 2: the victim dies mid-PutManifest; the sibling replica takes it
  const slimcr::Snapshot v2 = make_snapshot(21, 6, 64 * 1024);
  const snapstore::PutResult put = store_.put("ck", v2, disk_);
  ASSERT_TRUE(put.status.ok()) << put.status.message << "\n  repro: "
                               << repro_line();
  ASSERT_TRUE(snapd::reap_snapd(*store_.spawned(hosts[0])))
      << "chaos daemon should have died mid-seal";

  // the highest decodable seq wins: restore sees the NEW bytes
  slimcr::Snapshot back;
  ASSERT_TRUE(store_.get("ck", back, disk_).status.ok());
  expect_equal(v2, back);

  // seal-or-abort on the dead shard's disk: a clean daemon over that root
  // serves the OLD manifest intact (seq 1) — never a torn one.  With the
  // up-to-date sibling also gone, restore falls back to the old checkpoint.
  revive_shard(hosts[0]);
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(store_.client(hosts[0])->get_manifest("ck", seq, payload),
            snapd::Wire::Ok)
      << "  repro: " << repro_line();
  EXPECT_EQ(seq, 1u) << "rename happened despite _exit before it";
  snapd::kill_snapd(*store_.spawned(hosts[1]));
  slimcr::Snapshot old_back;
  ASSERT_TRUE(store_.get("ck", old_back, disk_).status.ok())
      << "  repro: " << repro_line();
  expect_equal(v1, old_back);

  // repair republishes the newest manifest to the lagging replica
  revive_shard(hosts[1]);
  const snapstore::RepairReport rep = store_.repair();
  ASSERT_TRUE(rep.status.ok());
  EXPECT_GT(rep.manifests_rewritten, 0u);
  std::uint64_t seq2 = 0;
  ASSERT_EQ(store_.client(hosts[0])->get_manifest("ck", seq2, payload),
            snapd::Wire::Ok);
  EXPECT_GT(seq2, 1u);
  slimcr::Snapshot repaired;
  ASSERT_TRUE(store_.get("ck", repaired, disk_).status.ok());
  expect_equal(v2, repaired);
}

TEST_F(ShardedStoreTest, CorruptReplicaIsDetectedAndFailedOver) {
  // the client ships a bit-flipped copy to exactly one replica of each chunk
  std::mt19937 rng(static_cast<std::uint32_t>(master_seed() + 4));
  chaoskit::Fault corrupt;
  corrupt.site = chaoskit::Site::SnapdReplicaCorrupt;
  corrupt.nth = 0;
  corrupt.arg = static_cast<std::int64_t>(rng() % 4096);
  chaoskit::Engine::instance().arm(corrupt);
  const slimcr::Snapshot snap = make_snapshot(22, 6, 64 * 1024);
  const snapstore::PutResult put = store_.put("ck", snap, disk_);
  const bool fired = chaoskit::Engine::instance().fired();
  chaoskit::Engine::instance().disarm();
  ASSERT_TRUE(put.status.ok()) << put.status.message;
  ASSERT_TRUE(fired) << "corruption never injected";

  // restore must detect the CRC mismatch and serve the clean sibling
  slimcr::Snapshot back;
  const snapstore::GetResult got = store_.get("ck", back, disk_);
  ASSERT_TRUE(got.status.ok()) << got.status.message << "\n  repro: "
                               << repro_line();
  expect_equal(snap, back);
  EXPECT_GE(store_.sharded_stats().failovers, 1u)
      << "corrupt copy served?\n  repro: " << repro_line();

  // repair rewrites the damaged copy from the good one
  const snapstore::RepairReport rep = store_.repair();
  ASSERT_TRUE(rep.status.ok());
  EXPECT_GE(rep.replicas_restored, 1u);
  // after repair every replica of every chunk verifies
  const snapstore::RepairReport clean = store_.repair();
  EXPECT_EQ(clean.replicas_restored, 0u) << "  repro: " << repro_line();
  EXPECT_EQ(clean.unrecoverable, 0u);
}

// ---------------------------------------------------------------------------
// stats plumbing: orphans_swept + the stats_json "snapd" section
// ---------------------------------------------------------------------------

TEST(SnapdStats, OrphansSweptSurfacesInStatsJson) {
  // Regression: Store::open() always counted swept orphans internally but
  // stats_json() never printed the field.
  const std::string root = "/tmp/checl_snapd_test_orphans";
  fs::remove_all(root);
  {
    snapstore::Store st;
    ASSERT_TRUE(st.open(root).ok());
    slimcr::Snapshot snap = make_snapshot(30, 2, 32 * 1024);
    ASSERT_TRUE(st.put("ck", snap, slimcr::local_disk()).status.ok());
  }
  // fabricate a mid-stream crash: a chunk file no manifest references
  {
    std::ofstream orphan(root + "/chunks/00000000deadbeef-128.chk",
                         std::ios::binary);
    orphan << "SNAPCHK1 payload that no manifest knows about";
  }
  snapstore::Store st;
  ASSERT_TRUE(st.open(root).ok());
  EXPECT_EQ(st.stats().orphans_swept, 1u);
  const std::string js = checl::stats_json(nullptr, &st);
  EXPECT_NE(js.find("\"orphans_swept\": 1"), std::string::npos) << js;
  // a local store reports no snapd section
  EXPECT_NE(js.find("\"snapd\": null"), std::string::npos) << js;
  fs::remove_all(root);
}

TEST(SnapdStats, ShardedStoreReportsSnapdSection) {
  const std::string root = "/tmp/checl_snapd_test_statsjson";
  fs::remove_all(root);
  ShardedStore store;
  ShardOptions opt;
  opt.replicas = 2;
  ASSERT_TRUE(store.open_local(root, 4, opt).ok());
  slimcr::Snapshot snap = make_snapshot(31, 2, 32 * 1024);
  ASSERT_TRUE(store.put("ck", snap, slimcr::local_disk()).status.ok());
  const std::string js = checl::stats_json(nullptr, &store);
  EXPECT_NE(js.find("\"snapd\": {"), std::string::npos) << js;
  EXPECT_NE(js.find("\"shards\": 4"), std::string::npos) << js;
  EXPECT_NE(js.find("\"replicas\": 2"), std::string::npos) << js;
  store.close();
  fs::remove_all(root);
}

// ---------------------------------------------------------------------------
// the engine on top: CHECL_SNAP_SHARDS routes checkpoints through the fleet
// ---------------------------------------------------------------------------

const char* kSrc = R"CL(
__kernel void add1(__global float* d, int n) {
  int i = get_global_id(0);
  if (i < n) d[i] = d[i] + 1.0f;
}
)CL";

class SnapdEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs::remove_all(store_root());
    ::setenv("CHECL_SNAP_SHARDS", "2", 1);
    auto& rt = checl::CheclRuntime::instance();
    rt.reset_all();
    checl::NodeConfig node = checl::dual_node();
    node.transport = proxy::Transport::Process;
    rt.set_node(node);
    rt.store_checkpoints = true;
    rt.store_root = store_root();
    checl::bind_checl();
  }
  void TearDown() override {
    ::unsetenv("CHECL_SNAP_SHARDS");
    checl::CheclRuntime::instance().reset_all();
    checl::bind_native();
    fs::remove_all(store_root());
  }
  static const char* store_root() { return "/tmp/checl_snapd_test_engine"; }
  checl::cpr::Engine& engine() {
    return checl::CheclRuntime::instance().engine();
  }
};

TEST_F(SnapdEngineTest, CheckpointAndRestartThroughShardedStore) {
  // a real OpenCL scenario checkpointed through 2 shard daemons
  cl_uint np = 0;
  ASSERT_EQ(clGetPlatformIDs(0, nullptr, &np), CL_SUCCESS);
  std::vector<cl_platform_id> plats(np);
  clGetPlatformIDs(np, plats.data(), nullptr);
  cl_platform_id platform = nullptr;
  cl_device_id device = nullptr;
  for (cl_platform_id p : plats) {
    if (clGetDeviceIDs(p, CL_DEVICE_TYPE_GPU, 1, &device, nullptr) ==
        CL_SUCCESS) {
      platform = p;
      break;
    }
  }
  ASSERT_NE(platform, nullptr);
  cl_int err = CL_SUCCESS;
  cl_context ctx = clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_command_queue q = clCreateCommandQueue(ctx, device, 0, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  const int n = 2048;
  std::vector<float> zeros(n, 0.0f);
  cl_mem buf = clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                              n * 4, zeros.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_program prog = clCreateProgramWithSource(ctx, 1, &kSrc, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(prog, 1, &device, "", nullptr, nullptr), CL_SUCCESS);
  cl_kernel kern = clCreateKernel(prog, "add1", &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kern, 0, sizeof buf, &buf), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kern, 1, sizeof n, &n), CL_SUCCESS);
  const std::size_t g = n;
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(clEnqueueNDRangeKernel(q, kern, 1, nullptr, &g, nullptr, 0,
                                     nullptr, nullptr),
              CL_SUCCESS);
  ASSERT_EQ(clFinish(q), CL_SUCCESS);

  checl::cpr::PhaseTimes pt;
  ASSERT_EQ(engine().checkpoint("ckpt_sharded", &pt), CL_SUCCESS)
      << engine().last_error();
  EXPECT_GT(pt.write_ns, 0u);

  // the engine really opened the sharded backend
  auto* sharded = dynamic_cast<ShardedStore*>(engine().store_if_open());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->shard_count(), 2u);
  const std::string js = checl::stats_json();
  EXPECT_NE(js.find("\"snapd\": {"), std::string::npos) << js;
  EXPECT_NE(js.find("\"shards\": 2"), std::string::npos) << js;

  // mutate, restore, verify rollback through the fleet
  for (int i = 0; i < 2; ++i)
    ASSERT_EQ(clEnqueueNDRangeKernel(q, kern, 1, nullptr, &g, nullptr, 0,
                                     nullptr, nullptr),
              CL_SUCCESS);
  ASSERT_EQ(clFinish(q), CL_SUCCESS);
  ASSERT_EQ(engine().restart_in_place("ckpt_sharded", std::nullopt, nullptr),
            CL_SUCCESS)
      << engine().last_error();
  float v = -1;
  ASSERT_EQ(clEnqueueReadBuffer(q, buf, CL_TRUE, 0, 4, &v, 0, nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_FLOAT_EQ(v, 3.0f);

  clReleaseKernel(kern);
  clReleaseProgram(prog);
  clReleaseMemObject(buf);
  clReleaseCommandQueue(q);
  clReleaseContext(ctx);
}

TEST_F(SnapdEngineTest, LastErrorNamesTheDeadShard) {
  // checkpoint once so the fleet is up, then kill every daemon: the next
  // checkpoint must fail and last_error() must say which shard went away
  ASSERT_EQ(engine().checkpoint("ck", nullptr), CL_SUCCESS)
      << engine().last_error();
  auto* sharded = dynamic_cast<ShardedStore*>(engine().store_if_open());
  ASSERT_NE(sharded, nullptr);
  for (unsigned s = 0; s < sharded->shard_count(); ++s)
    snapd::kill_snapd(*sharded->spawned(s));
  ASSERT_NE(engine().checkpoint("ck2", nullptr), CL_SUCCESS);
  EXPECT_NE(engine().last_error().find("shard"), std::string::npos)
      << engine().last_error();
}

}  // namespace
