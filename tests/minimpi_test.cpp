// minimpi_test.cpp — the mini-MPI substrate: barrier, send/recv, allreduce,
// and the coordinated-checkpoint protocol behind Figure 6.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "checl/checl.h"
#include "minimpi/comm.h"
#include "workloads/factories.h"
#include "workloads/harness.h"

namespace {

TEST(MiniMpi, BarrierSynchronizesRanks) {
  std::atomic<int> arrived{0};
  std::atomic<bool> violated{false};
  minimpi::World::run(4, [&](minimpi::Comm& comm) {
    arrived.fetch_add(1);
    comm.barrier();
    if (arrived.load() != 4) violated.store(true);
    comm.barrier();  // reusable
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(MiniMpi, SendRecvByTag) {
  std::vector<int> received(4, -1);
  minimpi::World::run(4, [&](minimpi::Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    std::vector<std::uint8_t> payload{static_cast<std::uint8_t>(comm.rank())};
    comm.send(next, 7, payload);
    const auto got = comm.recv(prev, 7);
    received[static_cast<std::size_t>(comm.rank())] = got.at(0);
  });
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(received[static_cast<std::size_t>(r)], (r + 3) % 4);
}

TEST(MiniMpi, TagsDoNotCross) {
  bool ok = true;
  minimpi::World::run(2, [&](minimpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, {std::uint8_t{10}});
      comm.send(1, 2, {std::uint8_t{20}});
    } else {
      // receive in the opposite order of sending: tags must separate them
      const auto b = comm.recv(0, 2);
      const auto a = comm.recv(0, 1);
      if (a.at(0) != 10 || b.at(0) != 20) ok = false;
    }
  });
  EXPECT_TRUE(ok);
}

TEST(MiniMpi, AllreduceSum) {
  std::vector<double> results(3, 0);
  minimpi::World::run(3, [&](minimpi::Comm& comm) {
    const double v = static_cast<double>(comm.rank() + 1);
    const double total = comm.allreduce_sum(v);
    results[static_cast<std::size_t>(comm.rank())] = total;
    // repeated reductions keep working
    const double total2 = comm.allreduce_sum(1.0);
    if (total2 != 3.0) results[static_cast<std::size_t>(comm.rank())] = -1;
  });
  for (const double r : results) EXPECT_DOUBLE_EQ(r, 6.0);
}

class MiniMpiCheckpoint : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override {
    checl::CheclRuntime::instance().reset_all();
    checl::bind_native();
    std::remove("/tmp/checl_minimpi_test.ckpt");
  }
};

TEST_P(MiniMpiCheckpoint, CoordinatedCheckpointAllRanks) {
  const int nranks = GetParam();
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;
  node.storage = slimcr::nfs();
  workloads::fresh_process(workloads::Binding::CheCL, node);

  std::atomic<int> verified{0};
  std::vector<checl::cpr::PhaseTimes> times(static_cast<std::size_t>(nranks));
  minimpi::World::run(nranks, [&](minimpi::Comm& comm) {
    workloads::Env env;
    env.shrink = 8;
    if (workloads::open_env(env, CL_DEVICE_TYPE_GPU, "NVIDIA") != CL_SUCCESS)
      return;
    auto md = workloads::make_md();
    if (md->setup(env) != CL_SUCCESS || md->run(env) != CL_SUCCESS) return;
    times[static_cast<std::size_t>(comm.rank())] =
        comm.coordinated_checkpoint("/tmp/checl_minimpi_test.ckpt");
    if (md->verify(env)) verified.fetch_add(1);
    md->teardown(env);
    workloads::close_env(env);
  });
  EXPECT_EQ(verified.load(), nranks);
  // all ranks observed the same checkpoint
  for (int r = 1; r < nranks; ++r) {
    EXPECT_EQ(times[static_cast<std::size_t>(r)].file_bytes, times[0].file_bytes);
    EXPECT_EQ(times[static_cast<std::size_t>(r)].write_ns, times[0].write_ns);
  }
  EXPECT_GT(times[0].file_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Ranks, MiniMpiCheckpoint, ::testing::Values(1, 2, 4));

TEST(MiniMpiSnapstore, GlobalSnapshotDedupsReplicatedBuffers) {
  // Every rank runs the same deterministic MD problem, so the global snapshot
  // holds N identical copies of each buffer.  On the shared store (NFS in the
  // paper's setup) those replicas dedup to one set of pool chunks: bytes on
  // storage stay near the 1-rank size while the logical payload scales with
  // the rank count.
  const char* root = "/tmp/checl_minimpi_store_test";
  std::filesystem::remove_all(root);
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;
  node.storage = slimcr::nfs();
  workloads::fresh_process(workloads::Binding::CheCL, node);
  auto& rt = checl::CheclRuntime::instance();
  rt.store_checkpoints = true;
  rt.store_root = root;

  checl::cpr::PhaseTimes pt;
  minimpi::World::run(4, [&](minimpi::Comm& comm) {
    workloads::Env env;
    env.shrink = 8;
    if (workloads::open_env(env, CL_DEVICE_TYPE_GPU, "NVIDIA") != CL_SUCCESS)
      return;
    auto md = workloads::make_md();
    if (md->setup(env) == CL_SUCCESS) md->run(env);
    const auto times =
        comm.coordinated_checkpoint("/tmp/checl_minimpi_test.ckpt");
    if (comm.rank() == 0) pt = times;
    md->teardown(env);
    workloads::close_env(env);
  });

  ASSERT_GT(pt.logical_bytes, 0u);
  // four replicated rank images stored as (roughly) one
  EXPECT_LT(pt.file_bytes, pt.logical_bytes / 2);
  snapstore::StoreIface* st = rt.engine().store_if_open();
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->stats().manifests, 1u);
  EXPECT_GT(st->stats().dedup_hits, 0u);

  checl::CheclRuntime::instance().reset_all();
  checl::bind_native();
  std::filesystem::remove_all(root);
  std::remove("/tmp/checl_minimpi_test.ckpt");
}

TEST(MiniMpiCheckpointShape, TimeGrowsWithRanksAndSize) {
  // the Figure 6 shape at test scale: more ranks => bigger global snapshot
  // (each rank owns buffers) and more aggregation overhead
  auto run_case = [](int nranks, unsigned shrink) -> std::uint64_t {
    checl::NodeConfig node = checl::dual_node();
    node.transport = proxy::Transport::Thread;
    node.storage = slimcr::nfs();
    workloads::fresh_process(workloads::Binding::CheCL, node);
    std::uint64_t total = 0;
    minimpi::World::run(nranks, [&](minimpi::Comm& comm) {
      workloads::Env env;
      env.shrink = shrink;
      if (workloads::open_env(env, CL_DEVICE_TYPE_GPU, "NVIDIA") != CL_SUCCESS)
        return;
      auto md = workloads::make_md();
      if (md->setup(env) == CL_SUCCESS) md->run(env);
      const auto pt = comm.coordinated_checkpoint("/tmp/checl_minimpi_test.ckpt");
      if (comm.rank() == 0) total = pt.total_ns();
      md->teardown(env);
      workloads::close_env(env);
    });
    checl::CheclRuntime::instance().reset_all();
    return total;
  };
  const std::uint64_t one_rank = run_case(1, 8);
  const std::uint64_t four_ranks = run_case(4, 8);
  const std::uint64_t four_ranks_bigger = run_case(4, 2);
  EXPECT_GT(four_ranks, one_rank);
  EXPECT_GT(four_ranks_bigger, four_ranks);
  checl::bind_native();
  std::remove("/tmp/checl_minimpi_test.ckpt");
}

}  // namespace
