// ipc_micro.cpp — ablation microbenchmark for the API-proxy IPC fast path.
//
// Measures real wall-clock cost of the app<->proxy transport (Process
// transport, a genuinely forked daemon) with each fast-path feature
// independently toggled:
//   * writev  — scatter-gather framing + buffered receive (vs. seed framing)
//   * batch   — client-side queueing of fire-and-forget calls
//   * shm     — shared-memory bulk-data plane for payloads >= threshold
//
// Two axes:
//   small_call     — back-to-back clSetKernelArg-sized RPCs (batch + writev
//                    dominate here)
//   large_transfer — enqueue_write / enqueue_read bulk payloads (shm
//                    dominates here)
//
// Emits one JSON object on stdout so the perf trajectory is tracked across
// PRs.  --smoke shrinks the workload, verifies data integrity on every
// configuration, and exits non-zero on any mismatch (registered as a tier-1
// ctest).
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/stats.h"
#include "proxy/spawn.h"
#include "simcl/specs.h"

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

struct Toggles {
  const char* name;
  bool writev;
  bool batch;
  bool shm;
};

struct Fixture {
  proxy::Spawned sp;
  proxy::RemoteHandle ctx = 0;
  proxy::RemoteHandle queue = 0;
  proxy::RemoteHandle buf = 0;
  proxy::RemoteHandle kernel = 0;

  bool ok() const { return sp.ok(); }
};

const char* kSrc =
    "__kernel void scale(__global float* d, float s, int n) {"
    "  int i = get_global_id(0); if (i < n) d[i] = d[i] * s; }";

// Brings up a proxy and a context/queue/buffer/kernel to beat on.
Fixture make_fixture(const Toggles& t, std::size_t buf_bytes) {
  Fixture f;
  proxy::SpawnOptions opts;
  opts.use_writev = t.writev;
  opts.use_shm = t.shm;
  // ring holds two transfers in flight plus header slack
  opts.shm_ring_bytes = 2 * buf_bytes + (1u << 20);
  f.sp = proxy::spawn_proxy(proxy::Transport::Process, opts);
  if (!f.sp.ok()) return f;
  proxy::Client& c = *f.sp.client();
  c.set_batching(t.batch);
  proxy::IpcCosts costs;
  costs.spawn_ns = 0;
  if (c.configure(simcl::default_platforms(), costs, true) != CL_SUCCESS) {
    f.sp.stop();
    return f;
  }
  std::vector<proxy::RemoteHandle> plats, devs;
  cl_uint n = 0;
  c.get_platform_ids(4, plats, n);
  c.get_device_ids(plats[0], CL_DEVICE_TYPE_GPU, 4, devs, n);
  c.create_context({}, {devs.data(), 1}, f.ctx);
  c.create_queue(f.ctx, devs[0], 0, f.queue);
  c.create_buffer(f.ctx, CL_MEM_READ_WRITE, buf_bytes, {}, f.buf);
  proxy::RemoteHandle prog = 0;
  c.create_program_with_source(f.ctx, kSrc, prog);
  c.build_program(prog, {devs.data(), 1}, "");
  c.create_kernel(prog, "scale", f.kernel);
  c.retain_release(proxy::Op::ReleaseProgram, prog);
  return f;
}

struct SmallCallResult {
  std::uint64_t calls = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t roundtrips = 0;
  std::uint64_t syscalls = 0;
  [[nodiscard]] double calls_per_sec() const {
    return wall_ns == 0 ? 0.0 : 1e9 * static_cast<double>(calls) /
                                    static_cast<double>(wall_ns);
  }
};

SmallCallResult run_small_calls(Fixture& f, std::uint64_t calls) {
  proxy::Client& c = *f.sp.client();
  const float s = 1.0f;
  SmallCallResult res;
  res.calls = calls;
  const auto before = c.stats();
  const auto before_ch = c.channel_stats();
  const std::uint64_t t0 = now_ns();
  for (std::uint64_t i = 0; i < calls; ++i) {
    c.set_kernel_arg_bytes(f.kernel, 1,
                           {reinterpret_cast<const std::uint8_t*>(&s), 4});
  }
  c.sync();  // drain any batch so the tail is counted
  res.wall_ns = now_ns() - t0;
  res.roundtrips = c.stats().rpc_roundtrips - before.rpc_roundtrips;
  const auto after_ch = c.channel_stats();
  res.syscalls = (after_ch.sys_sends + after_ch.sys_reads) -
                 (before_ch.sys_sends + before_ch.sys_reads);
  return res;
}

struct TransferResult {
  std::uint64_t bytes = 0;
  std::uint64_t reps = 0;
  std::uint64_t write_ns = 0;
  std::uint64_t read_ns = 0;
  std::uint64_t shm_msgs = 0;
  std::uint64_t shm_fallbacks = 0;
  bool verified = false;
  [[nodiscard]] double mbps(std::uint64_t ns) const {
    return ns == 0 ? 0.0 : static_cast<double>(bytes * reps) / 1048576.0 /
                               (static_cast<double>(ns) / 1e9);
  }
};

// Best-of-`trials` per phase (min wall time): the box the bench runs on can
// be a noisy single core, and the minimum is the least-perturbed estimate of
// transport capability.
TransferResult run_transfers(Fixture& f, std::size_t bytes, std::uint64_t reps,
                             int trials) {
  proxy::Client& c = *f.sp.client();
  TransferResult res;
  res.bytes = bytes;
  res.reps = reps;
  std::vector<std::uint8_t> out(bytes);
  std::vector<std::uint8_t> data(bytes);
  for (std::size_t i = 0; i < bytes; ++i)
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  proxy::RemoteHandle ev = 0;
  const auto ch0 = c.channel_stats();
  res.write_ns = ~0ull;
  res.read_ns = ~0ull;
  res.verified = true;
  for (int trial = 0; trial < trials; ++trial) {
    std::uint64_t t0 = now_ns();
    for (std::uint64_t i = 0; i < reps; ++i)
      c.enqueue_write(f.queue, f.buf, 0, data, true, ev);
    const std::uint64_t w = now_ns() - t0;
    if (w < res.write_ns) res.write_ns = w;

    t0 = now_ns();
    for (std::uint64_t i = 0; i < reps; ++i)
      c.enqueue_read(f.queue, f.buf, 0, bytes, out.data(), false, ev);
    const std::uint64_t r = now_ns() - t0;
    if (r < res.read_ns) res.read_ns = r;
    res.verified = res.verified && std::memcmp(out.data(), data.data(), bytes) == 0;
  }
  const auto ch1 = c.channel_stats();
  res.shm_msgs = (ch1.shm_msgs_sent + ch1.shm_msgs_recvd) -
                 (ch0.shm_msgs_sent + ch0.shm_msgs_recvd);
  res.shm_fallbacks = ch1.shm_fallbacks - ch0.shm_fallbacks;
  return res;
}

// The JSON is accumulated so --json-out can mirror stdout into a file
// (CI tracks the per-RPC trajectory as BENCH_ipc.json).
std::string g_json;

void J(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n > 0) {
    std::string s(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(s.data(), static_cast<std::size_t>(n) + 1, fmt, ap2);
    g_json += s;
  }
  va_end(ap2);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::uint64_t small_calls = 20000;
  std::size_t transfer_bytes = 16u << 20;  // 16 MiB
  std::uint64_t transfer_reps = 16;
  const char* only = nullptr;  // run just one config (A/B runs need long
                               // timed regions without paying for the rest)
  const char* json_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--calls") == 0 && i + 1 < argc)
      small_calls = std::strtoull(argv[++i], nullptr, 10);
    if (std::strcmp(argv[i], "--bytes") == 0 && i + 1 < argc)
      transfer_bytes = std::strtoull(argv[++i], nullptr, 10);
    if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc)
      only = argv[++i];
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc)
      json_out = argv[++i];
  }
  if (smoke) {
    small_calls = 2000;
    transfer_bytes = 1u << 20;
    transfer_reps = 4;
  }

  const Toggles small_configs[] = {
      {"seed", false, false, false},
      {"writev", true, false, false},
      {"batch", false, true, false},
      {"writev_batch", true, true, false},
  };
  const Toggles large_configs[] = {
      {"socket", true, false, false},
      {"shm", true, false, true},
  };

  int failures = 0;
  J("{\n  \"bench\": \"ipc_micro\",\n  \"smoke\": %s,\n",
              smoke ? "true" : "false");

  double seed_rate = 0.0, best_rate = 0.0;
  bool first_row = true;
  J("  \"small_call\": [\n");
  for (std::size_t i = 0; i < std::size(small_configs); ++i) {
    const Toggles& t = small_configs[i];
    if (only != nullptr && std::strcmp(t.name, only) != 0) continue;
    Fixture f = make_fixture(t, 4096);
    if (!f.ok()) {
      std::fprintf(stderr, "ipc_micro: spawn failed for %s: %s\n", t.name,
                   f.sp.error().c_str());
      ++failures;
      continue;
    }
    const SmallCallResult r = run_small_calls(f, small_calls);
    if (f.sp.client()->deferred_error() != CL_SUCCESS) ++failures;
    if (std::strcmp(t.name, "seed") == 0) seed_rate = r.calls_per_sec();
    if (r.calls_per_sec() > best_rate) best_rate = r.calls_per_sec();
    J("%s    {\"config\": \"%s\", \"writev\": %s, \"batch\": %s, "
                "\"calls\": %llu, \"wall_ns\": %llu, \"calls_per_sec\": %.0f, "
                "\"rpc_roundtrips\": %llu, \"syscalls\": %llu}\n",
                first_row ? "" : "    ,",
                t.name, t.writev ? "true" : "false", t.batch ? "true" : "false",
                static_cast<unsigned long long>(r.calls),
                static_cast<unsigned long long>(r.wall_ns), r.calls_per_sec(),
                static_cast<unsigned long long>(r.roundtrips),
                static_cast<unsigned long long>(r.syscalls));
    first_row = false;
    f.sp.stop();
  }
  J("  ],\n");

  double socket_bw = 0.0, shm_bw = 0.0;
  std::string last_stats = "null";
  first_row = true;
  J("  \"large_transfer\": [\n");
  for (std::size_t i = 0; i < std::size(large_configs); ++i) {
    const Toggles& t = large_configs[i];
    if (only != nullptr && std::strcmp(t.name, only) != 0) continue;
    Fixture f = make_fixture(t, transfer_bytes);
    if (!f.ok()) {
      std::fprintf(stderr, "ipc_micro: spawn failed for %s: %s\n", t.name,
                   f.sp.error().c_str());
      ++failures;
      continue;
    }
    const TransferResult r =
        run_transfers(f, transfer_bytes, transfer_reps, smoke ? 2 : 3);
    if (!r.verified) {
      std::fprintf(stderr, "ipc_micro: data mismatch on %s\n", t.name);
      ++failures;
    }
    if (t.shm && r.shm_msgs == 0) {
      std::fprintf(stderr, "ipc_micro: shm config took no shm path\n");
      ++failures;
    }
    const double bw = (r.mbps(r.write_ns) + r.mbps(r.read_ns)) / 2.0;
    if (t.shm)
      shm_bw = bw;
    else
      socket_bw = bw;
    J("%s    {\"config\": \"%s\", \"shm\": %s, \"bytes\": %llu, "
                "\"write_MBps\": %.1f, \"read_MBps\": %.1f, \"shm_msgs\": %llu, "
                "\"shm_fallbacks\": %llu, \"verified\": %s}\n",
                first_row ? "" : "    ,", t.name, t.shm ? "true" : "false",
                static_cast<unsigned long long>(r.bytes), r.mbps(r.write_ns),
                r.mbps(r.read_ns), static_cast<unsigned long long>(r.shm_msgs),
                static_cast<unsigned long long>(r.shm_fallbacks),
                r.verified ? "true" : "false");
    first_row = false;
    // full counter dump through the shared helper (keeps new counters from
    // needing a new hand-rolled field here)
    last_stats = checl::stats_json(f.sp.client(), nullptr);
    f.sp.stop();
  }
  J("  ],\n");

  J("  \"speedup\": {\"small_call_best_vs_seed\": %.2f, "
              "\"large_shm_vs_socket\": %.2f},\n",
              seed_rate > 0 ? best_rate / seed_rate : 0.0,
              socket_bw > 0 ? shm_bw / socket_bw : 0.0);
  J("  \"stats\": %s,\n", last_stats.c_str());
  J("  \"failures\": %d\n}\n", failures);

  std::fputs(g_json.c_str(), stdout);
  if (json_out != nullptr) {
    std::FILE* f = std::fopen(json_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ipc_micro: cannot write %s\n", json_out);
      return 1;
    }
    std::fputs(g_json.c_str(), f);
    std::fclose(f);
  }
  return failures == 0 ? 0 : 1;
}
