// fig8_migration_prediction.cpp — reproduces Figure 8: migration cost
// prediction.  The model Tm = alpha*M + Tr + beta (eq. 1) is calibrated by
// least squares on the measured migrations, then predicted vs actual and the
// checkpoint file size are reported per benchmark.
#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "benchkit/table.h"
#include "core/migration.h"
#include "simcl/progcache.h"

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  std::printf(
      "=== Figure 8: Migration cost prediction (Tm = alpha*M + Tr + beta) ===\n%s\n%s\n\n",
      opt.ramdisk ? "storage: RAM disk (runtime processor selection mode)"
                  : "storage: local disk",
      opt.warm_cache
          ? "Tr: warm compile cache (bytecode deserialize on restart)"
          : "Tr: cold (full recompile on restart — the paper's setting)");
  if (opt.warm_cache)
    std::filesystem::remove_all(bench::clc_cache_dir("fig8"));

  auto& rt = checl::CheclRuntime::instance();
  for (const auto& cfg : bench::paper_configs()) {
    checl::NodeConfig node = bench::node_for(cfg);
    if (opt.ramdisk) node.storage = slimcr::ram_disk();
    if (opt.warm_cache) node.clc_cache.root = bench::clc_cache_dir("fig8");
    std::printf("--- %s ---\n", cfg.label);

    struct Row {
      std::string name;
      checl::migration::Sample sample;
    };
    std::vector<Row> rows;
    for (const auto& entry : workloads::suite()) {
      if (!opt.only.empty() && entry.name != opt.only) continue;
      auto w = entry.make();
      if (!w->executes_kernel()) continue;
      workloads::fresh_process(workloads::Binding::CheCL, node);
      rt.checkpoint_path = bench::ckpt_path("fig8");
      workloads::Env env;
      env.shrink = opt.shrink;
      if (workloads::open_env(env, cfg.device_type, cfg.platform_substr) !=
          CL_SUCCESS)
        continue;
      if (w->setup(env) != CL_SUCCESS || w->run(env) != CL_SUCCESS) {
        w->teardown(env);
        workloads::close_env(env);
        continue;
      }
      // migration = checkpoint + restart (paper: total migration cost)
      checl::cpr::PhaseTimes pt;
      checl::cpr::RestartBreakdown bd;
      if (rt.engine().checkpoint(bench::ckpt_path("fig8"), &pt) != CL_SUCCESS ||
          rt.engine().restart_in_place(bench::ckpt_path("fig8"), std::nullopt,
                                       &bd) != CL_SUCCESS) {
        w->teardown(env);
        workloads::close_env(env);
        continue;
      }
      Row row;
      row.name = entry.name;
      row.sample.file_bytes = pt.file_bytes;
      row.sample.total_ns = pt.total_ns() + bd.total_ns();
      // Tr: program recompilation portion of the restart
      row.sample.recompile_ns =
          bd.class_ns[static_cast<std::size_t>(checl::ObjType::Program)];
      rows.push_back(std::move(row));
      w->teardown(env);
      workloads::close_env(env);
    }

    std::vector<checl::migration::Sample> samples;
    samples.reserve(rows.size());
    for (const Row& r : rows) samples.push_back(r.sample);
    const checl::migration::Model model = checl::migration::fit(samples);

    benchkit::Table table({"Benchmark", "file (MB)", "Tr (s)", "actual (s)",
                           "predicted (s)", "error (%)"});
    double max_err = 0;
    for (const Row& r : rows) {
      const std::uint64_t pred =
          model.predict_ns(r.sample.file_bytes, r.sample.recompile_ns);
      const double err =
          100.0 * (static_cast<double>(pred) - static_cast<double>(r.sample.total_ns)) /
          static_cast<double>(r.sample.total_ns);
      max_err = std::max(max_err, std::abs(err));
      table.add_row({r.name,
                     benchkit::fmt("%.2f", static_cast<double>(r.sample.file_bytes) / 1e6),
                     benchkit::sec(r.sample.recompile_ns, 3),
                     benchkit::sec(r.sample.total_ns, 3), benchkit::sec(pred, 3),
                     benchkit::fmt("%+.1f", err)});
    }
    table.print();
    std::printf(
        "model: alpha = %.3f ns/byte (~%.1f MB/s effective), beta = %.1f ms; "
        "max |error| = %.1f%%\n\n",
        model.alpha_ns_per_byte,
        model.alpha_ns_per_byte > 0 ? 1e3 / model.alpha_ns_per_byte : 0.0,
        model.beta_ns / 1e6, max_err);
  }
  return 0;
}
