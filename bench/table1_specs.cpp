// table1_specs.cpp — reproduces Table I: system specifications, including
// *measured* PCIe bandwidths (32 MB probe transfers, as in the paper) and
// file-system bandwidths per storage model.
#include <cstdio>

#include "bench_common.h"
#include "benchkit/table.h"
#include "slimcr/snapshot.h"

namespace {

// Measured bandwidth of one 32 MB probe transfer through the public API
// (clamped to the device's allocation limit).
double probe_bw(workloads::Env& env, bool h2d) {
  cl_ulong max_alloc = 32u << 20;
  clGetDeviceInfo(env.device, CL_DEVICE_MAX_MEM_ALLOC_SIZE, sizeof max_alloc,
                  &max_alloc, nullptr);
  const std::size_t bytes =
      std::min<std::size_t>(32u << 20, static_cast<std::size_t>(max_alloc));
  std::vector<std::uint8_t> host(bytes, 0x7);
  cl_int err = CL_SUCCESS;
  cl_mem buf = clCreateBuffer(env.ctx, CL_MEM_READ_WRITE, bytes, nullptr, &err);
  if (err != CL_SUCCESS) return 0;
  const std::uint64_t t0 = workloads::now_ns();
  if (h2d)
    clEnqueueWriteBuffer(env.queue, buf, CL_TRUE, 0, bytes, host.data(), 0,
                         nullptr, nullptr);
  else
    clEnqueueReadBuffer(env.queue, buf, CL_TRUE, 0, bytes, host.data(), 0,
                        nullptr, nullptr);
  const std::uint64_t dt = workloads::now_ns() - t0;
  clReleaseMemObject(buf);
  // report at hardware scale (the simulation runs all rates / kRateScale)
  return dt > 0 ? static_cast<double>(bytes) / (static_cast<double>(dt) / 1e9) /
                      1e9 * simcl::kBandwidthScale
                : 0;
}

double probe_storage(const slimcr::StorageModel& sm, bool write_side) {
  // 16 MB probe file through the model (sequential block I/O, Bonnie++-style)
  slimcr::Snapshot snap;
  snap.set("probe", std::vector<std::uint8_t>(16u << 20, 0x42));
  const std::string path = "/tmp/checl_table1_probe.bin";
  const slimcr::IoResult wr = snap.save(path, sm);
  if (!wr.ok) return 0;
  if (write_side)
    return static_cast<double>(wr.bytes) /
           (static_cast<double>(wr.duration_ns) / 1e9) / 1e6 * slimcr::kRateScale;
  slimcr::Snapshot in;
  const slimcr::IoResult rd = in.load(path, sm);
  return rd.ok ? static_cast<double>(rd.bytes) /
                     (static_cast<double>(rd.duration_ns) / 1e9) / 1e6 *
                     slimcr::kRateScale
               : 0;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::printf("=== Table I: System specifications (simulated testbed) ===\n\n");

  checl::NodeConfig node = checl::dual_node();
  workloads::fresh_process(workloads::Binding::Native, node);

  benchkit::Table devices({"Device", "Type", "CUs", "Clock(MHz)", "GlobalMem(MB)",
                           "MaxWG", "PCIe HtoD(GB/s)", "PCIe DtoH(GB/s)"});
  for (const auto& cfg : bench::paper_configs()) {
    workloads::fresh_process(workloads::Binding::Native, node);
    workloads::Env env;
    if (workloads::open_env(env, cfg.device_type, cfg.platform_substr) != CL_SUCCESS)
      continue;
    char name[128] = {};
    clGetDeviceInfo(env.device, CL_DEVICE_NAME, sizeof name, name, nullptr);
    cl_uint cus = 0;
    clGetDeviceInfo(env.device, CL_DEVICE_MAX_COMPUTE_UNITS, sizeof cus, &cus, nullptr);
    cl_uint clock = 0;
    clGetDeviceInfo(env.device, CL_DEVICE_MAX_CLOCK_FREQUENCY, sizeof clock, &clock,
                    nullptr);
    const double h2d = probe_bw(env, true);
    const double d2h = probe_bw(env, false);
    devices.add_row({name,
                     cfg.device_type == CL_DEVICE_TYPE_GPU ? "GPU" : "CPU",
                     benchkit::fmt("%u", cus), benchkit::fmt("%u", clock),
                     benchkit::fmt("%llu",
                                   static_cast<unsigned long long>(
                                       env.device_mem_bytes >> 20)),
                     benchkit::fmt("%zu", env.max_work_group_size),
                     benchkit::fmt("%.2f", h2d), benchkit::fmt("%.2f", d2h)});
    workloads::close_env(env);
  }
  devices.print();
  std::printf(
      "\npaper Table I: HtoD 5.35 GB/s, DtoH 4.87 GB/s on the PCIe bus\n"
      "(memory sizes scaled 1/16, see DESIGN.md)\n\n");

  benchkit::Table storage({"File system", "Write (MB/s)", "Read (MB/s)"});
  for (const auto& sm :
       {slimcr::ram_disk(), slimcr::local_disk(), slimcr::nfs()}) {
    storage.add_row({sm.name, benchkit::fmt("%.1f", probe_storage(sm, true)),
                     benchkit::fmt("%.1f", probe_storage(sm, false))});
  }
  storage.print();
  std::printf(
      "\npaper Table I: RAM disk 2881/4800, local 110/106, NFS 72.5/21.2 MB/s\n");
  return 0;
}
