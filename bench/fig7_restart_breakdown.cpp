// fig7_restart_breakdown.cpp — reproduces Figure 7: timing results for
// recreating OpenCL objects on restart, broken down by object class
// (platform, device, context, cmd_que, mem, sampler, prog, kernel, event).
//
// --parallel / --no-parallel, --batch / --no-batch, --workers N select the
// restore-executor configuration for the figure run.  --smoke runs the
// parallel-restore ablation instead: a multi-program workload restored under
// {serial, batch, parallel, parallel+batch}, JSON on stdout, and fails unless
// parallel+batch beats serial on recreation_ns.  A rollback entry synthesizes
// a checkpoint whose kernel cannot be recreated and verifies the transactional
// executor leaves nothing behind.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "simcl/progcache.h"
#include "benchkit/table.h"
#include "core/replay/codec.h"
#include "slimcr/snapshot.h"

namespace {

void set_proxy_node(const std::string& cache_root = "") {
  auto& rt = checl::CheclRuntime::instance();
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Process;
  node.clc_cache.root = cache_root;
  rt.set_node(node);
}

// The Tr-dominant shape of Figure 7: many independently-compiled programs
// (S3D carries 27) sharing one context, one queue, one data buffer.
constexpr int kPrograms = 8;

bool build_multi_program() {
  cl_platform_id platform = nullptr;
  cl_device_id device = nullptr;
  cl_int err = CL_SUCCESS;
  if (clGetPlatformIDs(1, &platform, nullptr) != CL_SUCCESS) return false;
  if (clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr) !=
      CL_SUCCESS)
    return false;
  cl_context ctx = clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  if (err != CL_SUCCESS) return false;
  clCreateCommandQueue(ctx, device, 0, &err);
  if (err != CL_SUCCESS) return false;
  int n = 4096;
  std::vector<float> init(static_cast<std::size_t>(n), 1.0f);
  cl_mem buf = clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                              static_cast<std::size_t>(n) * 4, init.data(),
                              &err);
  if (err != CL_SUCCESS) return false;
  for (int i = 0; i < kPrograms; ++i) {
    const std::string name = "k" + std::to_string(i);
    const std::string src = "__kernel void " + name +
                            "(__global float* d, int n) {\n"
                            "  int i = get_global_id(0);\n"
                            "  if (i < n) d[i] = d[i] * " +
                            std::to_string(i + 2) + ".0f;\n}\n";
    const char* s = src.c_str();
    cl_program p = clCreateProgramWithSource(ctx, 1, &s, nullptr, &err);
    if (err != CL_SUCCESS) return false;
    if (clBuildProgram(p, 1, &device, "", nullptr, nullptr) != CL_SUCCESS)
      return false;
    cl_kernel k = clCreateKernel(p, name.c_str(), &err);
    if (err != CL_SUCCESS) return false;
    if (clSetKernelArg(k, 0, sizeof buf, &buf) != CL_SUCCESS) return false;
    if (clSetKernelArg(k, 1, sizeof n, &n) != CL_SUCCESS) return false;
  }
  return true;
}

struct AblationRow {
  const char* name;
  bool parallel;
  bool batch;
  checl::cpr::RestartBreakdown bd;
  checl::replay::ExecCounters counters;
  bool ok = false;
};

int run_ablation() {
  auto& rt = checl::CheclRuntime::instance();
  const std::string path = bench::ckpt_path("fig7_ablation");

  AblationRow rows[] = {
      {"serial", false, false, {}, {}, false},
      {"batch", false, true, {}, {}, false},
      {"parallel", true, false, {}, {}, false},
      {"parallel+batch", true, true, {}, {}, false},
  };
  for (AblationRow& row : rows) {
    rt.reset_all();
    set_proxy_node();
    checl::bind_checl();
    if (!build_multi_program()) break;
    if (rt.engine().checkpoint(path, nullptr) != CL_SUCCESS) break;
    rt.reset_all();
    set_proxy_node();
    rt.restore_parallel = row.parallel;
    rt.restore_batch = row.batch;
    rt.restore_workers = 4;
    std::unordered_map<std::uint64_t, checl::Object*> map;
    if (rt.engine().restore_fresh(path, std::nullopt, &row.bd, &map) !=
        CL_SUCCESS) {
      std::fprintf(stderr, "fig7 ablation: %s restore failed: %s\n", row.name,
                   rt.engine().last_error().c_str());
      break;
    }
    row.counters = rt.engine().restore_counters();
    row.ok = true;
  }

  // Rollback probe: a checkpoint whose kernel does not exist in its program
  // fails at the kernel wave and must leave the object DB empty.
  bool rollback_ok = false;
  std::uint64_t rolled_back_handles = 0;
  {
    rt.reset_all();
    set_proxy_node();
    checl::ObjectDB db;
    auto* p = new checl::PlatformObj();
    db.add(p);
    auto* d = new checl::DeviceObj();
    d->platform = p;
    p->retain();
    d->type = CL_DEVICE_TYPE_GPU;
    db.add(d);
    auto* c = new checl::ContextObj();
    c->devices.push_back(d);
    d->retain();
    db.add(c);
    auto* prog = new checl::ProgramObj();
    prog->ctx = c;
    c->retain();
    prog->source = "__kernel void ok(__global float* d, int n) { d[0] = n; }";
    prog->built = true;
    db.add(prog);
    auto* k = new checl::KernelObj();
    k->prog = prog;
    prog->retain();
    k->name = "nope";
    db.add(k);
    slimcr::Snapshot snap;
    snap.set("checl.db", checl::replay::encode_db(db));
    checl::replay::destroy_decoded(db, db.all());
    if (snap.save(path, rt.node().storage).ok) {
      std::unordered_map<std::uint64_t, checl::Object*> map;
      const cl_int err =
          rt.engine().restore_fresh(path, std::nullopt, nullptr, &map);
      rollback_ok = err != CL_SUCCESS && rt.db().size() == 0 && map.empty() &&
                    rt.engine().restore_counters().rollbacks >= 1;
      rolled_back_handles = rt.engine().restore_counters().rolled_back_handles;
    }
  }
  // Warm-cache probe: the same multi-program scenario restored twice.  The
  // cold restore lands in a freshly forked proxy with no bytecode pool, so
  // every program pays a full compile; the warm restore points both
  // lifetimes at an on-disk pool, so the fresh proxy deserializes the
  // content-addressed bytecode instead.  class_ns[Program] is the program-
  // recreation term of Tr, split here into its compile vs cache-deserialize
  // prices.
  std::uint64_t cold_prog_ns = 0;
  std::uint64_t warm_prog_ns = 0;
  bool warm_ok = false;
  {
    const std::string cache_dir = bench::clc_cache_dir("fig7");
    std::filesystem::remove_all(cache_dir);
    const auto restore_prog_ns = [&](const std::string& root,
                                     std::uint64_t& out) {
      rt.reset_all();
      set_proxy_node(root);
      checl::bind_checl();
      if (!build_multi_program()) return false;
      if (rt.engine().checkpoint(path, nullptr) != CL_SUCCESS) return false;
      rt.reset_all();  // kills the proxy: the restore below spawns a new one
      set_proxy_node(root);
      checl::cpr::RestartBreakdown bd;
      std::unordered_map<std::uint64_t, checl::Object*> map;
      if (rt.engine().restore_fresh(path, std::nullopt, &bd, &map) !=
          CL_SUCCESS)
        return false;
      out = bd.class_ns[static_cast<std::size_t>(checl::ObjType::Program)];
      return true;
    };
    warm_ok = restore_prog_ns("", cold_prog_ns) &&
              restore_prog_ns(cache_dir, warm_prog_ns);
    std::filesystem::remove_all(cache_dir);
  }

  rt.reset_all();
  checl::bind_native();
  std::remove(path.c_str());

  std::printf("{\n  \"bench\": \"fig7_parallel_restore\",\n");
  std::printf("  \"programs\": %d,\n  \"configs\": [\n", kPrograms);
  for (std::size_t i = 0; i < 4; ++i) {
    const AblationRow& r = rows[i];
    std::printf(
        "    {\"config\": \"%s\", \"ok\": %s, \"recreation_ns\": %llu, "
        "\"prog_ns\": %llu, \"waves\": %llu, \"parallel_waves\": %llu, "
        "\"max_concurrency\": %llu, \"batched_calls\": %llu, "
        "\"group_rpcs\": %llu}%s\n",
        r.name, r.ok ? "true" : "false",
        static_cast<unsigned long long>(r.bd.recreation_ns()),
        static_cast<unsigned long long>(
            r.bd.class_ns[static_cast<std::size_t>(checl::ObjType::Program)]),
        static_cast<unsigned long long>(r.counters.waves),
        static_cast<unsigned long long>(r.counters.parallel_waves),
        static_cast<unsigned long long>(r.counters.max_concurrency),
        static_cast<unsigned long long>(r.counters.batched_calls),
        static_cast<unsigned long long>(r.counters.group_rpcs),
        i + 1 < 4 ? "," : "");
  }
  std::printf("  ],\n");
  std::printf(
      "  \"warm_cache\": {\"ok\": %s, \"cold_compile_prog_ns\": %llu, "
      "\"warm_deserialize_prog_ns\": %llu, \"speedup\": %.1f},\n",
      warm_ok ? "true" : "false",
      static_cast<unsigned long long>(cold_prog_ns),
      static_cast<unsigned long long>(warm_prog_ns),
      warm_prog_ns > 0 ? static_cast<double>(cold_prog_ns) /
                             static_cast<double>(warm_prog_ns)
                       : 0.0);
  std::printf("  \"rollback\": {\"ok\": %s, \"released_handles\": %llu}\n",
              rollback_ok ? "true" : "false",
              static_cast<unsigned long long>(rolled_back_handles));
  std::printf("}\n");

  bool pass = rollback_ok;
  for (const AblationRow& r : rows) pass = pass && r.ok;
  if (!warm_ok || warm_prog_ns == 0 ||
      cold_prog_ns < 5 * warm_prog_ns) {
    std::fprintf(stderr,
                 "FAIL: warm-cache program recreation (%llu ns) is not >=5x "
                 "cheaper than cold compile (%llu ns)\n",
                 static_cast<unsigned long long>(warm_prog_ns),
                 static_cast<unsigned long long>(cold_prog_ns));
    pass = false;
  }
  if (pass) {
    const std::uint64_t serial = rows[0].bd.recreation_ns();
    const std::uint64_t best = rows[3].bd.recreation_ns();
    if (best >= serial) {
      std::fprintf(stderr,
                   "FAIL: parallel+batch (%llu ns) did not beat serial "
                   "(%llu ns)\n",
                   static_cast<unsigned long long>(best),
                   static_cast<unsigned long long>(serial));
      pass = false;
    }
  } else {
    std::fprintf(stderr, "FAIL: ablation or rollback probe did not complete\n");
  }
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  if (opt.smoke) return run_ablation();

  std::printf(
      "=== Figure 7: Timing results for recreating OpenCL objects ===\n"
      "checkpoint, then restart in place; per-class recreation times\n"
      "(restore executor: %s%s, workers=%u; prog recreation: %s)\n\n",
      opt.restore_parallel ? "parallel" : "serial",
      opt.restore_batch ? "+batch" : "", opt.restore_workers,
      opt.warm_cache ? "warm compile cache (bytecode deserialize)"
                     : "cold (full recompile)");

  auto& rt = checl::CheclRuntime::instance();
  if (opt.warm_cache)
    std::filesystem::remove_all(bench::clc_cache_dir("fig7"));
  for (const auto& cfg : bench::paper_configs()) {
    checl::NodeConfig node = bench::node_for(cfg);
    if (opt.warm_cache) node.clc_cache.root = bench::clc_cache_dir("fig7");
    std::printf("--- %s ---\n", cfg.label);
    benchkit::Table table({"Benchmark", "platform", "device", "context", "cmd_que",
                           "mem", "sampler", "prog", "kernel", "event",
                           "total (s)"});
    for (const auto& entry : workloads::suite()) {
      if (!opt.only.empty() && entry.name != opt.only) continue;
      auto w = entry.make();
      if (!w->executes_kernel()) continue;
      workloads::fresh_process(workloads::Binding::CheCL, node);
      rt.checkpoint_path = bench::ckpt_path("fig7");
      rt.restore_parallel = opt.restore_parallel;
      rt.restore_batch = opt.restore_batch;
      rt.restore_workers = opt.restore_workers;
      workloads::Env env;
      env.shrink = opt.shrink;
      if (workloads::open_env(env, cfg.device_type, cfg.platform_substr) !=
          CL_SUCCESS)
        continue;
      if (w->setup(env) != CL_SUCCESS || w->run(env) != CL_SUCCESS) {
        table.add_row({entry.name, "n/a"});
        w->teardown(env);
        workloads::close_env(env);
        continue;
      }
      checl::cpr::PhaseTimes pt;
      if (rt.engine().checkpoint(bench::ckpt_path("fig7"), &pt) != CL_SUCCESS) {
        table.add_row({entry.name, "ckpt-failed"});
        w->teardown(env);
        workloads::close_env(env);
        continue;
      }
      // restart_in_place respawns the proxy, whose in-memory compile cache
      // starts cold; only an on-disk pool (--warm-cache) survives the
      // boundary.
      checl::cpr::RestartBreakdown bd;
      if (rt.engine().restart_in_place(bench::ckpt_path("fig7"), std::nullopt,
                                       &bd) != CL_SUCCESS) {
        table.add_row({entry.name, "restart-failed"});
        w->teardown(env);
        workloads::close_env(env);
        continue;
      }
      std::vector<std::string> row{entry.name};
      for (std::size_t i = 0; i < checl::kNumObjTypes; ++i)
        row.push_back(benchkit::msec(bd.class_ns[i], 1));
      row.push_back(benchkit::sec(bd.recreation_ns(), 3));
      table.add_row(std::move(row));
      // the restarted objects still work: run once more as a sanity check
      if (w->run(env) != CL_SUCCESS || !w->verify(env))
        std::printf("  !! %s: post-restart verification FAILED\n",
                    entry.name.c_str());
      w->teardown(env);
      workloads::close_env(env);
    }
    table.print();
    std::printf(
        "\n(all times in ms except total; expected: mem + prog dominate, "
        "platform/context visible on NVIDIA only, S3D's 27 programs extreme)\n\n");
  }
  return 0;
}
