// fig7_restart_breakdown.cpp — reproduces Figure 7: timing results for
// recreating OpenCL objects on restart, broken down by object class
// (platform, device, context, cmd_que, mem, sampler, prog, kernel, event).
#include <cstdio>

#include "bench_common.h"
#include "benchkit/table.h"

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  std::printf(
      "=== Figure 7: Timing results for recreating OpenCL objects ===\n"
      "checkpoint, then restart in place; per-class recreation times\n\n");

  auto& rt = checl::CheclRuntime::instance();
  for (const auto& cfg : bench::paper_configs()) {
    checl::NodeConfig node = bench::node_for(cfg);
    std::printf("--- %s ---\n", cfg.label);
    benchkit::Table table({"Benchmark", "platform", "device", "context", "cmd_que",
                           "mem", "sampler", "prog", "kernel", "event",
                           "total (s)"});
    for (const auto& entry : workloads::suite()) {
      if (!opt.only.empty() && entry.name != opt.only) continue;
      auto w = entry.make();
      if (!w->executes_kernel()) continue;
      workloads::fresh_process(workloads::Binding::CheCL, node);
      rt.checkpoint_path = bench::ckpt_path("fig7");
      workloads::Env env;
      env.shrink = opt.shrink;
      if (workloads::open_env(env, cfg.device_type, cfg.platform_substr) !=
          CL_SUCCESS)
        continue;
      if (w->setup(env) != CL_SUCCESS || w->run(env) != CL_SUCCESS) {
        table.add_row({entry.name, "n/a"});
        w->teardown(env);
        workloads::close_env(env);
        continue;
      }
      checl::cpr::PhaseTimes pt;
      if (rt.engine().checkpoint(bench::ckpt_path("fig7"), &pt) != CL_SUCCESS) {
        table.add_row({entry.name, "ckpt-failed"});
        w->teardown(env);
        workloads::close_env(env);
        continue;
      }
      checl::cpr::RestartBreakdown bd;
      if (rt.engine().restart_in_place(bench::ckpt_path("fig7"), std::nullopt,
                                       &bd) != CL_SUCCESS) {
        table.add_row({entry.name, "restart-failed"});
        w->teardown(env);
        workloads::close_env(env);
        continue;
      }
      std::vector<std::string> row{entry.name};
      for (std::size_t i = 0; i < checl::kNumObjTypes; ++i)
        row.push_back(benchkit::msec(bd.class_ns[i], 1));
      row.push_back(benchkit::sec(bd.recreation_ns(), 3));
      table.add_row(std::move(row));
      // the restarted objects still work: run once more as a sanity check
      if (w->run(env) != CL_SUCCESS || !w->verify(env))
        std::printf("  !! %s: post-restart verification FAILED\n",
                    entry.name.c_str());
      w->teardown(env);
      workloads::close_env(env);
    }
    table.print();
    std::printf(
        "\n(all times in ms except total; expected: mem + prog dominate, "
        "platform/context visible on NVIDIA only, S3D's 27 programs extreme)\n\n");
  }
  return 0;
}
