// chaos_sweep — crash-schedule sweep with a per-site coverage table.
//
// Runs the same seed-derived schedules as test_chaos (tests/chaos_harness.h)
// and reports, per injection site: how many schedules targeted it, how many
// faults actually fired, how many operations failed (vs. fired harmlessly),
// and how many invariant checks broke.  JSON on stdout; a human-readable
// table on stderr.
//
//   chaos_sweep [--smoke] [--seed N] [--cases N] [--survive] [--json-out FILE]
//
// --smoke runs a small fixed-seed slice (ctest label: chaos) and exits
// non-zero on the first broken invariant, printing its repro line.
//
// --survive flips the contract: the survive-eligible slice of the same
// schedules runs with the self-healing runtime ON (supervision + I/O retry),
// and each case must complete with zero application-visible CL errors and
// byte-identical output.  The JSON then reports the recovery telemetry —
// recoveries, I/O retries, and the MTTR distribution (wall time from fault
// detection to the healed channel's re-issued call) — and --json-out writes
// it to a file (CI uses BENCH_recovery.json) for a machine-readable perf
// trajectory.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "../tests/chaos_harness.h"

namespace {

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

int run_survive(std::uint64_t seed, std::size_t cases, bool smoke,
                const char* json_out) {
  const auto schedules = chaos_harness::derive_schedules(seed, cases);

  struct SiteRow {
    std::uint64_t schedules = 0;
    std::uint64_t fired = 0;
    std::uint64_t survived = 0;
  };
  std::map<std::string, SiteRow> rows;
  std::vector<std::uint64_t> mttr;
  std::uint64_t recoveries = 0, io_retries = 0;
  std::size_t eligible = 0, broken = 0;

  for (std::size_t i = 0; i < schedules.size(); ++i) {
    if (!chaos_harness::survive_eligible(schedules[i])) continue;
    ++eligible;
    const chaos_harness::Verdict v =
        chaos_harness::run_schedule_survive(schedules[i]);
    SiteRow& r = rows[chaoskit::site_name(schedules[i].fault.site)];
    r.schedules++;
    if (v.fired) r.fired++;
    if (v.pass) {
      r.survived++;
    } else {
      ++broken;
      std::fprintf(stderr, "FAIL survive case %zu [%s]: %s\n  repro: %s\n", i,
                   chaos_harness::schedule_name(schedules[i]).c_str(),
                   v.detail.c_str(),
                   chaos_harness::repro_line(seed, i).c_str());
      if (smoke) return 1;
    }
    recoveries += v.recoveries;
    io_retries += v.io_retries;
    if (v.recover_ns > 0) mttr.push_back(v.recover_ns);
  }
  std::sort(mttr.begin(), mttr.end());

  std::fprintf(stderr, "%-26s %10s %8s %10s\n", "site", "schedules", "fired",
               "survived");
  for (const auto& [site, r] : rows)
    std::fprintf(stderr, "%-26s %10llu %8llu %10llu\n", site.c_str(),
                 static_cast<unsigned long long>(r.schedules),
                 static_cast<unsigned long long>(r.fired),
                 static_cast<unsigned long long>(r.survived));

  std::string json = "{\"bench\": \"recovery\", ";
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "\"seed\": %llu, \"eligible\": %zu, \"broken\": %zu, "
      "\"recoveries\": %llu, \"io_retries\": %llu, \"mttr_ns\": "
      "{\"samples\": %zu, \"median\": %llu, \"p10\": %llu, \"p90\": %llu, "
      "\"min\": %llu, \"max\": %llu}, \"sites\": {",
      static_cast<unsigned long long>(seed), eligible, broken,
      static_cast<unsigned long long>(recoveries),
      static_cast<unsigned long long>(io_retries), mttr.size(),
      static_cast<unsigned long long>(percentile(mttr, 0.5)),
      static_cast<unsigned long long>(percentile(mttr, 0.1)),
      static_cast<unsigned long long>(percentile(mttr, 0.9)),
      static_cast<unsigned long long>(mttr.empty() ? 0 : mttr.front()),
      static_cast<unsigned long long>(mttr.empty() ? 0 : mttr.back()));
  json += buf;
  bool first = true;
  for (const auto& [site, r] : rows) {
    std::snprintf(buf, sizeof buf,
                  "%s\"%s\": {\"schedules\": %llu, \"fired\": %llu, "
                  "\"survived\": %llu}",
                  first ? "" : ", ", site.c_str(),
                  static_cast<unsigned long long>(r.schedules),
                  static_cast<unsigned long long>(r.fired),
                  static_cast<unsigned long long>(r.survived));
    json += buf;
    first = false;
  }
  json += "}}\n";

  std::fputs(json.c_str(), stdout);
  if (json_out != nullptr) {
    std::FILE* f = std::fopen(json_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "chaos_sweep: cannot write %s\n", json_out);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return broken == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 20260805;
  std::size_t cases = 224;
  bool smoke = false;
  bool survive = false;
  const char* json_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      cases = 64;
    } else if (std::strcmp(argv[i], "--survive") == 0) {
      survive = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--cases") == 0 && i + 1 < argc) {
      cases = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--seed N] [--cases N] [--survive] "
                   "[--json-out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  // The survive slice is the full enumeration of eligible (site, nth, arg)
  // triples, so it needs the full derivation even in smoke mode.
  if (survive) return run_survive(seed, smoke ? 224 : cases, smoke, json_out);

  const auto schedules = chaos_harness::derive_schedules(seed, cases);

  struct SiteRow {
    std::uint64_t schedules = 0;
    std::uint64_t fired = 0;
    std::uint64_t op_failed = 0;
    std::uint64_t invariant_breaks = 0;
  };
  std::map<std::string, SiteRow> rows;
  std::size_t broken = 0;

  for (std::size_t i = 0; i < schedules.size(); ++i) {
    const chaos_harness::Verdict v = chaos_harness::run_schedule(schedules[i]);
    SiteRow& r = rows[chaoskit::site_name(schedules[i].fault.site)];
    r.schedules++;
    if (v.fired) r.fired++;
    if (v.op_failed) r.op_failed++;
    if (!v.pass) {
      r.invariant_breaks++;
      ++broken;
      std::fprintf(stderr, "FAIL case %zu [%s]: %s\n  repro: %s\n", i,
                   chaos_harness::schedule_name(schedules[i]).c_str(),
                   v.detail.c_str(),
                   chaos_harness::repro_line(seed, i).c_str());
      if (smoke) return 1;
    }
  }

  // Human-readable coverage table (the EXPERIMENTS.md artifact).
  std::fprintf(stderr, "%-26s %10s %8s %10s %10s\n", "site", "schedules",
               "fired", "op_failed", "breaks");
  for (const auto& [site, r] : rows)
    std::fprintf(stderr, "%-26s %10llu %8llu %10llu %10llu\n", site.c_str(),
                 static_cast<unsigned long long>(r.schedules),
                 static_cast<unsigned long long>(r.fired),
                 static_cast<unsigned long long>(r.op_failed),
                 static_cast<unsigned long long>(r.invariant_breaks));

  // Machine-readable summary.
  std::printf("{\"seed\": %llu, \"cases\": %zu, \"broken\": %zu, \"sites\": {",
              static_cast<unsigned long long>(seed), schedules.size(), broken);
  bool first = true;
  for (const auto& [site, r] : rows) {
    std::printf("%s\"%s\": {\"schedules\": %llu, \"fired\": %llu, "
                "\"op_failed\": %llu, \"invariant_breaks\": %llu}",
                first ? "" : ", ", site.c_str(),
                static_cast<unsigned long long>(r.schedules),
                static_cast<unsigned long long>(r.fired),
                static_cast<unsigned long long>(r.op_failed),
                static_cast<unsigned long long>(r.invariant_breaks));
    first = false;
  }
  std::printf("}}\n");
  return broken == 0 ? 0 : 1;
}
