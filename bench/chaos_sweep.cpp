// chaos_sweep — crash-schedule sweep with a per-site coverage table.
//
// Runs the same seed-derived schedules as test_chaos (tests/chaos_harness.h)
// and reports, per injection site: how many schedules targeted it, how many
// faults actually fired, how many operations failed (vs. fired harmlessly),
// and how many invariant checks broke.  JSON on stdout; a human-readable
// table on stderr.
//
//   chaos_sweep [--smoke] [--seed N] [--cases N]
//
// --smoke runs a small fixed-seed slice (ctest label: chaos) and exits
// non-zero on the first broken invariant, printing its repro line.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "../tests/chaos_harness.h"

int main(int argc, char** argv) {
  std::uint64_t seed = 20260805;
  std::size_t cases = 224;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      cases = 64;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--cases") == 0 && i + 1 < argc) {
      cases = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--seed N] [--cases N]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto schedules = chaos_harness::derive_schedules(seed, cases);

  struct SiteRow {
    std::uint64_t schedules = 0;
    std::uint64_t fired = 0;
    std::uint64_t op_failed = 0;
    std::uint64_t invariant_breaks = 0;
  };
  std::map<std::string, SiteRow> rows;
  std::size_t broken = 0;

  for (std::size_t i = 0; i < schedules.size(); ++i) {
    const chaos_harness::Verdict v = chaos_harness::run_schedule(schedules[i]);
    SiteRow& r = rows[chaoskit::site_name(schedules[i].fault.site)];
    r.schedules++;
    if (v.fired) r.fired++;
    if (v.op_failed) r.op_failed++;
    if (!v.pass) {
      r.invariant_breaks++;
      ++broken;
      std::fprintf(stderr, "FAIL case %zu [%s]: %s\n  repro: %s\n", i,
                   chaos_harness::schedule_name(schedules[i]).c_str(),
                   v.detail.c_str(),
                   chaos_harness::repro_line(seed, i).c_str());
      if (smoke) return 1;
    }
  }

  // Human-readable coverage table (the EXPERIMENTS.md artifact).
  std::fprintf(stderr, "%-26s %10s %8s %10s %10s\n", "site", "schedules",
               "fired", "op_failed", "breaks");
  for (const auto& [site, r] : rows)
    std::fprintf(stderr, "%-26s %10llu %8llu %10llu %10llu\n", site.c_str(),
                 static_cast<unsigned long long>(r.schedules),
                 static_cast<unsigned long long>(r.fired),
                 static_cast<unsigned long long>(r.op_failed),
                 static_cast<unsigned long long>(r.invariant_breaks));

  // Machine-readable summary.
  std::printf("{\"seed\": %llu, \"cases\": %zu, \"broken\": %zu, \"sites\": {",
              static_cast<unsigned long long>(seed), schedules.size(), broken);
  bool first = true;
  for (const auto& [site, r] : rows) {
    std::printf("%s\"%s\": {\"schedules\": %llu, \"fired\": %llu, "
                "\"op_failed\": %llu, \"invariant_breaks\": %llu}",
                first ? "" : ", ", site.c_str(),
                static_cast<unsigned long long>(r.schedules),
                static_cast<unsigned long long>(r.fired),
                static_cast<unsigned long long>(r.op_failed),
                static_cast<unsigned long long>(r.invariant_breaks));
    first = false;
  }
  std::printf("}}\n");
  return broken == 0 ? 0 : 1;
}
