// ablation_micro.cpp — google-benchmark microbenchmarks of the mechanisms
// (real wall time, not virtual time): IPC transports, kernel-signature
// parsing, interpreter throughput, handle conversion, DB serialization,
// snapshot I/O.  These quantify the design choices DESIGN.md calls out.
#include <benchmark/benchmark.h>

#include "checl/checl.h"
#include "clc/interp.h"
#include "clc/program.h"
#include "core/ksig.h"
#include "ipc/serial.h"
#include "proxy/spawn.h"
#include "slimcr/snapshot.h"
#include "workloads/harness.h"

namespace {

const char* kKernelSrc = R"CL(
__kernel void saxpy(__global float* y, __global const float* x,
                    __local float* scratch, float a, int n) {
  int i = get_global_id(0);
  if (i < n) y[i] = a * x[i] + y[i];
}
__kernel void other(image2d_t img, sampler_t smp, __global uint* out) {
  out[get_global_id(0)] = 0u;
}
)CL";

// ---- IPC transport round-trip ------------------------------------------------

void BM_IpcRoundtrip(benchmark::State& state, proxy::Transport transport) {
  proxy::Spawned sp = proxy::spawn_proxy(transport);
  if (!sp.ok()) {
    state.SkipWithError("proxy spawn failed");
    return;
  }
  sp.client()->configure(simcl::default_platforms(), proxy::IpcCosts{}, true);
  for (auto _ : state) {
    std::uint32_t pid = 0;
    sp.client()->ping(&pid);
    benchmark::DoNotOptimize(pid);
  }
  sp.stop();
}
BENCHMARK_CAPTURE(BM_IpcRoundtrip, thread, proxy::Transport::Thread);
BENCHMARK_CAPTURE(BM_IpcRoundtrip, process, proxy::Transport::Process);

// ---- bulk payload through the proxy -------------------------------------------

void BM_IpcBulkWrite(benchmark::State& state) {
  proxy::Spawned sp = proxy::spawn_proxy(proxy::Transport::Process);
  if (!sp.ok()) {
    state.SkipWithError("proxy spawn failed");
    return;
  }
  proxy::Client& c = *sp.client();
  c.configure(simcl::default_platforms(), proxy::IpcCosts{}, true);
  std::vector<proxy::RemoteHandle> plats;
  cl_uint n = 0;
  c.get_platform_ids(4, plats, n);
  std::vector<proxy::RemoteHandle> devs;
  c.get_device_ids(plats[0], CL_DEVICE_TYPE_GPU, 4, devs, n);
  proxy::RemoteHandle ctx = 0;
  proxy::RemoteHandle q = 0;
  proxy::RemoteHandle buf = 0;
  c.create_context({}, {devs.data(), 1}, ctx);
  c.create_queue(ctx, devs[0], 0, q);
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> host(bytes, 0x11);
  c.create_buffer(ctx, CL_MEM_READ_WRITE, bytes, {}, buf);
  for (auto _ : state) {
    proxy::RemoteHandle ev = 0;
    c.enqueue_write(q, buf, 0, host, false, ev);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  sp.stop();
}
BENCHMARK(BM_IpcBulkWrite)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

// ---- kernel-signature parsing (the clCreateProgramWithSource hook) --------------

void BM_KsigParse(benchmark::State& state) {
  for (auto _ : state) {
    auto sigs = checl::ksig::parse_signatures(kKernelSrc);
    benchmark::DoNotOptimize(sigs.kernels.size());
  }
}
BENCHMARK(BM_KsigParse);

// ---- full clc compile ----------------------------------------------------------

void BM_ClcCompile(benchmark::State& state) {
  for (auto _ : state) {
    auto res = clc::compile(kKernelSrc);
    benchmark::DoNotOptimize(res.ok());
  }
}
BENCHMARK(BM_ClcCompile);

// ---- interpreter throughput ------------------------------------------------------

void BM_InterpSaxpy(benchmark::State& state) {
  auto res = clc::compile(kKernelSrc);
  const clc::FuncDecl* k = res.module->find_func("saxpy");
  const int n = static_cast<int>(state.range(0));
  std::vector<float> x(static_cast<std::size_t>(n), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(n), 2.0f);
  std::vector<clc::KernelArg> args(5);
  args[0].k = clc::KernelArg::K::GlobalPtr;
  args[0].ptr = y.data();
  args[1].k = clc::KernelArg::K::GlobalPtr;
  args[1].ptr = x.data();
  args[2].k = clc::KernelArg::K::LocalAlloc;
  args[2].local_bytes = 256;
  args[3].k = clc::KernelArg::K::Bytes;
  args[3].bytes.resize(4);
  const float a = 1.5f;
  std::memcpy(args[3].bytes.data(), &a, 4);
  args[4].k = clc::KernelArg::K::Bytes;
  args[4].bytes.resize(4);
  std::memcpy(args[4].bytes.data(), &n, 4);
  clc::NDRange nd;
  nd.dim = 1;
  nd.global[0] = static_cast<std::size_t>(n);
  nd.local[0] = 64;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    auto lr = clc::execute_ndrange(*res.module, *k, args, nd);
    ops = lr.ops;
    benchmark::DoNotOptimize(lr.ok);
  }
  state.counters["ops/item"] =
      static_cast<double>(ops) / static_cast<double>(n);
}
BENCHMARK(BM_InterpSaxpy)->Arg(1 << 12)->Arg(1 << 16);

// ---- CheCL handle conversion: signature-based vs address heuristic ---------------

void setup_checl_kernel(workloads::Env& env, cl_kernel* k, cl_mem* m,
                        bool via_binary) {
  checl::NodeConfig node = checl::dual_node();
  node.transport = proxy::Transport::Thread;  // keep the bench in-process
  workloads::fresh_process(workloads::Binding::CheCL, node);
  workloads::open_env(env, CL_DEVICE_TYPE_GPU, "NVIDIA");
  cl_int err = CL_SUCCESS;
  cl_program p =
      clCreateProgramWithSource(env.ctx, 1, &kKernelSrc, nullptr, &err);
  clBuildProgram(p, 1, &env.device, "", nullptr, nullptr);
  if (via_binary) {
    // rebuild the program through the binary path: no source, no signatures
    std::size_t bin_size = 0;
    clGetProgramInfo(p, CL_PROGRAM_BINARY_SIZES, sizeof bin_size, &bin_size,
                     nullptr);
    std::vector<unsigned char> bin(bin_size);
    unsigned char* ptrs[1] = {bin.data()};
    clGetProgramInfo(p, CL_PROGRAM_BINARIES, sizeof ptrs, ptrs, nullptr);
    const unsigned char* cptr = bin.data();
    cl_program pb = clCreateProgramWithBinary(env.ctx, 1, &env.device, &bin_size,
                                              &cptr, nullptr, &err);
    clBuildProgram(pb, 1, &env.device, "", nullptr, nullptr);
    clReleaseProgram(p);
    p = pb;
  }
  *k = clCreateKernel(p, "saxpy", &err);
  clReleaseProgram(p);
  *m = clCreateBuffer(env.ctx, CL_MEM_READ_WRITE, 4096, nullptr, &err);
}

void BM_SetKernelArg(benchmark::State& state, bool via_binary) {
  workloads::Env env;
  cl_kernel k = nullptr;
  cl_mem m = nullptr;
  setup_checl_kernel(env, &k, &m, via_binary);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clSetKernelArg(k, 0, sizeof m, &m));
  }
  clReleaseKernel(k);
  clReleaseMemObject(m);
  workloads::close_env(env);
  checl::CheclRuntime::instance().reset_all();
  checl::bind_native();
}
BENCHMARK_CAPTURE(BM_SetKernelArg, signature, false);
BENCHMARK_CAPTURE(BM_SetKernelArg, addr_heuristic, true);

// ---- object DB serialization + snapshot I/O ---------------------------------------

void BM_SnapshotSave(benchmark::State& state) {
  slimcr::Snapshot snap;
  snap.set("data", std::vector<std::uint8_t>(
                       static_cast<std::size_t>(state.range(0)), 0xAB));
  const slimcr::StorageModel sm = slimcr::ram_disk();
  for (auto _ : state) {
    auto io = snap.save("/tmp/checl_ablation.snap", sm);
    benchmark::DoNotOptimize(io.ok);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SnapshotSave)->Arg(64 << 10)->Arg(4 << 20);

}  // namespace

BENCHMARK_MAIN();
