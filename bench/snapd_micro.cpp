// snapd_micro — micro-benchmark of the checl_snapd shard daemon and the
// sharded snapstore client stack, against IN-THREAD daemon instances.
//
// Unlike the torture tests (which fork real checl_snapd processes so a kill
// loses real state), this bench embeds three snapd::Server event loops in
// the bench process itself — same epoll loop, same wire protocol, same disk
// layout, real TCP over loopback — so the numbers isolate the protocol and
// store stack from fork/exec noise:
//
//   wire        Ping round-trip latency through the framed protocol (p50/p99)
//   chunks      64 KiB PutChunk/GetChunk throughput on one shard
//   replicate   ShardedStore put/get of an 8 MiB snapshot at R=1/2/3 over the
//               three shards (simulated clock + wall)
//   failover    one server loop stopped mid-fleet; the R=2 restore must fail
//               over and stay byte-identical
//
// Prints JSON; --json-out mirrors it to a file.  --smoke gates correctness
// only (byte-identity everywhere, failover restore succeeds with >= 1
// failover served, shard stat counters drain after delete) — wall-clock
// numbers are reported but never gated, so the smoke is parallel-safe.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "slimcr/snapshot.h"
#include "slimcr/storage.h"
#include "snapd/client.h"
#include "snapd/server.h"
#include "snapstore/shard.h"

namespace {

namespace fs = std::filesystem;

constexpr unsigned kServers = 3;
constexpr std::size_t kChunkBytes = 64 * 1024;
constexpr std::size_t kChunkCount = 128;
constexpr std::size_t kSnapshotBytes = 8 * 1024 * 1024;

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> v(n);
  std::uint32_t lcg = seed * 2654435761u + 99991u;
  for (auto& b : v)
    b = static_cast<std::uint8_t>((lcg = lcg * 1664525u + 1013904223u) >> 24);
  return v;
}

slimcr::Snapshot synthetic_snapshot() {
  slimcr::Snapshot snap;
  const std::size_t nsec = 4;
  for (std::uint32_t i = 0; i < nsec; ++i)
    snap.set("mem." + std::to_string(i),
             random_bytes(kSnapshotBytes / nsec, i + 7));
  return snap;
}

bool snapshots_equal(const slimcr::Snapshot& a, const slimcr::Snapshot& b) {
  if (a.section_count() != b.section_count()) return false;
  for (const auto& [name, data] : a.sections()) {
    const auto* other = b.get(name);
    if (other == nullptr || *other != data) return false;
  }
  return true;
}

// One in-thread daemon: the server's epoll loop runs on its own thread while
// clients talk to it over real loopback TCP.
struct InThreadShard {
  std::unique_ptr<snapd::Server> server;
  std::thread loop;
  std::string root;

  bool start(unsigned idx) {
    root = "/tmp/checl_snapd_micro_" + std::to_string(idx);
    fs::remove_all(root);
    server = std::make_unique<snapd::Server>(root, 0);
    if (!server->ok()) {
      std::fprintf(stderr, "snapd_micro: bind failed: %s\n",
                   server->error().c_str());
      return false;
    }
    loop = std::thread([this] { server->run(); });
    return true;
  }
  void stop() {
    if (server != nullptr) server->stop();
    if (loop.joinable()) loop.join();
    // stop() only exits the event loop; destroying the Server closes the
    // listener and every open connection, so a blocked client sees EOF
    // instead of hanging — that EOF is the failover trigger below.
    server.reset();
  }
  ~InThreadShard() {
    stop();
    if (!root.empty()) fs::remove_all(root);
  }
};

struct LatencyStats {
  double p50_us = 0;
  double p99_us = 0;
};

LatencyStats percentile(std::vector<double>& us) {
  std::sort(us.begin(), us.end());
  LatencyStats s;
  if (us.empty()) return s;
  s.p50_us = us[us.size() / 2];
  s.p99_us = us[std::min(us.size() - 1, us.size() * 99 / 100)];
  return s;
}

struct ReplicatePoint {
  unsigned replicas = 0;
  std::uint64_t put_ns = 0;   // simulated
  std::uint64_t get_ns = 0;   // simulated
  double put_wall_ms = 0;
  double get_wall_ms = 0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc)
      json_out = argv[++i];
  }
  bool ok = true;

  InThreadShard shards[kServers];
  std::vector<std::string> endpoints;
  for (unsigned i = 0; i < kServers; ++i) {
    if (!shards[i].start(i)) return 1;
    endpoints.push_back("127.0.0.1:" + std::to_string(shards[i].server->port()));
  }

  // --- wire: framed round-trip latency ---------------------------------------
  snapd::ShardClient cl;
  if (!cl.connect("127.0.0.1", shards[0].server->port(), "shard0")) {
    std::fprintf(stderr, "snapd_micro: connect failed\n");
    return 1;
  }
  std::vector<double> ping_us;
  for (int i = 0; i < 2000; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    if (cl.ping() != snapd::Wire::Ok) ok = false;
    ping_us.push_back(wall_ms_since(t0) * 1e3);
  }
  const LatencyStats ping = percentile(ping_us);

  // --- chunks: 64 KiB data plane on one shard --------------------------------
  std::vector<std::vector<std::uint8_t>> chunks;
  std::vector<snapstore::ChunkKey> keys;
  for (std::size_t i = 0; i < kChunkCount; ++i) {
    chunks.push_back(random_bytes(kChunkBytes, static_cast<std::uint32_t>(i)));
    snapstore::ChunkKey k;
    k.hash = snapstore::hash64(chunks.back().data(), chunks.back().size());
    k.len = chunks.back().size();
    k.uniq = 0;
    keys.push_back(k);
  }
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kChunkCount; ++i)
    if (cl.put_chunk(keys[i], chunks[i].data(), chunks[i].size()) !=
        snapd::Wire::Ok)
      ok = false;
  const double put_wall_ms = wall_ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kChunkCount; ++i) {
    std::vector<std::uint8_t> back;
    if (cl.get_chunk(keys[i], back) != snapd::Wire::Ok || back != chunks[i]) {
      std::fprintf(stderr, "snapd_micro: chunk %zu mismatch\n", i);
      ok = false;
    }
  }
  const double get_wall_ms = wall_ms_since(t0);
  const double total_mb =
      static_cast<double>(kChunkCount * kChunkBytes) / 1e6;
  for (const auto& k : keys)
    if (cl.del_chunk(k) != snapd::Wire::Ok) ok = false;
  snapd::StatReply st{};
  if (cl.stat(st) != snapd::Wire::Ok || st.chunks != 0) {
    std::fprintf(stderr,
                 "snapd_micro: shard did not drain after delete "
                 "(chunks=%llu)\n",
                 static_cast<unsigned long long>(st.chunks));
    ok = false;
  }

  // --- replicate: R=1/2/3 over the three shards ------------------------------
  const slimcr::StorageModel storage = slimcr::nfs();
  const slimcr::Snapshot snap = synthetic_snapshot();
  std::vector<ReplicatePoint> reps;
  for (unsigned r = 1; r <= kServers; ++r) {
    snapstore::ShardedStore store;
    snapstore::ShardOptions opt;
    opt.replicas = r;
    if (!store.open_endpoints(endpoints, opt).ok()) {
      std::fprintf(stderr, "snapd_micro: open_endpoints R=%u failed\n", r);
      ok = false;
      continue;
    }
    ReplicatePoint pt;
    pt.replicas = r;
    auto w0 = std::chrono::steady_clock::now();
    const snapstore::PutResult pr = store.put("snap", snap, storage);
    pt.put_wall_ms = wall_ms_since(w0);
    pt.put_ns = pr.duration_ns;
    slimcr::Snapshot back;
    w0 = std::chrono::steady_clock::now();
    const snapstore::GetResult gr = store.get("snap", back, storage);
    pt.get_wall_ms = wall_ms_since(w0);
    pt.get_ns = gr.duration_ns;
    pt.identical =
        pr.status.ok() && gr.status.ok() && snapshots_equal(snap, back);
    if (!pt.identical) {
      std::fprintf(stderr, "snapd_micro: R=%u round trip not identical\n", r);
      ok = false;
    }
    store.remove("snap");  // drain the fleet for the next R
    store.close();
    reps.push_back(pt);
  }

  // --- failover: stop one event loop mid-fleet -------------------------------
  std::uint64_t failovers = 0;
  bool failover_identical = false;
  {
    snapstore::ShardedStore store;
    snapstore::ShardOptions opt;
    opt.replicas = 2;
    if (store.open_endpoints(endpoints, opt).ok() &&
        store.put("snap", snap, storage).status.ok()) {
      shards[kServers - 1].stop();  // the daemon "dies"; its state stays on disk
      slimcr::Snapshot back;
      const snapstore::GetResult gr = store.get("snap", back, storage);
      failover_identical = gr.status.ok() && snapshots_equal(snap, back);
      failovers = store.sharded_stats().failovers;
    }
    store.close();
  }
  if (!failover_identical) {
    std::fprintf(stderr, "snapd_micro: failover restore not identical\n");
    ok = false;
  }
  // With 128 chunks striped over 3 shards, the stopped shard held primaries
  // for ~1/3 of them — zero failovers means the failover path never ran.
  if (failovers == 0) {
    std::fprintf(stderr, "snapd_micro: no failover was exercised\n");
    ok = false;
  }

  for (auto& s : shards) s.stop();

  // --- report ----------------------------------------------------------------
  std::string json = "{\n  \"bench\": \"snapd_micro\",\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"wire\": {\"ping_p50_us\": %.1f, \"ping_p99_us\": %.1f},\n",
                ping.p50_us, ping.p99_us);
  json += buf;
  std::snprintf(
      buf, sizeof buf,
      "  \"chunks\": {\"count\": %zu, \"chunk_bytes\": %zu, "
      "\"put_mb_s\": %.1f, \"get_mb_s\": %.1f},\n",
      kChunkCount, kChunkBytes,
      put_wall_ms > 0 ? total_mb / (put_wall_ms / 1e3) : 0.0,
      get_wall_ms > 0 ? total_mb / (get_wall_ms / 1e3) : 0.0);
  json += buf;
  json += "  \"replicate\": [\n";
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const ReplicatePoint& pt = reps[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"replicas\": %u, \"sim_put_ms\": %.3f, "
                  "\"sim_get_ms\": %.3f, \"put_wall_ms\": %.1f, "
                  "\"get_wall_ms\": %.1f, \"identical\": %s}%s\n",
                  pt.replicas, static_cast<double>(pt.put_ns) / 1e6,
                  static_cast<double>(pt.get_ns) / 1e6, pt.put_wall_ms,
                  pt.get_wall_ms, pt.identical ? "true" : "false",
                  i + 1 < reps.size() ? "," : "");
    json += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  ],\n  \"failover\": {\"failovers\": %llu, "
                "\"identical\": %s}\n}\n",
                static_cast<unsigned long long>(failovers),
                failover_identical ? "true" : "false");
  json += buf;
  std::printf("%s", json.c_str());
  if (!json_out.empty()) {
    if (std::FILE* f = std::fopen(json_out.c_str(), "w"); f != nullptr) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "snapd_micro: cannot write %s\n", json_out.c_str());
      ok = false;
    }
  }
  if (smoke && !ok) return 1;
  return ok ? 0 : 1;
}
