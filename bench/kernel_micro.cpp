// kernel_micro — interp-vs-VM ablation over the fig4 workload kernels.
//
// Protocol: every kernel in the fig4 corpus (src/workloads/fig4_kernels.h) is
// compiled once, then launched repeatedly under each execution engine — the
// tree-walking interpreter (the pre-VM baseline and differential oracle) and
// the bytecode VM — on bit-identical inputs.  Wall-clock is min-of-N over
// single-threaded launches so the number is the engine's per-work-item cost,
// not the thread pool's scheduling noise.  Every pair of runs is also
// byte-compared, so the speedup table carries its own correctness proof.
//
// Prints JSON: per-kernel {interp_ms, vm_ms, speedup, identical} plus the
// geometric-mean speedup.  --smoke fails (nonzero exit) unless every kernel
// is bit-identical across engines AND the VM beats the interpreter on every
// kernel — the acceptance gate wired into ctest.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "clc/program.h"
#include "workloads/fig4_kernels.h"

namespace {

using workloads::Fig4Kernel;
using workloads::Fig4Launch;

double wall_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct EngineResult {
  double best_ms = 0;
  std::vector<std::vector<std::uint8_t>> buffers;  // from the last launch
  bool ok = true;
  std::string error;
};

EngineResult run_engine(const clc::Module& mod, const clc::FuncDecl& fn,
                        const Fig4Kernel& k, clc::ExecEngine engine,
                        int trials) {
  EngineResult r;
  r.best_ms = 1e100;
  clc::LaunchOptions opts;
  opts.engine = engine;
  opts.max_threads = 1;
  for (int t = 0; t < trials + 1; ++t) {  // +1: untimed warmup
    Fig4Launch L = workloads::make_fig4_launch(k);
    const auto t0 = std::chrono::steady_clock::now();
    const clc::LaunchResult res =
        clc::execute_ndrange(mod, fn, L.args, L.nd, opts);
    const double ms = wall_ms(t0);
    if (!res.ok) {
      r.ok = false;
      r.error = res.error;
      return r;
    }
    if (t > 0 && ms < r.best_ms) r.best_ms = ms;
    if (t == trials) r.buffers = std::move(L.buffers);
  }
  return r;
}

struct Row {
  std::string workload;
  std::string kernel;
  double interp_ms = 0;
  double vm_ms = 0;
  double speedup = 0;
  bool identical = false;
  bool ok = false;
  std::string error;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_out = nullptr;
  int trials = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc)
      json_out = argv[++i];
    else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc)
      trials = std::atoi(argv[++i]);
  }
  if (trials < 1) trials = 1;

  std::vector<Row> rows;
  for (const Fig4Kernel& k : workloads::fig4_kernels()) {
    Row row;
    row.workload = k.workload;
    row.kernel = k.kernel;
    clc::CompileResult res = clc::compile(k.source);
    if (!res.ok()) {
      row.error = "compile failed: " + res.diag.to_string();
      rows.push_back(std::move(row));
      continue;
    }
    const clc::FuncDecl* fn = res.module->find_func(k.kernel);
    if (fn == nullptr) {
      row.error = "kernel not found";
      rows.push_back(std::move(row));
      continue;
    }
    // Min-of-N is robust to one-sided noise but a burst of load can still
    // land on every trial of one engine.  In smoke mode (where a spurious
    // "VM lost" fails the gate), re-measure apparent losses and merge the
    // per-engine minima — repeated minima converge to the quiet-machine
    // cost, so only a genuine regression keeps losing.
    const int attempts = smoke ? 3 : 1;
    double interp_best = 1e100;
    double vm_best = 1e100;
    for (int att = 0; att < attempts; ++att) {
      const EngineResult ri =
          run_engine(*res.module, *fn, k, clc::ExecEngine::Interp, trials);
      const EngineResult rv =
          run_engine(*res.module, *fn, k, clc::ExecEngine::Vm, trials);
      if (!ri.ok || !rv.ok) {
        row.error = !ri.ok ? "interp: " + ri.error : "vm: " + rv.error;
        row.ok = false;
        break;
      }
      if (ri.best_ms < interp_best) interp_best = ri.best_ms;
      if (rv.best_ms < vm_best) vm_best = rv.best_ms;
      row.interp_ms = interp_best;
      row.vm_ms = vm_best;
      row.speedup = vm_best > 0 ? interp_best / vm_best : 0;
      row.identical = ri.buffers == rv.buffers;
      row.ok = true;
      if (row.speedup > 1.0 && row.identical) break;
    }
    rows.push_back(std::move(row));
  }

  std::string json = "{\n  \"kernels\": [\n";
  double log_sum = 0;
  int counted = 0;
  bool all_identical = true;
  bool all_faster = true;
  bool all_ok = true;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[512];
    if (r.ok) {
      std::snprintf(buf, sizeof buf,
                    "    {\"workload\": \"%s\", \"kernel\": \"%s\", "
                    "\"interp_ms\": %.3f, \"vm_ms\": %.3f, "
                    "\"speedup\": %.2f, \"identical\": %s}",
                    r.workload.c_str(), r.kernel.c_str(), r.interp_ms,
                    r.vm_ms, r.speedup, r.identical ? "true" : "false");
      log_sum += std::log(r.speedup > 0 ? r.speedup : 1e-9);
      ++counted;
      all_identical = all_identical && r.identical;
      all_faster = all_faster && r.speedup > 1.0;
    } else {
      std::snprintf(buf, sizeof buf,
                    "    {\"workload\": \"%s\", \"kernel\": \"%s\", "
                    "\"error\": \"%s\"}",
                    r.workload.c_str(), r.kernel.c_str(), r.error.c_str());
      all_ok = false;
    }
    json += buf;
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  const double geomean = counted > 0 ? std::exp(log_sum / counted) : 0;
  char tail[128];
  std::snprintf(tail, sizeof tail,
                "  ],\n  \"geomean_speedup\": %.2f,\n  \"trials\": %d\n}\n",
                geomean, trials);
  json += tail;

  std::fputs(json.c_str(), stdout);
  if (json_out != nullptr) {
    std::FILE* f = std::fopen(json_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "kernel_micro: cannot write %s\n", json_out);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }

  if (smoke) {
    if (!all_ok) {
      std::fprintf(stderr, "smoke: some kernels failed to run\n");
      return 1;
    }
    if (!all_identical) {
      std::fprintf(stderr, "smoke: engine outputs not bit-identical\n");
      return 1;
    }
    if (!all_faster) {
      std::fprintf(stderr,
                   "smoke: VM slower than the interpreter on some kernel\n");
      return 1;
    }
    std::fprintf(stderr, "smoke: %d kernels, geomean speedup %.2fx, all "
                         "bit-identical\n", counted, geomean);
  }
  return 0;
}
