// fig5_checkpoint_overhead.cpp — reproduces Figure 5: timing overheads for
// synchronizing, preprocessing, writing, and postprocessing, plus the
// checkpoint file size, for every kernel-executing benchmark program on each
// device configuration.  The checkpoint fires right after a kernel enqueue so
// at least one uncompleted kernel command sits in the queue (paper setup).
#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "benchkit/table.h"
#include "core/migration.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  std::printf(
      "=== Figure 5: Timing overheads for synchronizing, preprocessing, "
      "writing, and postprocessing ===\n"
      "checkpoint taken immediately after a kernel enqueue; local-disk "
      "storage; transfer-only programs excluded (as in the paper)\n\n");

  auto& rt = checl::CheclRuntime::instance();
  for (const auto& cfg : bench::paper_configs()) {
    checl::NodeConfig node = bench::node_for(cfg);
    std::printf("--- %s ---\n", cfg.label);
    benchkit::Table table({"Benchmark", "sync (ms)", "pre (ms)", "write (ms)",
                           "post (ms)", "total (ms)", "file (MB)"});
    std::vector<checl::migration::Sample> samples;
    std::vector<checl::migration::Sample> ckpt_samples;
    for (const auto& entry : workloads::suite()) {
      if (!opt.only.empty() && entry.name != opt.only) continue;
      auto w = entry.make();
      if (!w->executes_kernel()) continue;  // oclBandwidthTest, BusSpeed*, KernelCompile
      workloads::fresh_process(workloads::Binding::CheCL, node);
      rt.checkpoint_path = bench::ckpt_path("fig5");
      workloads::Env env;
      env.shrink = opt.shrink;
      if (workloads::open_env(env, cfg.device_type, cfg.platform_substr) !=
          CL_SUCCESS)
        continue;
      // fire right after the first kernel enqueue of the measured run (the
      // kernel is still uncompleted in the queue at that moment)
      rt.arm_checkpoint_after_kernel(1);
      const workloads::RunResult res = workloads::run_workload(*w, env, 1);
      rt.arm_checkpoint_after_kernel(-1);
      workloads::close_env(env);
      const checl::cpr::PhaseTimes pt = rt.last_checkpoint_times();
      if (!res.ok || pt.file_bytes == 0) {
        table.add_row({entry.name, "n/a", "-", "-", "-", "-", "-"});
        continue;
      }
      table.add_row({entry.name, benchkit::msec(pt.sync_ns),
                     benchkit::msec(pt.pre_ns), benchkit::msec(pt.write_ns),
                     benchkit::msec(pt.post_ns), benchkit::msec(pt.total_ns()),
                     benchkit::fmt("%.2f", static_cast<double>(pt.file_bytes) / 1e6)});
      samples.push_back({pt.file_bytes, pt.total_ns(), 0});
      ckpt_samples.push_back(
          {pt.file_bytes, pt.pre_ns + pt.write_ns + pt.post_ns, 0});
    }
    table.print();
    const double corr = checl::migration::correlation(samples);
    const double corr_ckpt = checl::migration::correlation(ckpt_samples);
    std::printf(
        "correlation(total checkpoint time, file size)    = %.3f   (paper: 0.99)\n"
        "correlation(pre+write+post, file size)           = %.3f\n"
        "(sync reflects whatever kernel was in flight when the signal hit; the\n"
        " paper's delayed mode exists precisely to avoid paying it)\n\n",
        corr, corr_ckpt);
  }

  // ---- ablation: full vs incremental vs snapstore (2nd checkpoint) --------
  // Triad re-dirties all of its buffers every run; Stencil2D only its two
  // ping-pong planes — the incremental win is the clean remainder.  The store
  // mode dedups at chunk granularity instead of chaining deltas, so its 2nd
  // checkpoint is also ~empty while every manifest stays self-contained.
  const char* store_root = "/tmp/checl_bench_fig5_store";
  std::printf(
      "--- ablation: full vs incremental vs store checkpoint (Triad, 2nd ckpt) "
      "---\n");
  benchkit::Table ab({"mode", "pre (ms)", "write (ms)", "file (MB)"});
  enum class Mode { Full, Incremental, Store };
  for (const Mode mode : {Mode::Full, Mode::Incremental, Mode::Store}) {
    workloads::fresh_process(workloads::Binding::CheCL,
                             bench::node_for(bench::paper_configs()[0]));
    rt.incremental_checkpoints = mode == Mode::Incremental;
    rt.store_checkpoints = mode == Mode::Store;
    rt.store_root = store_root;
    if (mode == Mode::Store) std::filesystem::remove_all(store_root);
    workloads::Env env;
    env.shrink = opt.shrink;
    if (workloads::open_env(env, CL_DEVICE_TYPE_GPU) != CL_SUCCESS) continue;
    auto w = workloads::create("Triad");
    if (w->setup(env) != CL_SUCCESS || w->run(env) != CL_SUCCESS) continue;
    checl::cpr::PhaseTimes first;
    rt.engine().checkpoint(bench::ckpt_path("fig5_abl_a"), &first);
    // no further writes: with incremental or store mode the 2nd checkpoint
    // pays (almost) nothing
    checl::cpr::PhaseTimes second;
    rt.engine().checkpoint(bench::ckpt_path("fig5_abl_b"), &second);
    const char* label = mode == Mode::Full          ? "full"
                        : mode == Mode::Incremental ? "incremental"
                                                    : "store";
    ab.add_row({label, benchkit::msec(second.pre_ns),
                benchkit::msec(second.write_ns),
                benchkit::fmt("%.2f", static_cast<double>(second.file_bytes) / 1e6)});
    w->teardown(env);
    workloads::close_env(env);
    rt.incremental_checkpoints = false;
    rt.store_checkpoints = false;
  }
  ab.print();

  // ---- --store: repeat-checkpoint sweep through the snapstore -------------
  // Checkpoints the whole kernel suite twice per mode.  Flat mode pays the
  // full file both times; store mode pays only for chunks the second run
  // actually changed (plus manifests), which is the Figure 5 lever the store
  // exists to shrink.
  if (opt.store) {
    std::printf("\n--- --store: flat vs snapstore, repeat checkpoints ---\n");
    benchkit::Table sw({"Benchmark", "mode", "ckpt1 (MB)", "ckpt2 (MB)",
                        "ckpt2 write (ms)"});
    std::string store_stats;
    for (const bool store_mode : {false, true}) {
      for (const auto& entry : workloads::suite()) {
        if (!opt.only.empty() && entry.name != opt.only) continue;
        auto w = entry.make();
        if (!w->executes_kernel()) continue;
        workloads::fresh_process(workloads::Binding::CheCL,
                                 bench::node_for(bench::paper_configs()[0]));
        rt.store_checkpoints = store_mode;
        rt.store_root = store_root;
        if (store_mode) std::filesystem::remove_all(store_root);
        workloads::Env env;
        env.shrink = opt.shrink;
        if (workloads::open_env(env, CL_DEVICE_TYPE_GPU) != CL_SUCCESS)
          continue;
        if (w->setup(env) != CL_SUCCESS || w->run(env) != CL_SUCCESS) continue;
        checl::cpr::PhaseTimes first;
        rt.engine().checkpoint(bench::ckpt_path("fig5_sw_a"), &first);
        w->run(env);  // the app advances; clean buffers stay clean
        checl::cpr::PhaseTimes second;
        rt.engine().checkpoint(bench::ckpt_path("fig5_sw_b"), &second);
        sw.add_row({entry.name, store_mode ? "store" : "flat",
                    benchkit::fmt("%.2f", static_cast<double>(first.file_bytes) / 1e6),
                    benchkit::fmt("%.2f", static_cast<double>(second.file_bytes) / 1e6),
                    benchkit::msec(second.write_ns)});
        w->teardown(env);
        workloads::close_env(env);
        if (store_mode) store_stats = checl::stats_json();
        rt.store_checkpoints = false;
      }
    }
    sw.print();
    if (!store_stats.empty())
      std::printf("stats (last store run): %s\n", store_stats.c_str());
  }
  std::filesystem::remove_all(store_root);
  return 0;
}
