// fig5_checkpoint_overhead.cpp — reproduces Figure 5: timing overheads for
// synchronizing, preprocessing, writing, and postprocessing, plus the
// checkpoint file size, for every kernel-executing benchmark program on each
// device configuration.  The checkpoint fires right after a kernel enqueue so
// at least one uncompleted kernel command sits in the queue (paper setup).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>

#include "bench_common.h"
#include "benchkit/table.h"
#include "checl/cl.h"
#include "core/migration.h"
#include "core/stats.h"

namespace {

// ---- --live: pre-copy vs stop-the-world pause -------------------------------
// A large mostly-clean working set: N x 1 MiB cold buffers that are written
// once and never again, plus one small hot buffer an in-flight kernel keeps
// re-dirtying (paper setup: the checkpoint fires with an uncompleted kernel
// in the queue).  Stop-the-world modes pay for the whole working set inside
// the pause; the live engine streams the cold bulk in pre-copy rounds while
// the queue executes and stops the world only for the hot residue — so its
// pause tracks the dirty rate, not the memory size.

const char* kHotSrc = R"CL(
__kernel void touch(__global float* d, int n) {
  int i = get_global_id(0);
  if (i < n) d[i] = d[i] + 1.0f;
}
)CL";

struct LiveScenario {
  cl_device_id device = nullptr;
  cl_context ctx = nullptr;
  cl_command_queue queue = nullptr;
  cl_program prog = nullptr;
  cl_kernel kernel = nullptr;
  std::vector<cl_mem> cold;
  cl_mem hot = nullptr;
  int hot_n = 16 * 1024;  // 64 KiB the kernel keeps re-dirtying
  std::size_t buf_bytes = 0;

  bool create(std::size_t cold_total, std::size_t buf) {
    buf_bytes = buf;
    cl_uint np = 0;
    if (clGetPlatformIDs(0, nullptr, &np) != CL_SUCCESS || np == 0) return false;
    std::vector<cl_platform_id> plats(np);
    clGetPlatformIDs(np, plats.data(), nullptr);
    cl_platform_id platform = nullptr;
    for (cl_platform_id p : plats)
      if (clGetDeviceIDs(p, CL_DEVICE_TYPE_GPU, 1, &device, nullptr) ==
          CL_SUCCESS) {
        platform = p;
        break;
      }
    if (platform == nullptr) return false;
    cl_int err = CL_SUCCESS;
    ctx = clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
    if (err != CL_SUCCESS) return false;
    queue = clCreateCommandQueue(ctx, device, 0, &err);
    if (err != CL_SUCCESS) return false;
    std::vector<std::uint8_t> pattern(buf_bytes);
    for (std::size_t b = 0; b * buf_bytes < cold_total; ++b) {
      // LCG fill: every chunk of every buffer is unique, so the stored size
      // reflects the working set instead of collapsing under dedup
      std::uint64_t x = 0x9e3779b97f4a7c15ull * (b + 1);
      for (std::size_t i = 0; i + 8 <= buf_bytes; i += 8) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        std::memcpy(pattern.data() + i, &x, 8);
      }
      cl_mem m = clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                                buf_bytes, pattern.data(), &err);
      if (err != CL_SUCCESS) return false;
      cold.push_back(m);
    }
    std::vector<float> zeros(static_cast<std::size_t>(hot_n), 0.0f);
    hot = clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                         static_cast<std::size_t>(hot_n) * 4, zeros.data(),
                         &err);
    if (err != CL_SUCCESS) return false;
    prog = clCreateProgramWithSource(ctx, 1, &kHotSrc, nullptr, &err);
    if (err != CL_SUCCESS ||
        clBuildProgram(prog, 1, &device, "", nullptr, nullptr) != CL_SUCCESS)
      return false;
    kernel = clCreateKernel(prog, "touch", &err);
    if (err != CL_SUCCESS) return false;
    return clSetKernelArg(kernel, 0, sizeof hot, &hot) == CL_SUCCESS &&
           clSetKernelArg(kernel, 1, sizeof hot_n, &hot_n) == CL_SUCCESS;
  }

  bool touch(int times, bool finish) {
    const std::size_t g = static_cast<std::size_t>(hot_n);
    for (int i = 0; i < times; ++i)
      if (clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &g, nullptr, 0,
                                 nullptr, nullptr) != CL_SUCCESS)
        return false;
    return !finish || clFinish(queue) == CL_SUCCESS;
  }

  bool read_all(std::vector<std::vector<std::uint8_t>>& out) {
    out.clear();
    for (cl_mem m : cold) {
      std::vector<std::uint8_t> d(buf_bytes);
      if (clEnqueueReadBuffer(queue, m, CL_TRUE, 0, d.size(), d.data(), 0,
                              nullptr, nullptr) != CL_SUCCESS)
        return false;
      out.push_back(std::move(d));
    }
    std::vector<std::uint8_t> d(static_cast<std::size_t>(hot_n) * 4);
    if (clEnqueueReadBuffer(queue, hot, CL_TRUE, 0, d.size(), d.data(), 0,
                            nullptr, nullptr) != CL_SUCCESS)
      return false;
    out.push_back(std::move(d));
    return true;
  }

  void release() {
    if (kernel != nullptr) clReleaseKernel(kernel);
    if (prog != nullptr) clReleaseProgram(prog);
    for (cl_mem m : cold) clReleaseMemObject(m);
    if (hot != nullptr) clReleaseMemObject(hot);
    if (queue != nullptr) clReleaseCommandQueue(queue);
    if (ctx != nullptr) clReleaseContext(ctx);
    *this = LiveScenario{};
  }
};

struct LiveRow {
  const char* mode;
  std::size_t cold_mb;
  checl::cpr::PhaseTimes pt;
  bool ok = false;
  int restore = -1;  // -1 not attempted, 0 failed, 1 byte-identical
};

int run_live(const bench::Options& opt) {
  auto& rt = checl::CheclRuntime::instance();
  const char* store_root = "/tmp/checl_bench_fig5_live_store";
  std::printf(
      "=== fig5 --live: pre-copy vs stop-the-world checkpoint pause ===\n"
      "N x 1 MiB cold buffers (written once) + one 64 KiB hot buffer an\n"
      "in-flight kernel keeps dirtying; the pause is what the app waits\n\n");
  const std::size_t kBuf = 1u << 20;
  const std::vector<std::size_t> cold_mbs =
      opt.smoke ? std::vector<std::size_t>{8, 32}
                : std::vector<std::size_t>{8, 16, 32, 64};
  benchkit::Table t({"mode", "cold (MB)", "pause (ms)", "precopy (ms)",
                     "rounds", "residue (KB)", "stored (MB)", "restore"});
  std::vector<LiveRow> rows;
  for (const std::size_t mb : cold_mbs) {
    for (const char* mode : {"full", "store", "live"}) {
      workloads::fresh_process(workloads::Binding::CheCL,
                               bench::node_for(bench::paper_configs()[0]));
      rt.store_checkpoints = std::strcmp(mode, "full") != 0;
      rt.live_checkpoints = std::strcmp(mode, "live") == 0;
      rt.store_root = store_root;
      std::filesystem::remove_all(store_root);
      LiveScenario s;
      LiveRow row{mode, mb, {}, false, -1};
      const std::string path = bench::ckpt_path("fig5_live");
      if (s.create(mb << 20, kBuf) && s.touch(2, true) && s.touch(8, false)) {
        row.ok = rt.engine().checkpoint(path, &row.pt) == CL_SUCCESS;
        if (row.ok && rt.live_checkpoints) {
          // Byte-identical restore: snapshot the post-checkpoint contents,
          // let the app advance, roll back, and compare every buffer.
          std::vector<std::vector<std::uint8_t>> expect, got;
          row.restore = 0;
          if (s.read_all(expect) && s.touch(3, true) &&
              rt.engine().restart_in_place(path, std::nullopt, nullptr) ==
                  CL_SUCCESS &&
              s.read_all(got) && got == expect)
            row.restore = 1;
        }
      }
      s.release();
      rows.push_back(row);
      if (!row.ok) {
        t.add_row({mode, benchkit::fmt("%zu", mb), "n/a", "-", "-", "-", "-",
                   "-"});
        continue;
      }
      t.add_row(
          {mode, benchkit::fmt("%zu", mb), benchkit::msec(row.pt.pause_ns()),
           benchkit::msec(row.pt.precopy_ns),
           benchkit::fmt("%u", row.pt.rounds),
           benchkit::fmt("%.1f", static_cast<double>(row.pt.residue_bytes) / 1e3),
           benchkit::fmt("%.2f", static_cast<double>(row.pt.file_bytes) / 1e6),
           row.restore < 0 ? "-" : (row.restore == 1 ? "ok" : "FAIL")});
    }
  }
  t.print();
  std::printf(
      "(stop-the-world pause grows with the working set; the live pause is\n"
      " bounded by the dirty rate — hot residue + manifest — at any size)\n");

  if (!opt.json_out.empty()) {
    std::FILE* f = std::fopen(opt.json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "fig5: cannot write %s\n", opt.json_out.c_str());
    } else {
      std::fprintf(f, "{\"bench\": \"fig5_ckpt\", \"smoke\": %s, \"modes\": [",
                   opt.smoke ? "true" : "false");
      bool first = true;
      for (const LiveRow& r : rows) {
        if (!r.ok) continue;
        std::fprintf(
            f,
            "%s\n  {\"mode\": \"%s\", \"cold_mb\": %zu, \"pause_ms\": %.3f, "
            "\"total_ms\": %.3f, \"precopy_ms\": %.3f, \"rounds\": %u, "
            "\"residue_bytes\": %llu, \"stored_bytes\": %llu, "
            "\"restore_identical\": %d}",
            first ? "" : ",", r.mode, r.cold_mb,
            static_cast<double>(r.pt.pause_ns()) / 1e6,
            static_cast<double>(r.pt.total_ns()) / 1e6,
            static_cast<double>(r.pt.precopy_ns) / 1e6, r.pt.rounds,
            static_cast<unsigned long long>(r.pt.residue_bytes),
            static_cast<unsigned long long>(r.pt.file_bytes), r.restore);
        first = false;
      }
      std::fprintf(f, "\n]}\n");
      std::fclose(f);
      std::printf("json written to %s\n", opt.json_out.c_str());
    }
  }

  int rc = 0;
  if (opt.smoke) {
    const auto find = [&rows](const char* m, std::size_t mb) -> const LiveRow* {
      for (const LiveRow& r : rows)
        if (std::strcmp(r.mode, m) == 0 && r.cold_mb == mb) return &r;
      return nullptr;
    };
    const std::size_t big = cold_mbs.back(), small = cold_mbs.front();
    const LiveRow* full = find("full", big);
    const LiveRow* store = find("store", big);
    const LiveRow* live = find("live", big);
    const LiveRow* live0 = find("live", small);
    if (full == nullptr || store == nullptr || live == nullptr ||
        live0 == nullptr || !full->ok || !store->ok || !live->ok ||
        !live0->ok) {
      std::fprintf(stderr, "smoke: a mode failed to checkpoint\n");
      return 1;
    }
    if (live->pt.pause_ns() * 5 > full->pt.pause_ns()) {
      std::fprintf(stderr,
                   "smoke: live pause %.3f ms not 5x below full pause %.3f ms\n",
                   static_cast<double>(live->pt.pause_ns()) / 1e6,
                   static_cast<double>(full->pt.pause_ns()) / 1e6);
      rc = 1;
    }
    // dedup noise: re-streamed hot chunks + manifest overhead only
    if (live->pt.file_bytes >
        store->pt.file_bytes + store->pt.file_bytes / 4 + (256u << 10)) {
      std::fprintf(stderr,
                   "smoke: live stored %llu B exceeds store mode %llu B + "
                   "dedup noise\n",
                   static_cast<unsigned long long>(live->pt.file_bytes),
                   static_cast<unsigned long long>(store->pt.file_bytes));
      rc = 1;
    }
    if (live->restore != 1) {
      std::fprintf(stderr, "smoke: restore after live checkpoint not "
                           "byte-identical\n");
      rc = 1;
    }
    // pause tracks dirty rate, not memory size: 4x the cold data must not
    // move the live pause by more than ~2x (manifest growth + fetch RPCs)
    if (live->pt.pause_ns() > live0->pt.pause_ns() * 2 + 2'000'000) {
      std::fprintf(stderr,
                   "smoke: live pause grew with memory size (%.3f ms @ %zu MB "
                   "vs %.3f ms @ %zu MB)\n",
                   static_cast<double>(live->pt.pause_ns()) / 1e6, big,
                   static_cast<double>(live0->pt.pause_ns()) / 1e6, small);
      rc = 1;
    }
    if (rc == 0)
      std::printf("smoke: live pause %.3f ms vs full %.3f ms, bytes within "
                  "dedup noise, restore byte-identical\n",
                  static_cast<double>(live->pt.pause_ns()) / 1e6,
                  static_cast<double>(full->pt.pause_ns()) / 1e6);
  }
  rt.store_checkpoints = false;
  rt.live_checkpoints = false;
  std::filesystem::remove_all(store_root);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  // --live (and --json-out, which needs its data) runs only the pre-copy
  // sweep: that is what the ctest smoke invocation and CI json track.
  if (opt.live || !opt.json_out.empty()) return run_live(opt);
  std::printf(
      "=== Figure 5: Timing overheads for synchronizing, preprocessing, "
      "writing, and postprocessing ===\n"
      "checkpoint taken immediately after a kernel enqueue; local-disk "
      "storage; transfer-only programs excluded (as in the paper)\n\n");

  auto& rt = checl::CheclRuntime::instance();
  for (const auto& cfg : bench::paper_configs()) {
    checl::NodeConfig node = bench::node_for(cfg);
    std::printf("--- %s ---\n", cfg.label);
    benchkit::Table table({"Benchmark", "sync (ms)", "pre (ms)", "write (ms)",
                           "post (ms)", "total (ms)", "file (MB)"});
    std::vector<checl::migration::Sample> samples;
    std::vector<checl::migration::Sample> ckpt_samples;
    for (const auto& entry : workloads::suite()) {
      if (!opt.only.empty() && entry.name != opt.only) continue;
      auto w = entry.make();
      if (!w->executes_kernel()) continue;  // oclBandwidthTest, BusSpeed*, KernelCompile
      workloads::fresh_process(workloads::Binding::CheCL, node);
      rt.checkpoint_path = bench::ckpt_path("fig5");
      workloads::Env env;
      env.shrink = opt.shrink;
      if (workloads::open_env(env, cfg.device_type, cfg.platform_substr) !=
          CL_SUCCESS)
        continue;
      // fire right after the first kernel enqueue of the measured run (the
      // kernel is still uncompleted in the queue at that moment)
      rt.arm_checkpoint_after_kernel(1);
      const workloads::RunResult res = workloads::run_workload(*w, env, 1);
      rt.arm_checkpoint_after_kernel(-1);
      workloads::close_env(env);
      const checl::cpr::PhaseTimes pt = rt.last_checkpoint_times();
      if (!res.ok || pt.file_bytes == 0) {
        table.add_row({entry.name, "n/a", "-", "-", "-", "-", "-"});
        continue;
      }
      table.add_row({entry.name, benchkit::msec(pt.sync_ns),
                     benchkit::msec(pt.pre_ns), benchkit::msec(pt.write_ns),
                     benchkit::msec(pt.post_ns), benchkit::msec(pt.total_ns()),
                     benchkit::fmt("%.2f", static_cast<double>(pt.file_bytes) / 1e6)});
      samples.push_back({pt.file_bytes, pt.total_ns(), 0});
      ckpt_samples.push_back(
          {pt.file_bytes, pt.pre_ns + pt.write_ns + pt.post_ns, 0});
    }
    table.print();
    const double corr = checl::migration::correlation(samples);
    const double corr_ckpt = checl::migration::correlation(ckpt_samples);
    std::printf(
        "correlation(total checkpoint time, file size)    = %.3f   (paper: 0.99)\n"
        "correlation(pre+write+post, file size)           = %.3f\n"
        "(sync reflects whatever kernel was in flight when the signal hit; the\n"
        " paper's delayed mode exists precisely to avoid paying it)\n\n",
        corr, corr_ckpt);
  }

  // ---- ablation: full vs incremental vs snapstore (2nd checkpoint) --------
  // Triad re-dirties all of its buffers every run; Stencil2D only its two
  // ping-pong planes — the incremental win is the clean remainder.  The store
  // mode dedups at chunk granularity instead of chaining deltas, so its 2nd
  // checkpoint is also ~empty while every manifest stays self-contained.
  const char* store_root = "/tmp/checl_bench_fig5_store";
  std::printf(
      "--- ablation: full vs incremental vs store checkpoint (Triad, 2nd ckpt) "
      "---\n");
  benchkit::Table ab({"mode", "pre (ms)", "write (ms)", "file (MB)"});
  enum class Mode { Full, Incremental, Store };
  for (const Mode mode : {Mode::Full, Mode::Incremental, Mode::Store}) {
    workloads::fresh_process(workloads::Binding::CheCL,
                             bench::node_for(bench::paper_configs()[0]));
    rt.incremental_checkpoints = mode == Mode::Incremental;
    rt.store_checkpoints = mode == Mode::Store;
    rt.store_root = store_root;
    if (mode == Mode::Store) std::filesystem::remove_all(store_root);
    workloads::Env env;
    env.shrink = opt.shrink;
    if (workloads::open_env(env, CL_DEVICE_TYPE_GPU) != CL_SUCCESS) continue;
    auto w = workloads::create("Triad");
    if (w->setup(env) != CL_SUCCESS || w->run(env) != CL_SUCCESS) continue;
    checl::cpr::PhaseTimes first;
    rt.engine().checkpoint(bench::ckpt_path("fig5_abl_a"), &first);
    // no further writes: with incremental or store mode the 2nd checkpoint
    // pays (almost) nothing
    checl::cpr::PhaseTimes second;
    rt.engine().checkpoint(bench::ckpt_path("fig5_abl_b"), &second);
    const char* label = mode == Mode::Full          ? "full"
                        : mode == Mode::Incremental ? "incremental"
                                                    : "store";
    ab.add_row({label, benchkit::msec(second.pre_ns),
                benchkit::msec(second.write_ns),
                benchkit::fmt("%.2f", static_cast<double>(second.file_bytes) / 1e6)});
    w->teardown(env);
    workloads::close_env(env);
    rt.incremental_checkpoints = false;
    rt.store_checkpoints = false;
  }
  ab.print();

  // ---- --store: repeat-checkpoint sweep through the snapstore -------------
  // Checkpoints the whole kernel suite twice per mode.  Flat mode pays the
  // full file both times; store mode pays only for chunks the second run
  // actually changed (plus manifests), which is the Figure 5 lever the store
  // exists to shrink.
  if (opt.store) {
    std::printf("\n--- --store: flat vs snapstore, repeat checkpoints ---\n");
    benchkit::Table sw({"Benchmark", "mode", "ckpt1 (MB)", "ckpt2 (MB)",
                        "ckpt2 write (ms)"});
    std::string store_stats;
    for (const bool store_mode : {false, true}) {
      for (const auto& entry : workloads::suite()) {
        if (!opt.only.empty() && entry.name != opt.only) continue;
        auto w = entry.make();
        if (!w->executes_kernel()) continue;
        workloads::fresh_process(workloads::Binding::CheCL,
                                 bench::node_for(bench::paper_configs()[0]));
        rt.store_checkpoints = store_mode;
        rt.store_root = store_root;
        if (store_mode) std::filesystem::remove_all(store_root);
        workloads::Env env;
        env.shrink = opt.shrink;
        if (workloads::open_env(env, CL_DEVICE_TYPE_GPU) != CL_SUCCESS)
          continue;
        if (w->setup(env) != CL_SUCCESS || w->run(env) != CL_SUCCESS) continue;
        checl::cpr::PhaseTimes first;
        rt.engine().checkpoint(bench::ckpt_path("fig5_sw_a"), &first);
        w->run(env);  // the app advances; clean buffers stay clean
        checl::cpr::PhaseTimes second;
        rt.engine().checkpoint(bench::ckpt_path("fig5_sw_b"), &second);
        sw.add_row({entry.name, store_mode ? "store" : "flat",
                    benchkit::fmt("%.2f", static_cast<double>(first.file_bytes) / 1e6),
                    benchkit::fmt("%.2f", static_cast<double>(second.file_bytes) / 1e6),
                    benchkit::msec(second.write_ns)});
        w->teardown(env);
        workloads::close_env(env);
        if (store_mode) store_stats = checl::stats_json();
        rt.store_checkpoints = false;
      }
    }
    sw.print();
    if (!store_stats.empty())
      std::printf("stats (last store run): %s\n", store_stats.c_str());
  }
  std::filesystem::remove_all(store_root);
  return 0;
}
