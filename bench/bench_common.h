// bench_common.h — shared plumbing for the per-figure bench binaries.
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "checl/checl.h"
#include "workloads/harness.h"

namespace bench {

// The three device configurations of the evaluation section.
struct Config {
  const char* label;
  const char* platform_substr;
  cl_device_type device_type;
};

inline const std::vector<Config>& paper_configs() {
  static const std::vector<Config> kConfigs = {
      {"NVIDIA OpenCL / Tesla C1060", "NVIDIA", CL_DEVICE_TYPE_GPU},
      {"AMD OpenCL / Radeon HD5870", "AMD", CL_DEVICE_TYPE_GPU},
      {"AMD OpenCL / Core i7 920", "AMD", CL_DEVICE_TYPE_CPU},
  };
  return kConfigs;
}

// Each paper configuration runs on a machine with only its vendor's OpenCL
// installed (the testbed PCs had one platform each).
inline checl::NodeConfig node_for(const Config& cfg) {
  return std::string(cfg.platform_substr) == "NVIDIA" ? checl::nvidia_node()
                                                      : checl::amd_node();
}

struct Options {
  unsigned shrink = 1;   // problem-size divisor (1 = paper scale)
  int iterations = 5;    // measured run() calls per program (SDK samples loop)
  bool ramdisk = false;  // use RAM-disk storage (processor-selection mode)
  bool store = false;    // snapstore-backed checkpoints (fig5 repeat sweep)
  bool live = false;     // live pre-copy vs stop-the-world sweep (fig5)
  bool smoke = false;    // fast pass/fail mode for ctest
  std::string json_out;  // mirror machine-readable results into this file
  std::string only;      // run a single workload
  // Restore-executor ablation knobs (fig7): wave-parallel recreation,
  // batched fire-and-forget replay calls, and the worker count (0 = auto).
  bool restore_parallel = true;
  bool restore_batch = false;
  unsigned restore_workers = 0;
  // Compile-cache knob (fig7/fig8): point the node at an on-disk bytecode
  // pool so program recreation on restart deserializes instead of
  // recompiling.  Without it, restarts are cold (full recompile) — the
  // paper's Tr.
  bool warm_cache = false;
  // Distributed snapstore sweep (fig6): > 0 runs the sharded-checkpoint
  // series over {1, 2, ..., shards} checl_snapd daemons instead of the
  // plain NFS figure.
  unsigned shards = 0;
};

inline Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shrink") == 0 && i + 1 < argc)
      o.shrink = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc)
      o.iterations = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--ramdisk") == 0)
      o.ramdisk = true;
    else if (std::strcmp(argv[i], "--store") == 0)
      o.store = true;
    else if (std::strcmp(argv[i], "--live") == 0)
      o.live = true;
    else if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc)
      o.json_out = argv[++i];
    else if (std::strcmp(argv[i], "--smoke") == 0)
      o.smoke = true;
    else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc)
      o.only = argv[++i];
    else if (std::strcmp(argv[i], "--parallel") == 0)
      o.restore_parallel = true;
    else if (std::strcmp(argv[i], "--no-parallel") == 0)
      o.restore_parallel = false;
    else if (std::strcmp(argv[i], "--batch") == 0)
      o.restore_batch = true;
    else if (std::strcmp(argv[i], "--no-batch") == 0)
      o.restore_batch = false;
    else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
      o.restore_workers = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--warm-cache") == 0)
      o.warm_cache = true;
    else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc)
      o.shards = static_cast<unsigned>(std::atoi(argv[++i]));
  }
  if (o.shrink == 0) o.shrink = 1;
  return o;
}

inline std::string ckpt_path(const char* tag) {
  return std::string("/tmp/checl_bench_") + tag + ".ckpt";
}

// On-disk bytecode pool for --warm-cache runs; one per bench so concurrent
// ctest binaries don't share state.
inline std::string clc_cache_dir(const char* tag) {
  return std::string("/tmp/checl_bench_clbc_") + tag;
}

}  // namespace bench
