// fig6_mpi_checkpoint.cpp — reproduces Figure 6: checkpoint time of the
// MPI-version MD program as a function of problem size and node count, with
// per-rank local snapshots aggregated into a global snapshot on NFS.
#include <cstdio>

#include "bench_common.h"
#include "benchkit/table.h"
#include "minimpi/comm.h"
#include "workloads/factories.h"

namespace {

struct Cell {
  std::uint64_t total_ns = 0;
  std::uint64_t file_bytes = 0;
};

Cell run_md_checkpoint(int nranks, unsigned shrink) {
  checl::NodeConfig node = checl::dual_node();
  node.storage = slimcr::nfs();  // global snapshots live on NFS (paper)
  workloads::fresh_process(workloads::Binding::CheCL, node);
  checl::CheclRuntime::instance().checkpoint_path = bench::ckpt_path("fig6");

  Cell cell;
  std::mutex mu;
  minimpi::World::run(nranks, [&](minimpi::Comm& comm) {
    workloads::Env env;
    env.shrink = shrink;
    if (workloads::open_env(env, CL_DEVICE_TYPE_GPU, "NVIDIA") != CL_SUCCESS)
      return;
    auto w = workloads::make_md();
    if (w->setup(env) == CL_SUCCESS) w->run(env);
    const checl::cpr::PhaseTimes pt =
        comm.coordinated_checkpoint(bench::ckpt_path("fig6"));
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      cell.total_ns = pt.total_ns();
      cell.file_bytes = pt.file_bytes;
    }
    w->teardown(env);
    workloads::close_env(env);
  });
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  std::printf(
      "=== Figure 6: Checkpoint time for the MPI application (MD) ===\n"
      "global snapshot = aggregated per-rank local snapshots on NFS\n\n");

  benchkit::Table table({"problem size (shrink)", "1 node (s)", "2 nodes (s)",
                         "4 nodes (s)", "file@4 (MB)"});
  // problem size grows as shrink decreases
  const unsigned sizes[] = {opt.shrink * 4, opt.shrink * 2, opt.shrink};
  for (const unsigned shrink : sizes) {
    std::vector<std::string> row;
    row.push_back(benchkit::fmt("1/%u", shrink));
    Cell last;
    for (const int nranks : {1, 2, 4}) {
      const Cell c = run_md_checkpoint(nranks, shrink);
      row.push_back(benchkit::sec(c.total_ns, 3));
      last = c;
    }
    row.push_back(benchkit::fmt("%.2f", static_cast<double>(last.file_bytes) / 1e6));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nexpected shape: checkpoint time increases with problem size (file size)\n"
      "and with node count (NFS aggregation of local snapshots) — as in Figure 6\n");
  return 0;
}
