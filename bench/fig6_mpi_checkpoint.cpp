// fig6_mpi_checkpoint.cpp — reproduces Figure 6: checkpoint time of the
// MPI-version MD program as a function of problem size and node count, with
// per-rank local snapshots aggregated into a global snapshot on NFS.
//
// --shards N adds the series the paper could not show: the same MD
// checkpoint written through the distributed snapstore (N checl_snapd shard
// daemons, R=2 replication) instead of the single NFS mount.  Figure 6's
// trend INVERTS — more shards make the coordinated checkpoint cheaper, not
// dearer, because chunks stripe across daemons (per-shard write time is the
// max over shards, not the sum) and the per-node aggregation charge fans out
// by the shard count.  A second sweep measures parallel restore against the
// serial single-store baseline, and a repair probe degrades a write by
// killing one daemon mid-fleet and gates that repair() returns the fleet to
// full R-way replication.  --smoke turns the three claims into pass/fail
// gates (simulated clock, so the ratios are deterministic); --json-out
// mirrors the series into BENCH_snapd.json.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "benchkit/table.h"
#include "minimpi/comm.h"
#include "snapd/spawn.h"
#include "snapstore/shard.h"
#include "workloads/factories.h"

namespace {

namespace fs = std::filesystem;

struct Cell {
  std::uint64_t total_ns = 0;
  std::uint64_t file_bytes = 0;
};

// snap_shards == 0 runs the paper's plain-NFS path; > 0 checkpoints through
// a fleet of that many checl_snapd daemons (R=2).
Cell run_md_checkpoint(int nranks, unsigned shrink, unsigned snap_shards = 0) {
  const char* store_root = "/tmp/checl_bench_fig6_snapd";
  checl::NodeConfig node = checl::dual_node();
  node.storage = slimcr::nfs();  // global snapshots live on NFS (paper)
  node.snap_shards = snap_shards;
  node.snap_replicas = 2;
  workloads::fresh_process(workloads::Binding::CheCL, node);
  auto& rt = checl::CheclRuntime::instance();
  rt.checkpoint_path = bench::ckpt_path("fig6");
  if (snap_shards > 0) {
    // fresh_process tore down the previous fleet (engine destruction shuts
    // the owned daemons), so the root is safe to clear between points.
    fs::remove_all(store_root);
    rt.store_checkpoints = true;
    rt.store_root = store_root;
  }

  Cell cell;
  std::mutex mu;
  minimpi::World::run(nranks, [&](minimpi::Comm& comm) {
    workloads::Env env;
    env.shrink = shrink;
    if (workloads::open_env(env, CL_DEVICE_TYPE_GPU, "NVIDIA") != CL_SUCCESS)
      return;
    auto w = workloads::make_md();
    if (w->setup(env) == CL_SUCCESS) w->run(env);
    const checl::cpr::PhaseTimes pt =
        comm.coordinated_checkpoint(bench::ckpt_path("fig6"));
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      cell.total_ns = pt.total_ns();
      cell.file_bytes = pt.file_bytes;
    }
    w->teardown(env);
    workloads::close_env(env);
  });
  return cell;
}

// ---- the --shards sweep -----------------------------------------------------

struct ShardPoint {
  unsigned shards = 0;
  Cell md;                          // coordinated MD checkpoint through N shards
  std::uint64_t restore_ns = 0;     // synthetic parallel restore (simulated)
  std::uint64_t put_ns = 0;
  bool restore_identical = false;
};

struct RepairProbe {
  bool ran = false;
  std::uint64_t under_before = 0;   // keys degraded by the dead daemon
  std::uint64_t under_after = 0;    // must be 0 after repair()
  std::uint64_t replicas_restored = 0;
  std::uint64_t manifests_rewritten = 0;
  std::uint64_t unrecoverable = 0;
  bool status_ok = false;
};

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> v(n);
  std::uint32_t lcg = seed * 2654435761u + 12345u;
  for (auto& b : v)
    b = static_cast<std::uint8_t>((lcg = lcg * 1664525u + 1013904223u) >> 24);
  return v;
}

// Incompressible working set, so the simulated byte clock — not codec luck —
// decides the fan-out ratio.
slimcr::Snapshot synthetic_snapshot() {
  slimcr::Snapshot snap;
  for (std::uint32_t i = 0; i < 4; ++i)
    snap.set("mem." + std::to_string(i), random_bytes(4 * 1024 * 1024, i + 1));
  return snap;
}

bool snapshots_equal(const slimcr::Snapshot& a, const slimcr::Snapshot& b) {
  if (a.section_count() != b.section_count()) return false;
  for (const auto& [name, data] : a.sections()) {
    const auto* other = b.get(name);
    if (other == nullptr || *other != data) return false;
  }
  return true;
}

// Direct store-level put/get at `nshards`, no engine in the way: the restore
// fan-out claim measured on its own.
bool run_restore_point(unsigned nshards, const slimcr::Snapshot& snap,
                       const slimcr::StorageModel& storage, ShardPoint& pt) {
  const std::string root = "/tmp/checl_bench_fig6_fleet";
  fs::remove_all(root);
  snapstore::ShardedStore store;
  snapstore::ShardOptions opt;
  opt.replicas = 2;
  if (const auto s = store.open_local(root, nshards, opt); !s.ok()) {
    std::fprintf(stderr, "fig6: open_local(%u) failed: %s\n", nshards,
                 s.message.c_str());
    return false;
  }
  const snapstore::PutResult pr = store.put("snap", snap, storage);
  if (!pr.status.ok()) {
    std::fprintf(stderr, "fig6: put@%u shards failed: %s\n", nshards,
                 pr.status.message.c_str());
    return false;
  }
  slimcr::Snapshot back;
  const snapstore::GetResult gr = store.get("snap", back, storage);
  if (!gr.status.ok()) {
    std::fprintf(stderr, "fig6: get@%u shards failed: %s\n", nshards,
                 gr.status.message.c_str());
    return false;
  }
  pt.put_ns = pr.duration_ns;
  pt.restore_ns = gr.duration_ns;
  pt.restore_identical = snapshots_equal(snap, back);
  store.close();
  fs::remove_all(root);
  return true;
}

// Kill one daemon, write degraded, revive the shard, repair, recount.
RepairProbe run_repair_probe(unsigned nshards, const slimcr::Snapshot& snap,
                             const slimcr::StorageModel& storage) {
  RepairProbe probe;
  const std::string root = "/tmp/checl_bench_fig6_repair";
  fs::remove_all(root);
  snapstore::ShardedStore store;
  snapstore::ShardOptions opt;
  opt.replicas = 2;
  if (const auto s = store.open_local(root, nshards, opt); !s.ok()) {
    std::fprintf(stderr, "fig6: repair open_local failed: %s\n",
                 s.message.c_str());
    return probe;
  }
  const unsigned victim = nshards / 2;
  snapd::kill_snapd(*store.spawned(victim));
  if (!store.put("deg", snap, storage).status.ok()) {
    std::fprintf(stderr, "fig6: degraded put failed\n");
    return probe;
  }
  probe.under_before = store.under_replicated_total();
  snapd::SpawnedShard revived = snapd::spawn_snapd(store.shard_root(victim));
  if (!revived.ok() || !store.reconnect(victim, revived.port)) {
    std::fprintf(stderr, "fig6: shard revival failed: %s\n",
                 revived.error.c_str());
    return probe;
  }
  const snapstore::RepairReport rep = store.repair();
  probe.ran = true;
  probe.status_ok = rep.status.ok();
  probe.replicas_restored = rep.replicas_restored;
  probe.manifests_rewritten = rep.manifests_rewritten;
  probe.unrecoverable = rep.unrecoverable;
  probe.under_after = store.under_replicated_total();
  store.close();
  snapd::reap_snapd(revived);
  snapd::kill_snapd(revived);
  fs::remove_all(root);
  return probe;
}

int run_sharded(const bench::Options& opt) {
  // 1, 2, 4, ... up to --shards N (N itself always included).
  std::vector<unsigned> series;
  for (unsigned s = 1; s < opt.shards; s *= 2) series.push_back(s);
  series.push_back(opt.shards);

  // The inversion claim needs relative ordering only, so the smoke run may
  // shrink the MD problem; the simulated clock keeps the ratios exact.
  const unsigned shrink = opt.smoke ? opt.shrink * 8 : opt.shrink;
  const int nranks = 4;

  std::printf(
      "=== Figure 6, inverted: MD checkpoint through the sharded snapstore "
      "===\n%d ranks, R=2 replication, %u..%u checl_snapd daemons\n\n",
      nranks, series.front(), series.back());

  std::vector<ShardPoint> points;
  const slimcr::StorageModel storage = slimcr::nfs();
  const slimcr::Snapshot snap = synthetic_snapshot();
  for (const unsigned s : series) {
    ShardPoint pt;
    pt.shards = s;
    pt.md = run_md_checkpoint(nranks, shrink, s);
    points.push_back(pt);
  }
  // Shut the last MD fleet down before the store-level sweep spawns its own.
  checl::CheclRuntime::instance().reset_all();
  bool ok = true;
  for (ShardPoint& pt : points)
    ok = run_restore_point(pt.shards, snap, storage, pt) && ok;
  const RepairProbe probe = run_repair_probe(series.back(), snap, storage);

  benchkit::Table table({"shards", "md ckpt (s)", "md file (MB)",
                         "restore 16MB (s)", "vs serial"});
  const double serial_restore =
      static_cast<double>(points.front().restore_ns);
  for (const ShardPoint& pt : points) {
    table.add_row(
        {benchkit::fmt("%u", pt.shards), benchkit::sec(pt.md.total_ns, 3),
         benchkit::fmt("%.2f", static_cast<double>(pt.md.file_bytes) / 1e6),
         benchkit::sec(pt.restore_ns, 3),
         benchkit::fmt("%.2fx", pt.restore_ns == 0
                                    ? 0.0
                                    : serial_restore /
                                          static_cast<double>(pt.restore_ns))});
  }
  table.print();
  std::printf(
      "\nrepair probe (%u shards, 1 killed mid-fleet): under-replicated "
      "%llu -> %llu, %llu replicas restored, %llu manifests rewritten\n",
      series.back(), static_cast<unsigned long long>(probe.under_before),
      static_cast<unsigned long long>(probe.under_after),
      static_cast<unsigned long long>(probe.replicas_restored),
      static_cast<unsigned long long>(probe.manifests_rewritten));

  // --- gates / JSON ----------------------------------------------------------
  const double fanout =
      points.back().restore_ns == 0
          ? 0.0
          : serial_restore / static_cast<double>(points.back().restore_ns);
  bool non_increasing = true;
  for (std::size_t i = 1; i < points.size(); ++i) {
    // 1% tolerance: the series is simulated, but placement spreads chunks
    // slightly unevenly across shard counts.
    if (static_cast<double>(points[i].md.total_ns) >
        static_cast<double>(points[i - 1].md.total_ns) * 1.01)
      non_increasing = false;
  }
  const bool repair_clean = probe.ran && probe.status_ok &&
                            probe.under_before > 0 && probe.under_after == 0 &&
                            probe.unrecoverable == 0;

  std::string json = "{\n  \"bench\": \"fig6_sharded\",\n  \"series\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ShardPoint& pt = points[i];
    json += benchkit::fmt(
        "    {\"shards\": %u, \"md_ckpt_ms\": %.3f, \"md_file_bytes\": %llu, "
        "\"put_ms\": %.3f, \"restore_ms\": %.3f, \"restore_identical\": %s}%s\n",
        pt.shards, static_cast<double>(pt.md.total_ns) / 1e6,
        static_cast<unsigned long long>(pt.md.file_bytes),
        static_cast<double>(pt.put_ns) / 1e6,
        static_cast<double>(pt.restore_ns) / 1e6,
        pt.restore_identical ? "true" : "false",
        i + 1 < points.size() ? "," : "");
  }
  json += benchkit::fmt(
      "  ],\n  \"repair\": {\"under_before\": %llu, \"under_after\": %llu, "
      "\"replicas_restored\": %llu, \"manifests_rewritten\": %llu, "
      "\"unrecoverable\": %llu},\n",
      static_cast<unsigned long long>(probe.under_before),
      static_cast<unsigned long long>(probe.under_after),
      static_cast<unsigned long long>(probe.replicas_restored),
      static_cast<unsigned long long>(probe.manifests_rewritten),
      static_cast<unsigned long long>(probe.unrecoverable));
  json += benchkit::fmt(
      "  \"gates\": {\"ckpt_non_increasing\": %s, \"restore_fanout_x\": %.2f, "
      "\"repair_clean\": %s}\n}\n",
      non_increasing ? "true" : "false", fanout,
      repair_clean ? "true" : "false");
  std::printf("\n%s", json.c_str());
  if (!opt.json_out.empty()) {
    if (std::FILE* f = std::fopen(opt.json_out.c_str(), "w"); f != nullptr) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("json written to %s\n", opt.json_out.c_str());
    } else {
      std::fprintf(stderr, "fig6: cannot write %s\n", opt.json_out.c_str());
      ok = false;
    }
  }

  if (opt.smoke) {
    if (!non_increasing) {
      std::fprintf(stderr,
                   "smoke: md checkpoint time INCREASED along the shard "
                   "series — figure 6 did not invert\n");
      ok = false;
    }
    if (fanout < 2.0) {
      std::fprintf(stderr,
                   "smoke: parallel restore only %.2fx the serial store "
                   "(need >= 2x)\n",
                   fanout);
      ok = false;
    }
    for (const ShardPoint& pt : points) {
      if (!pt.restore_identical) {
        std::fprintf(stderr, "smoke: restore@%u shards not byte-identical\n",
                     pt.shards);
        ok = false;
      }
    }
    if (!repair_clean) {
      std::fprintf(stderr,
                   "smoke: repair probe failed (before=%llu after=%llu "
                   "unrecoverable=%llu ok=%d)\n",
                   static_cast<unsigned long long>(probe.under_before),
                   static_cast<unsigned long long>(probe.under_after),
                   static_cast<unsigned long long>(probe.unrecoverable),
                   probe.status_ok ? 1 : 0);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  if (opt.shards > 0) return run_sharded(opt);

  std::printf(
      "=== Figure 6: Checkpoint time for the MPI application (MD) ===\n"
      "global snapshot = aggregated per-rank local snapshots on NFS\n\n");

  benchkit::Table table({"problem size (shrink)", "1 node (s)", "2 nodes (s)",
                         "4 nodes (s)", "file@4 (MB)"});
  // problem size grows as shrink decreases
  const unsigned sizes[] = {opt.shrink * 4, opt.shrink * 2, opt.shrink};
  for (const unsigned shrink : sizes) {
    std::vector<std::string> row;
    row.push_back(benchkit::fmt("1/%u", shrink));
    Cell last;
    for (const int nranks : {1, 2, 4}) {
      const Cell c = run_md_checkpoint(nranks, shrink);
      row.push_back(benchkit::sec(c.total_ns, 3));
      last = c;
    }
    row.push_back(benchkit::fmt("%.2f", static_cast<double>(last.file_bytes) / 1e6));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nexpected shape: checkpoint time increases with problem size (file size)\n"
      "and with node count (NFS aggregation of local snapshots) — as in Figure 6\n");
  return 0;
}
