// snapstore_micro — ablation of the content-addressed checkpoint store.
//
// Protocol: build a synthetic working set (64 buffers x 256 KiB, half
// patterned / half random), write checkpoint 0, dirty 10% of the buffers,
// write checkpoint 1 — the repeat-checkpoint case the store exists for.
// Configurations ablate each mechanism in turn:
//
//   flat             slimcr::Snapshot::save  (the pre-snapstore baseline)
//   chunk            chunking only: dedup off, identity codec, sync
//   chunk_dedup      + content-addressed dedup
//   chunk_dedup_lz   + LZ compression
//   full_async       + the hash/compress worker pipeline (wall-clock only;
//                      bytes and simulated time must not change)
//
// Prints JSON: per-config ckpt0/ckpt1 {stored_bytes, sim_write_ms, wall_ms},
// the dedup bytes-written reduction for checkpoint 1, and the final
// checl::stats_json() counters.  --smoke additionally verifies both
// checkpoints restore bit-exact, GC of ckpt0 keeps ckpt1 restorable, the
// pool drains after both manifests are removed, and the dedup reduction is
// at least 2x — exiting nonzero otherwise (this is a tier-1 ctest).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/stats.h"
#include "slimcr/snapshot.h"
#include "slimcr/storage.h"
#include "snapstore/store.h"

namespace {

namespace fs = std::filesystem;

constexpr std::size_t kBuffers = 64;
constexpr std::size_t kBufBytes = 256 * 1024;
constexpr std::size_t kDirtyEvery = 10;  // ~10% of buffers change per epoch

std::vector<std::uint8_t> make_buffer(std::size_t i, std::uint32_t epoch) {
  std::vector<std::uint8_t> v(kBufBytes);
  std::uint32_t lcg = static_cast<std::uint32_t>(i * 2654435761u) + epoch;
  if (i % 2 == 0) {
    // patterned: compressible, like zero-padded simulation fields.  The
    // i*13 + epoch*101 (mod 251) offset keeps a dirtied buffer's content
    // distinct from every other buffer's, so a repeat checkpoint honestly
    // pays for its dirty fraction instead of deduping it against neighbours.
    for (std::size_t j = 0; j < v.size(); ++j)
      v[j] = static_cast<std::uint8_t>((j / 128 + i * 13 + epoch * 101) % 251);
  } else {
    // random: incompressible, like packed particle data
    for (auto& b : v)
      b = static_cast<std::uint8_t>((lcg = lcg * 1664525u + 1013904223u) >> 24);
  }
  return v;
}

slimcr::Snapshot make_working_set(std::uint32_t epoch) {
  // epoch e dirties buffer i iff i % kDirtyEvery == e % kDirtyEvery is false
  // for epoch 0 (everything fresh) — later epochs regenerate ~10% of buffers.
  slimcr::Snapshot snap;
  for (std::size_t i = 0; i < kBuffers; ++i) {
    const std::uint32_t buf_epoch =
        (epoch > 0 && i % kDirtyEvery == 0) ? epoch : 0;
    snap.set("mem." + std::to_string(i), make_buffer(i, buf_epoch));
  }
  return snap;
}

struct CkptCost {
  std::uint64_t stored_bytes = 0;
  std::uint64_t sim_write_ns = 0;
  double wall_ms = 0;
};

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool snapshots_equal(const slimcr::Snapshot& a, const slimcr::Snapshot& b) {
  if (a.section_count() != b.section_count()) return false;
  for (const auto& [name, data] : a.sections()) {
    const auto* other = b.get(name);
    if (other == nullptr || *other != data) return false;
  }
  return true;
}

struct ConfigResult {
  std::string name;
  CkptCost ckpt[2];
  bool ok = true;  // smoke verification outcome
};

// Flat baseline: two full Snapshot::save calls.
ConfigResult run_flat(const slimcr::StorageModel& disk, bool smoke) {
  ConfigResult r;
  r.name = "flat";
  const std::string base = "/tmp/checl_snapstore_micro_flat";
  for (std::uint32_t epoch = 0; epoch < 2; ++epoch) {
    const slimcr::Snapshot snap = make_working_set(epoch);
    const std::string path = base + std::to_string(epoch) + ".ckpt";
    const auto t0 = std::chrono::steady_clock::now();
    const slimcr::IoResult io = snap.save(path, disk);
    r.ckpt[epoch].wall_ms = wall_ms_since(t0);
    if (!io.ok) {
      std::fprintf(stderr, "flat save failed: %s\n", io.error.c_str());
      r.ok = false;
      return r;
    }
    r.ckpt[epoch].stored_bytes = io.bytes;
    r.ckpt[epoch].sim_write_ns = io.duration_ns;
    if (smoke) {
      slimcr::Snapshot back;
      if (!back.load(path, disk).ok || !snapshots_equal(snap, back))
        r.ok = false;
    }
  }
  for (int e = 0; e < 2; ++e)
    std::remove((base + std::to_string(e) + ".ckpt").c_str());
  return r;
}

ConfigResult run_store(const char* name, const snapstore::Options& opt,
                       const slimcr::StorageModel& disk, bool smoke,
                       std::string* stats_out) {
  ConfigResult r;
  r.name = name;
  const std::string root =
      std::string("/tmp/checl_snapstore_micro_") + name;
  fs::remove_all(root);
  snapstore::Store st;
  if (const auto s = st.open(root, opt); !s.ok()) {
    std::fprintf(stderr, "%s: open failed: %s\n", name, s.message.c_str());
    r.ok = false;
    return r;
  }
  slimcr::Snapshot snaps[2] = {make_working_set(0), make_working_set(1)};
  for (int epoch = 0; epoch < 2; ++epoch) {
    const std::string mname = std::string("ckpt") + std::to_string(epoch);
    const auto t0 = std::chrono::steady_clock::now();
    const snapstore::PutResult pr = st.put(mname, snaps[epoch], disk);
    r.ckpt[epoch].wall_ms = wall_ms_since(t0);
    if (!pr.status.ok()) {
      std::fprintf(stderr, "%s: put failed: %s\n", name,
                   pr.status.message.c_str());
      r.ok = false;
      return r;
    }
    r.ckpt[epoch].stored_bytes = pr.stored_bytes;
    r.ckpt[epoch].sim_write_ns = pr.duration_ns;
  }
  if (smoke) {
    // both restore bit-exact
    for (int epoch = 0; epoch < 2; ++epoch) {
      slimcr::Snapshot back;
      const auto gr =
          st.get("ckpt" + std::to_string(epoch), back, disk);
      if (!gr.status.ok() || !snapshots_equal(snaps[epoch], back)) {
        std::fprintf(stderr, "%s: ckpt%d restore mismatch\n", name, epoch);
        r.ok = false;
      }
    }
    // GC of the first must not break the second
    if (!st.remove("ckpt0").ok()) r.ok = false;
    slimcr::Snapshot back;
    if (!st.get("ckpt1", back, disk).status.ok() ||
        !snapshots_equal(snaps[1], back)) {
      std::fprintf(stderr, "%s: ckpt1 broken after GC of ckpt0\n", name);
      r.ok = false;
    }
    // pool drains completely once the last manifest goes
    if (!st.remove("ckpt1").ok() || st.stats().chunks_in_pool != 0 ||
        st.stats().pool_stored_bytes != 0) {
      std::fprintf(stderr, "%s: pool not empty after GC of both\n", name);
      r.ok = false;
    }
  }
  if (stats_out != nullptr) *stats_out = checl::stats_json(nullptr, &st);
  fs::remove_all(root);
  return r;
}

void print_cost(const CkptCost& c, bool last) {
  std::printf(
      "      {\"stored_bytes\": %llu, \"sim_write_ms\": %.3f, "
      "\"wall_ms\": %.3f}%s\n",
      static_cast<unsigned long long>(c.stored_bytes),
      static_cast<double>(c.sim_write_ns) / 1e6, c.wall_ms, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const slimcr::StorageModel disk = slimcr::local_disk();

  snapstore::Options chunk_only;
  chunk_only.dedup = false;
  chunk_only.codec = snapstore::CodecId::Identity;
  chunk_only.async = false;

  snapstore::Options chunk_dedup = chunk_only;
  chunk_dedup.dedup = true;

  snapstore::Options chunk_dedup_lz = chunk_dedup;
  chunk_dedup_lz.codec = snapstore::CodecId::Lz;

  snapstore::Options full_async = chunk_dedup_lz;
  full_async.async = true;
  full_async.workers = 4;

  std::string last_stats;
  std::vector<ConfigResult> results;
  results.push_back(run_flat(disk, smoke));
  results.push_back(run_store("chunk", chunk_only, disk, smoke, nullptr));
  results.push_back(run_store("chunk_dedup", chunk_dedup, disk, smoke, nullptr));
  results.push_back(
      run_store("chunk_dedup_lz", chunk_dedup_lz, disk, smoke, nullptr));
  results.push_back(
      run_store("full_async", full_async, disk, smoke, &last_stats));

  // Headline: how much smaller is the REPEAT checkpoint with dedup on,
  // against the flat baseline (10% dirty working set)?
  const std::uint64_t flat_repeat = results[0].ckpt[1].stored_bytes;
  const std::uint64_t dedup_repeat = results[2].ckpt[1].stored_bytes;
  const double reduction =
      dedup_repeat == 0 ? 0.0
                        : static_cast<double>(flat_repeat) /
                              static_cast<double>(dedup_repeat);

  std::printf("{\n  \"bench\": \"snapstore_micro\",\n");
  std::printf("  \"working_set\": {\"buffers\": %zu, \"buffer_bytes\": %zu, "
              "\"dirty_fraction\": %.2f},\n",
              kBuffers, kBufBytes, 1.0 / kDirtyEvery);
  std::printf("  \"configs\": {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("    \"%s\": [\n", results[i].name.c_str());
    print_cost(results[i].ckpt[0], false);
    print_cost(results[i].ckpt[1], true);
    std::printf("    ]%s\n", i + 1 < results.size() ? "," : "");
  }
  std::printf("  },\n");
  std::printf("  \"dedup_bytes_reduction_vs_flat\": %.2f,\n", reduction);
  std::printf("  \"stats\": %s\n}\n", last_stats.c_str());

  if (smoke) {
    bool ok = reduction >= 2.0;
    if (!ok)
      std::fprintf(stderr, "smoke: dedup reduction %.2fx < 2x\n", reduction);
    for (const ConfigResult& r : results) {
      if (!r.ok) {
        std::fprintf(stderr, "smoke: config %s failed verification\n",
                     r.name.c_str());
        ok = false;
      }
    }
    return ok ? 0 : 1;
  }
  return 0;
}
