// fig4_runtime_overhead.cpp — reproduces Figure 4: runtime overhead caused by
// the CheCL runtime system.  Every benchmark program is executed once as a
// whole "process" (platform bring-up + setup + measured iterations) with the
// native binding and once with CheCL; the reported number is
// time(CheCL)/time(native).  No checkpoint is taken.
#include <cstdio>

#include "bench_common.h"
#include "benchkit/table.h"

namespace {

// One whole-program run; returns total virtual time, or 0 on failure.
std::uint64_t run_program(workloads::Binding binding, const checl::NodeConfig& node,
                          const bench::Config& cfg, const workloads::Entry& entry,
                          const bench::Options& opt, std::string* error) {
  workloads::fresh_process(binding, node);
  workloads::Env env;
  env.shrink = opt.shrink;
  if (workloads::open_env(env, cfg.device_type, cfg.platform_substr) != CL_SUCCESS) {
    *error = "no device";
    return 0;
  }
  auto w = entry.make();
  const workloads::RunResult res = workloads::run_workload(*w, env, opt.iterations);
  workloads::close_env(env);
  if (!res.ok || !res.verified) {
    *error = res.error;
    return 0;
  }
  return workloads::now_ns();  // whole-program virtual time (clock reset at fresh_process)
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  std::printf(
      "=== Figure 4: Timing overhead caused by the CheCL runtime system ===\n"
      "normalized execution time: CheCL / native OpenCL (no checkpointing)\n"
      "paper averages: 10.1%% (NVIDIA GPU), 19.0%% (AMD GPU), 12.2%% (AMD CPU)\n\n");

  for (const auto& cfg : bench::paper_configs()) {
    checl::NodeConfig node = bench::node_for(cfg);
    std::printf("--- %s ---\n", cfg.label);
    benchkit::Table table(
        {"Benchmark", "native (s)", "CheCL (s)", "normalized"});
    double sum_ratio = 0;
    int counted = 0;
    for (const auto& entry : workloads::suite()) {
      if (!opt.only.empty() && entry.name != opt.only) continue;
      std::string err_native;
      std::string err_checl;
      const std::uint64_t t_native = run_program(
          workloads::Binding::Native, node, cfg, entry, opt, &err_native);
      const std::uint64_t t_checl = run_program(
          workloads::Binding::CheCL, node, cfg, entry, opt, &err_checl);
      if (t_native == 0 || t_checl == 0) {
        // the paper's portability note: some SDK samples cannot run on the
        // AMD GPU (work-group size limits) — reported as not portable
        table.add_row({entry.name, t_native == 0 ? "n/a" : benchkit::sec(t_native),
                       t_checl == 0 ? "n/a" : benchkit::sec(t_checl),
                       "not portable"});
        continue;
      }
      const double ratio =
          static_cast<double>(t_checl) / static_cast<double>(t_native);
      sum_ratio += ratio;
      ++counted;
      table.add_row({entry.name, benchkit::sec(t_native, 3),
                     benchkit::sec(t_checl, 3), benchkit::fmt("%.3f", ratio)});
    }
    table.print();
    if (counted > 0)
      std::printf("average runtime overhead: %.1f%%  (over %d portable programs)\n\n",
                  (sum_ratio / counted - 1.0) * 100.0, counted);
  }
  return 0;
}
