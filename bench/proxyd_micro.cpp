// proxyd_micro.cpp — multi-tenant daemon microbenchmark: scaling + fairness.
//
// One in-process checl_proxyd event loop, N concurrent client threads, two
// axes:
//   * scaling  — N clients (sweep 1 -> 256; --smoke trims to {1,4,8}) each
//     hammering small synchronous calls.  A single ping-ponging client is
//     latency-bound; the daemon must overlap independent sessions, so
//     aggregate small-call throughput has to GROW with clients until the
//     loop is CPU-bound.
//   * fairness — one probe client's small-call p99 latency measured idle,
//     then again while a greedy client streams multi-MiB writes.  Deficit
//     round robin must keep the probe's p99 within a bounded factor of the
//     idle case (the flooder gets one quantum per round, not the whole loop).
//
// Emits one JSON object on stdout (mirrored to --json-out; CI tracks it as
// BENCH_proxyd.json).  --smoke shrinks the workload and exits non-zero if
// either the scaling or the fairness gate fails (registered as a tier-1
// ctest, RUN_SERIAL — both gates are wall-clock).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ipc/channel.h"
#include "ipc/serial.h"
#include "proxy/opcodes.h"
#include "proxy/spawn.h"
#include "proxyd/daemon.h"
#include "simcl/specs.h"

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

std::uint64_t percentile(std::vector<std::uint64_t>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

std::string g_json;
void emit(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  g_json += buf;
}

// One attached client; small-call traffic needs no shm rings at all, the
// greedy bulk client gets a ring sized for its transfer.
proxy::Spawned attach(const std::string& socket, std::size_t ring_bytes) {
  proxy::SpawnOptions o;
  o.daemon_socket = socket;
  o.use_shm = ring_bytes != 0;
  if (ring_bytes != 0) o.shm_ring_bytes = ring_bytes;
  proxy::Spawned s = proxy::spawn_proxy(proxy::Transport::Daemon, o);
  if (!s.ok()) return s;
  proxy::IpcCosts costs;
  costs.spawn_ns = 0;
  if (s.client()->configure(simcl::default_platforms(), costs, true) !=
      CL_SUCCESS)
    s.stop();
  return s;
}

// Aggregate small-call throughput with `clients` concurrent sessions.
struct ScalePoint {
  int clients = 0;
  std::uint64_t calls = 0;
  std::uint64_t wall_ns = 0;
  double calls_per_sec = 0;
};

ScalePoint run_scale(const std::string& socket, int clients, int calls_each) {
  ScalePoint r;
  r.clients = clients;
  std::vector<proxy::Spawned> cs(static_cast<std::size_t>(clients));
  for (auto& s : cs) {
    s = attach(socket, 0);
    if (!s.ok()) return r;
  }
  std::atomic<bool> go{false};
  std::atomic<int> failed{0};
  std::vector<std::thread> ths;
  ths.reserve(cs.size());
  for (auto& s : cs)
    ths.emplace_back([&go, &failed, &s, calls_each] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < calls_each; ++i)
        if (s.client()->ping() != CL_SUCCESS) {
          failed.fetch_add(1);
          return;
        }
    });
  const std::uint64_t t0 = now_ns();
  go.store(true, std::memory_order_release);
  for (auto& t : ths) t.join();
  r.wall_ns = now_ns() - t0;
  if (failed.load() != 0) return r;
  r.calls = static_cast<std::uint64_t>(clients) *
            static_cast<std::uint64_t>(calls_each);
  r.calls_per_sec =
      1e9 * static_cast<double>(r.calls) / static_cast<double>(r.wall_ns);
  for (auto& s : cs) s.stop();
  return r;
}

// p99 small-call latency of a probe client, optionally next to a greedy bulk
// streamer.
std::uint64_t run_probe_p99(const std::string& socket, int samples,
                            bool with_greedy, std::uint64_t* greedy_bytes) {
  proxy::Spawned probe = attach(socket, 0);
  if (!probe.ok()) return 0;

  std::atomic<bool> stop{false};
  std::uint64_t streamed = 0;
  std::thread greedy;
  if (with_greedy) {
    greedy = std::thread([&socket, &stop, &streamed] {
      constexpr std::size_t kChunk = 4u << 20;
      proxy::Spawned s = attach(socket, 2 * kChunk + (1u << 20));
      if (!s.ok()) return;
      proxy::Client& c = *s.client();
      std::vector<proxy::RemoteHandle> plats, devs;
      cl_uint n = 0;
      proxy::RemoteHandle ctx = 0, q = 0, mem = 0, ev = 0;
      c.get_platform_ids(4, plats, n);
      c.get_device_ids(plats[0], CL_DEVICE_TYPE_ALL, 4, devs, n);
      c.create_context({}, {devs.data(), 1}, ctx);
      c.create_queue(ctx, devs[0], 0, q);
      if (c.create_buffer(ctx, 0, kChunk, {}, mem) != CL_SUCCESS) return;
      std::vector<std::uint8_t> chunk(kChunk, 0xAB);
      while (!stop.load(std::memory_order_acquire)) {
        if (c.enqueue_write(q, mem, 0, chunk, false, ev) != CL_SUCCESS) break;
        streamed += chunk.size();
      }
      s.stop();
    });
    // let the flood establish itself before sampling
    ::usleep(50'000);
  }

  std::vector<std::uint64_t> lat;
  lat.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t t0 = now_ns();
    if (probe.client()->ping() != CL_SUCCESS) break;
    lat.push_back(now_ns() - t0);
  }
  stop.store(true, std::memory_order_release);
  if (greedy.joinable()) greedy.join();
  if (greedy_bytes != nullptr) *greedy_bytes = streamed;
  probe.stop();
  return percentile(lat, 0.99);
}

// Reply-coalescing probe: one raw-wire client pipelines `depth` pings
// back-to-back before reading any reply, so the daemon's DRR round finds a
// deep run queue and must answer the whole quantum with one writev
// (stats.reply_flushes) instead of one syscall per frame.  Synchronous
// clients (everything above) can't show this — their queue depth is 1.
struct CoalescePoint {
  std::uint64_t calls = 0;    // frames the daemon served during the probe
  std::uint64_t flushes = 0;  // coalesced writev rounds that answered them
  double ratio = 0;           // calls per flush; 1.0 = nothing coalesced
  bool ok = false;
};

CoalescePoint run_coalesce(proxyd::Daemon& daemon, const std::string& socket,
                           int bursts, int depth) {
  CoalescePoint r;
  const int fd = ipc::unix_connect(socket.c_str());
  if (fd < 0) return r;
  ipc::SocketChannel ch(fd);
  ipc::Writer w;
  w.u32(proxy::kProxydProtoVersion);
  w.str("");  // no shm ring: everything inline
  w.u64(0);
  ipc::Message attach_msg;
  attach_msg.op = static_cast<std::uint32_t>(proxy::Op::Attach);
  attach_msg.payload = w.take();
  ipc::Message reply;
  if (!ch.send(attach_msg) || !ch.recv(reply)) return r;
  const proxyd::Stats s0 = daemon.stats();
  ipc::Message ping;
  ping.op = static_cast<std::uint32_t>(proxy::Op::Ping);
  for (int b = 0; b < bursts; ++b) {
    for (int i = 0; i < depth; ++i)
      if (!ch.send(ping)) return r;
    for (int i = 0; i < depth; ++i)
      if (!ch.recv(reply)) return r;
  }
  const proxyd::Stats s1 = daemon.stats();
  r.calls = s1.calls - s0.calls;
  r.flushes = s1.reply_flushes - s0.reply_flushes;
  r.ratio = r.flushes > 0
                ? static_cast<double>(r.calls) / static_cast<double>(r.flushes)
                : 0;
  r.ok = r.calls >=
         static_cast<std::uint64_t>(bursts) * static_cast<std::uint64_t>(depth);
  return r;  // channel destructor closes the fd; the daemon reclaims on EOF
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc)
      json_out = argv[++i];
  }

  const std::string socket =
      "/tmp/checl_proxyd_micro_" + std::to_string(::getpid()) + ".sock";
  proxyd::Options dopts;
  dopts.max_clients = 300;
  dopts.max_inflight = 512;  // the coalescing probe pipelines past the default
  proxyd::Daemon daemon(socket, dopts);
  if (!daemon.ok()) {
    std::fprintf(stderr, "proxyd_micro: %s\n", daemon.error().c_str());
    return 1;
  }
  std::thread loop([&daemon] { daemon.run(); });

  const std::vector<int> sweep =
      smoke ? std::vector<int>{1, 4, 8}
            : std::vector<int>{1, 2, 4, 8, 16, 32, 64, 128, 256};
  const int calls_each = smoke ? 2000 : 5000;

  emit("{\"bench\": \"proxyd_micro\", \"smoke\": %s", smoke ? "true" : "false");
  emit(", \"scaling\": [");
  double cps_one = 0, cps_best = 0;
  bool scale_ok = true;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const ScalePoint p = run_scale(socket, sweep[i], calls_each);
    if (p.calls == 0) scale_ok = false;
    if (p.clients == 1) cps_one = p.calls_per_sec;
    cps_best = std::max(cps_best, p.calls_per_sec);
    emit("%s{\"clients\": %d, \"calls\": %llu, \"wall_ns\": %llu, "
         "\"calls_per_sec\": %.0f}",
         i == 0 ? "" : ", ", p.clients,
         static_cast<unsigned long long>(p.calls),
         static_cast<unsigned long long>(p.wall_ns), p.calls_per_sec);
    std::fprintf(stderr, "proxyd_micro: %3d clients  %9.0f calls/s\n",
                 p.clients, p.calls_per_sec);
  }
  emit("]");

  const int samples = smoke ? 3000 : 10000;
  const std::uint64_t p99_idle = run_probe_p99(socket, samples, false, nullptr);
  std::uint64_t greedy_bytes = 0;
  const std::uint64_t p99_loaded =
      run_probe_p99(socket, samples, true, &greedy_bytes);
  // The loaded bound: a greedy 4 MiB streamer may legitimately hold the loop
  // for one frame's worth of memcpy, so the gate is a factor over max(idle,
  // one large-frame service time ~200us), not over the raw idle p99.
  const std::uint64_t floor_ns = 200'000;
  const std::uint64_t bound = 64 * std::max(p99_idle, floor_ns);
  emit(", \"fairness\": {\"p99_idle_ns\": %llu, \"p99_loaded_ns\": %llu, "
       "\"greedy_bytes\": %llu, \"bound_ns\": %llu}",
       static_cast<unsigned long long>(p99_idle),
       static_cast<unsigned long long>(p99_loaded),
       static_cast<unsigned long long>(greedy_bytes),
       static_cast<unsigned long long>(bound));
  std::fprintf(stderr,
               "proxyd_micro: p99 idle %.1fus  loaded %.1fus  (bound %.1fus, "
               "greedy streamed %.1f MiB)\n",
               1e-3 * static_cast<double>(p99_idle),
               1e-3 * static_cast<double>(p99_loaded),
               1e-3 * static_cast<double>(bound),
               static_cast<double>(greedy_bytes) / (1u << 20));

  const CoalescePoint co =
      run_coalesce(daemon, socket, smoke ? 8 : 32, smoke ? 128 : 256);
  emit(", \"coalescing\": {\"calls\": %llu, \"flushes\": %llu, "
       "\"calls_per_flush\": %.1f}",
       static_cast<unsigned long long>(co.calls),
       static_cast<unsigned long long>(co.flushes), co.ratio);
  std::fprintf(stderr,
               "proxyd_micro: coalescing %llu pipelined calls in %llu writev "
               "rounds (%.1f calls/flush)\n",
               static_cast<unsigned long long>(co.calls),
               static_cast<unsigned long long>(co.flushes), co.ratio);

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  emit(", \"cores\": %u", cores);

  const proxyd::Stats st = daemon.stats();
  emit(", \"daemon\": {\"attaches\": %llu, \"calls\": %llu, "
       "\"sched_rounds\": %llu, \"leaked_handles\": %llu}",
       static_cast<unsigned long long>(st.attaches),
       static_cast<unsigned long long>(st.calls),
       static_cast<unsigned long long>(st.sched_rounds),
       static_cast<unsigned long long>(st.leaked_handles));

  int rc = 0;
  if (smoke) {
    // Scale-up needs the daemon and its clients on separate cores; on a
    // single-core box every thread time-slices one CPU and the only thing
    // left to gate is that shared-loop multiplexing does not COLLAPSE
    // aggregate throughput versus a lone client.
    const double scale_need = cores >= 4 ? 1.3 : 0.6;
    const bool scaling_gate =
        scale_ok && cps_one > 0 && cps_best >= scale_need * cps_one;
    const bool fairness_gate =
        p99_idle > 0 && p99_loaded > 0 && p99_loaded <= bound;
    const bool leak_gate = st.leaked_handles == 0;
    // Structural, not wall-clock: a deep pipelined queue must coalesce well
    // past one-reply-per-syscall.
    const bool coalesce_gate = co.ok && co.flushes > 0 && co.ratio >= 2.0;
    if (!scaling_gate)
      std::fprintf(stderr,
                   "proxyd_micro: FAIL scaling gate (1 client %.0f calls/s, "
                   "best %.0f; need >= %.1fx on %u cores)\n",
                   cps_one, cps_best, scale_need, cores);
    if (!fairness_gate)
      std::fprintf(stderr,
                   "proxyd_micro: FAIL fairness gate (p99 loaded %llu ns > "
                   "bound %llu ns)\n",
                   static_cast<unsigned long long>(p99_loaded),
                   static_cast<unsigned long long>(bound));
    if (!leak_gate)
      std::fprintf(stderr, "proxyd_micro: FAIL leak gate (%llu leaked)\n",
                   static_cast<unsigned long long>(st.leaked_handles));
    if (!coalesce_gate)
      std::fprintf(stderr,
                   "proxyd_micro: FAIL coalescing gate (%llu calls, %llu "
                   "flushes, ratio %.1f < 2.0)\n",
                   static_cast<unsigned long long>(co.calls),
                   static_cast<unsigned long long>(co.flushes), co.ratio);
    rc = scaling_gate && fairness_gate && leak_gate && coalesce_gate ? 0 : 1;
    emit(", \"gates\": {\"scaling\": %s, \"fairness\": %s, \"leaks\": %s, "
         "\"coalescing\": %s}",
         scaling_gate ? "true" : "false", fairness_gate ? "true" : "false",
         leak_gate ? "true" : "false", coalesce_gate ? "true" : "false");
  }
  emit("}\n");

  daemon.stop();
  loop.join();

  std::fputs(g_json.c_str(), stdout);
  if (json_out != nullptr) {
    std::FILE* f = std::fopen(json_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "proxyd_micro: cannot write %s\n", json_out);
      return 1;
    }
    std::fputs(g_json.c_str(), f);
    std::fclose(f);
  }
  return rc;
}
