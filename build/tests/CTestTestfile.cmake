# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_clc[1]_include.cmake")
include("/root/repo/build/tests/test_events[1]_include.cmake")
include("/root/repo/build/tests/test_simcl[1]_include.cmake")
include("/root/repo/build/tests/test_ipc[1]_include.cmake")
include("/root/repo/build/tests/test_proxy[1]_include.cmake")
include("/root/repo/build/tests/test_slimcr[1]_include.cmake")
include("/root/repo/build/tests/test_ksig[1]_include.cmake")
include("/root/repo/build/tests/test_checl_core[1]_include.cmake")
include("/root/repo/build/tests/test_cpr[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_minimpi[1]_include.cmake")
include("/root/repo/build/tests/test_migration[1]_include.cmake")
include("/root/repo/build/tests/test_limitations[1]_include.cmake")
