# Empty compiler generated dependencies file for test_cpr.
# This may be replaced when dependencies are built.
