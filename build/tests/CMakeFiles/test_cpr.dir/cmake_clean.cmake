file(REMOVE_RECURSE
  "CMakeFiles/test_cpr.dir/cpr_test.cpp.o"
  "CMakeFiles/test_cpr.dir/cpr_test.cpp.o.d"
  "test_cpr"
  "test_cpr.pdb"
  "test_cpr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
