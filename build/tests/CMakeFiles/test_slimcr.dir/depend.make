# Empty dependencies file for test_slimcr.
# This may be replaced when dependencies are built.
