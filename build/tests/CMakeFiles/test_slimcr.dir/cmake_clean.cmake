file(REMOVE_RECURSE
  "CMakeFiles/test_slimcr.dir/slimcr_test.cpp.o"
  "CMakeFiles/test_slimcr.dir/slimcr_test.cpp.o.d"
  "test_slimcr"
  "test_slimcr.pdb"
  "test_slimcr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slimcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
