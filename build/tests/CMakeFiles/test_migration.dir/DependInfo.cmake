
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/migration_test.cpp" "tests/CMakeFiles/test_migration.dir/migration_test.cpp.o" "gcc" "tests/CMakeFiles/test_migration.dir/migration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/checl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/benchkit/CMakeFiles/benchkit.dir/DependInfo.cmake"
  "/root/repo/build/src/binding/CMakeFiles/checl_binding.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/simcl/CMakeFiles/simcl.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/slimcr/CMakeFiles/slimcr.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/clc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
