# Empty compiler generated dependencies file for test_simcl.
# This may be replaced when dependencies are built.
