file(REMOVE_RECURSE
  "CMakeFiles/test_simcl.dir/simcl_test.cpp.o"
  "CMakeFiles/test_simcl.dir/simcl_test.cpp.o.d"
  "test_simcl"
  "test_simcl.pdb"
  "test_simcl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
