# Empty compiler generated dependencies file for test_checl_core.
# This may be replaced when dependencies are built.
