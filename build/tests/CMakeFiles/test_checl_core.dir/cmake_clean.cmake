file(REMOVE_RECURSE
  "CMakeFiles/test_checl_core.dir/checl_core_test.cpp.o"
  "CMakeFiles/test_checl_core.dir/checl_core_test.cpp.o.d"
  "test_checl_core"
  "test_checl_core.pdb"
  "test_checl_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
