# Empty dependencies file for test_ksig.
# This may be replaced when dependencies are built.
