file(REMOVE_RECURSE
  "CMakeFiles/test_ksig.dir/ksig_test.cpp.o"
  "CMakeFiles/test_ksig.dir/ksig_test.cpp.o.d"
  "test_ksig"
  "test_ksig.pdb"
  "test_ksig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ksig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
