# Empty compiler generated dependencies file for test_clc.
# This may be replaced when dependencies are built.
