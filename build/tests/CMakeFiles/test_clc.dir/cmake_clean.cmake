file(REMOVE_RECURSE
  "CMakeFiles/test_clc.dir/clc_test.cpp.o"
  "CMakeFiles/test_clc.dir/clc_test.cpp.o.d"
  "test_clc"
  "test_clc.pdb"
  "test_clc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
