file(REMOVE_RECURSE
  "CMakeFiles/test_limitations.dir/limitations_test.cpp.o"
  "CMakeFiles/test_limitations.dir/limitations_test.cpp.o.d"
  "test_limitations"
  "test_limitations.pdb"
  "test_limitations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_limitations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
