# Empty dependencies file for fig8_migration_prediction.
# This may be replaced when dependencies are built.
