file(REMOVE_RECURSE
  "CMakeFiles/fig8_migration_prediction.dir/fig8_migration_prediction.cpp.o"
  "CMakeFiles/fig8_migration_prediction.dir/fig8_migration_prediction.cpp.o.d"
  "fig8_migration_prediction"
  "fig8_migration_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_migration_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
