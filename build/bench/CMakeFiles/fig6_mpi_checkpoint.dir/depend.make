# Empty dependencies file for fig6_mpi_checkpoint.
# This may be replaced when dependencies are built.
