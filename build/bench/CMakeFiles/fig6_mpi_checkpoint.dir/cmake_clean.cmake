file(REMOVE_RECURSE
  "CMakeFiles/fig6_mpi_checkpoint.dir/fig6_mpi_checkpoint.cpp.o"
  "CMakeFiles/fig6_mpi_checkpoint.dir/fig6_mpi_checkpoint.cpp.o.d"
  "fig6_mpi_checkpoint"
  "fig6_mpi_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mpi_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
