# Empty dependencies file for fig5_checkpoint_overhead.
# This may be replaced when dependencies are built.
