# Empty dependencies file for fig7_restart_breakdown.
# This may be replaced when dependencies are built.
