file(REMOVE_RECURSE
  "CMakeFiles/proxy.dir/client.cpp.o"
  "CMakeFiles/proxy.dir/client.cpp.o.d"
  "CMakeFiles/proxy.dir/config_io.cpp.o"
  "CMakeFiles/proxy.dir/config_io.cpp.o.d"
  "CMakeFiles/proxy.dir/server.cpp.o"
  "CMakeFiles/proxy.dir/server.cpp.o.d"
  "CMakeFiles/proxy.dir/spawn.cpp.o"
  "CMakeFiles/proxy.dir/spawn.cpp.o.d"
  "libproxy.a"
  "libproxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
