file(REMOVE_RECURSE
  "libproxy.a"
)
