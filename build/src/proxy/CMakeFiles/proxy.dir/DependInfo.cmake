
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proxy/client.cpp" "src/proxy/CMakeFiles/proxy.dir/client.cpp.o" "gcc" "src/proxy/CMakeFiles/proxy.dir/client.cpp.o.d"
  "/root/repo/src/proxy/config_io.cpp" "src/proxy/CMakeFiles/proxy.dir/config_io.cpp.o" "gcc" "src/proxy/CMakeFiles/proxy.dir/config_io.cpp.o.d"
  "/root/repo/src/proxy/server.cpp" "src/proxy/CMakeFiles/proxy.dir/server.cpp.o" "gcc" "src/proxy/CMakeFiles/proxy.dir/server.cpp.o.d"
  "/root/repo/src/proxy/spawn.cpp" "src/proxy/CMakeFiles/proxy.dir/spawn.cpp.o" "gcc" "src/proxy/CMakeFiles/proxy.dir/spawn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ipc/CMakeFiles/ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/simcl/CMakeFiles/simcl.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/clc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
