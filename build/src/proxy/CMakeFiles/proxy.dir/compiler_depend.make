# Empty compiler generated dependencies file for proxy.
# This may be replaced when dependencies are built.
