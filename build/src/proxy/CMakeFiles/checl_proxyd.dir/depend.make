# Empty dependencies file for checl_proxyd.
# This may be replaced when dependencies are built.
