file(REMOVE_RECURSE
  "CMakeFiles/checl_proxyd.dir/proxyd_main.cpp.o"
  "CMakeFiles/checl_proxyd.dir/proxyd_main.cpp.o.d"
  "checl_proxyd"
  "checl_proxyd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checl_proxyd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
