file(REMOVE_RECURSE
  "CMakeFiles/ipc.dir/channel.cpp.o"
  "CMakeFiles/ipc.dir/channel.cpp.o.d"
  "libipc.a"
  "libipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
