file(REMOVE_RECURSE
  "libipc.a"
)
