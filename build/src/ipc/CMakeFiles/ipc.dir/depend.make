# Empty dependencies file for ipc.
# This may be replaced when dependencies are built.
