# Empty dependencies file for checl_core.
# This may be replaced when dependencies are built.
