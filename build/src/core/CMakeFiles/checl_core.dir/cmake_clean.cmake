file(REMOVE_RECURSE
  "CMakeFiles/checl_core.dir/cpr.cpp.o"
  "CMakeFiles/checl_core.dir/cpr.cpp.o.d"
  "CMakeFiles/checl_core.dir/ksig.cpp.o"
  "CMakeFiles/checl_core.dir/ksig.cpp.o.d"
  "CMakeFiles/checl_core.dir/migration.cpp.o"
  "CMakeFiles/checl_core.dir/migration.cpp.o.d"
  "CMakeFiles/checl_core.dir/object_db.cpp.o"
  "CMakeFiles/checl_core.dir/object_db.cpp.o.d"
  "CMakeFiles/checl_core.dir/runtime.cpp.o"
  "CMakeFiles/checl_core.dir/runtime.cpp.o.d"
  "CMakeFiles/checl_core.dir/wrapper_api.cpp.o"
  "CMakeFiles/checl_core.dir/wrapper_api.cpp.o.d"
  "libchecl_core.a"
  "libchecl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
