
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cpr.cpp" "src/core/CMakeFiles/checl_core.dir/cpr.cpp.o" "gcc" "src/core/CMakeFiles/checl_core.dir/cpr.cpp.o.d"
  "/root/repo/src/core/ksig.cpp" "src/core/CMakeFiles/checl_core.dir/ksig.cpp.o" "gcc" "src/core/CMakeFiles/checl_core.dir/ksig.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "src/core/CMakeFiles/checl_core.dir/migration.cpp.o" "gcc" "src/core/CMakeFiles/checl_core.dir/migration.cpp.o.d"
  "/root/repo/src/core/object_db.cpp" "src/core/CMakeFiles/checl_core.dir/object_db.cpp.o" "gcc" "src/core/CMakeFiles/checl_core.dir/object_db.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/checl_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/checl_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/wrapper_api.cpp" "src/core/CMakeFiles/checl_core.dir/wrapper_api.cpp.o" "gcc" "src/core/CMakeFiles/checl_core.dir/wrapper_api.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proxy/CMakeFiles/proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/slimcr/CMakeFiles/slimcr.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/clc.dir/DependInfo.cmake"
  "/root/repo/build/src/binding/CMakeFiles/checl_binding.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/simcl/CMakeFiles/simcl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
