file(REMOVE_RECURSE
  "libchecl_core.a"
)
