# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for checl_core.
