# Empty dependencies file for simcl.
# This may be replaced when dependencies are built.
