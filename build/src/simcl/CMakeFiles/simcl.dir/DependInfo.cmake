
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcl/api.cpp" "src/simcl/CMakeFiles/simcl.dir/api.cpp.o" "gcc" "src/simcl/CMakeFiles/simcl.dir/api.cpp.o.d"
  "/root/repo/src/simcl/objects.cpp" "src/simcl/CMakeFiles/simcl.dir/objects.cpp.o" "gcc" "src/simcl/CMakeFiles/simcl.dir/objects.cpp.o.d"
  "/root/repo/src/simcl/queue.cpp" "src/simcl/CMakeFiles/simcl.dir/queue.cpp.o" "gcc" "src/simcl/CMakeFiles/simcl.dir/queue.cpp.o.d"
  "/root/repo/src/simcl/runtime.cpp" "src/simcl/CMakeFiles/simcl.dir/runtime.cpp.o" "gcc" "src/simcl/CMakeFiles/simcl.dir/runtime.cpp.o.d"
  "/root/repo/src/simcl/specs.cpp" "src/simcl/CMakeFiles/simcl.dir/specs.cpp.o" "gcc" "src/simcl/CMakeFiles/simcl.dir/specs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clc/CMakeFiles/clc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
