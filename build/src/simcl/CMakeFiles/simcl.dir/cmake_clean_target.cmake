file(REMOVE_RECURSE
  "libsimcl.a"
)
