file(REMOVE_RECURSE
  "CMakeFiles/simcl.dir/api.cpp.o"
  "CMakeFiles/simcl.dir/api.cpp.o.d"
  "CMakeFiles/simcl.dir/objects.cpp.o"
  "CMakeFiles/simcl.dir/objects.cpp.o.d"
  "CMakeFiles/simcl.dir/queue.cpp.o"
  "CMakeFiles/simcl.dir/queue.cpp.o.d"
  "CMakeFiles/simcl.dir/runtime.cpp.o"
  "CMakeFiles/simcl.dir/runtime.cpp.o.d"
  "CMakeFiles/simcl.dir/specs.cpp.o"
  "CMakeFiles/simcl.dir/specs.cpp.o.d"
  "libsimcl.a"
  "libsimcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
