file(REMOVE_RECURSE
  "CMakeFiles/minimpi.dir/comm.cpp.o"
  "CMakeFiles/minimpi.dir/comm.cpp.o.d"
  "libminimpi.a"
  "libminimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
