file(REMOVE_RECURSE
  "libslimcr.a"
)
