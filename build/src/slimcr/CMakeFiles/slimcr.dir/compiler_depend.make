# Empty compiler generated dependencies file for slimcr.
# This may be replaced when dependencies are built.
