file(REMOVE_RECURSE
  "CMakeFiles/slimcr.dir/snapshot.cpp.o"
  "CMakeFiles/slimcr.dir/snapshot.cpp.o.d"
  "libslimcr.a"
  "libslimcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
