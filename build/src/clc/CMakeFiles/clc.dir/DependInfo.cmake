
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clc/builtins.cpp" "src/clc/CMakeFiles/clc.dir/builtins.cpp.o" "gcc" "src/clc/CMakeFiles/clc.dir/builtins.cpp.o.d"
  "/root/repo/src/clc/interp.cpp" "src/clc/CMakeFiles/clc.dir/interp.cpp.o" "gcc" "src/clc/CMakeFiles/clc.dir/interp.cpp.o.d"
  "/root/repo/src/clc/lexer.cpp" "src/clc/CMakeFiles/clc.dir/lexer.cpp.o" "gcc" "src/clc/CMakeFiles/clc.dir/lexer.cpp.o.d"
  "/root/repo/src/clc/parser.cpp" "src/clc/CMakeFiles/clc.dir/parser.cpp.o" "gcc" "src/clc/CMakeFiles/clc.dir/parser.cpp.o.d"
  "/root/repo/src/clc/pp.cpp" "src/clc/CMakeFiles/clc.dir/pp.cpp.o" "gcc" "src/clc/CMakeFiles/clc.dir/pp.cpp.o.d"
  "/root/repo/src/clc/program.cpp" "src/clc/CMakeFiles/clc.dir/program.cpp.o" "gcc" "src/clc/CMakeFiles/clc.dir/program.cpp.o.d"
  "/root/repo/src/clc/type.cpp" "src/clc/CMakeFiles/clc.dir/type.cpp.o" "gcc" "src/clc/CMakeFiles/clc.dir/type.cpp.o.d"
  "/root/repo/src/clc/value.cpp" "src/clc/CMakeFiles/clc.dir/value.cpp.o" "gcc" "src/clc/CMakeFiles/clc.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
