# Empty compiler generated dependencies file for clc.
# This may be replaced when dependencies are built.
