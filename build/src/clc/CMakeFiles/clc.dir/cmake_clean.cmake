file(REMOVE_RECURSE
  "CMakeFiles/clc.dir/builtins.cpp.o"
  "CMakeFiles/clc.dir/builtins.cpp.o.d"
  "CMakeFiles/clc.dir/interp.cpp.o"
  "CMakeFiles/clc.dir/interp.cpp.o.d"
  "CMakeFiles/clc.dir/lexer.cpp.o"
  "CMakeFiles/clc.dir/lexer.cpp.o.d"
  "CMakeFiles/clc.dir/parser.cpp.o"
  "CMakeFiles/clc.dir/parser.cpp.o.d"
  "CMakeFiles/clc.dir/pp.cpp.o"
  "CMakeFiles/clc.dir/pp.cpp.o.d"
  "CMakeFiles/clc.dir/program.cpp.o"
  "CMakeFiles/clc.dir/program.cpp.o.d"
  "CMakeFiles/clc.dir/type.cpp.o"
  "CMakeFiles/clc.dir/type.cpp.o.d"
  "CMakeFiles/clc.dir/value.cpp.o"
  "CMakeFiles/clc.dir/value.cpp.o.d"
  "libclc.a"
  "libclc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
