file(REMOVE_RECURSE
  "libclc.a"
)
