# Empty dependencies file for checl_binding.
# This may be replaced when dependencies are built.
