file(REMOVE_RECURSE
  "libchecl_binding.a"
)
