file(REMOVE_RECURSE
  "CMakeFiles/checl_binding.dir/cl_api.cpp.o"
  "CMakeFiles/checl_binding.dir/cl_api.cpp.o.d"
  "libchecl_binding.a"
  "libchecl_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checl_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
