
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binding/cl_api.cpp" "src/binding/CMakeFiles/checl_binding.dir/cl_api.cpp.o" "gcc" "src/binding/CMakeFiles/checl_binding.dir/cl_api.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcl/CMakeFiles/simcl.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/clc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
