file(REMOVE_RECURSE
  "CMakeFiles/workloads.dir/harness.cpp.o"
  "CMakeFiles/workloads.dir/harness.cpp.o.d"
  "CMakeFiles/workloads.dir/parboil.cpp.o"
  "CMakeFiles/workloads.dir/parboil.cpp.o.d"
  "CMakeFiles/workloads.dir/registry.cpp.o"
  "CMakeFiles/workloads.dir/registry.cpp.o.d"
  "CMakeFiles/workloads.dir/sdk_advanced.cpp.o"
  "CMakeFiles/workloads.dir/sdk_advanced.cpp.o.d"
  "CMakeFiles/workloads.dir/sdk_basic.cpp.o"
  "CMakeFiles/workloads.dir/sdk_basic.cpp.o.d"
  "CMakeFiles/workloads.dir/shoc.cpp.o"
  "CMakeFiles/workloads.dir/shoc.cpp.o.d"
  "libworkloads.a"
  "libworkloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
