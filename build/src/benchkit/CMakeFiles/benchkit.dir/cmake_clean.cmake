file(REMOVE_RECURSE
  "CMakeFiles/benchkit.dir/table.cpp.o"
  "CMakeFiles/benchkit.dir/table.cpp.o.d"
  "libbenchkit.a"
  "libbenchkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
