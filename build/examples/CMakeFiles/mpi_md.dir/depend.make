# Empty dependencies file for mpi_md.
# This may be replaced when dependencies are built.
