file(REMOVE_RECURSE
  "CMakeFiles/mpi_md.dir/mpi_md.cpp.o"
  "CMakeFiles/mpi_md.dir/mpi_md.cpp.o.d"
  "mpi_md"
  "mpi_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
