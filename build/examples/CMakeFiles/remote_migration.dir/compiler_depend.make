# Empty compiler generated dependencies file for remote_migration.
# This may be replaced when dependencies are built.
