file(REMOVE_RECURSE
  "CMakeFiles/remote_migration.dir/remote_migration.cpp.o"
  "CMakeFiles/remote_migration.dir/remote_migration.cpp.o.d"
  "remote_migration"
  "remote_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
