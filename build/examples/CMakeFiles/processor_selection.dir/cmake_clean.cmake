file(REMOVE_RECURSE
  "CMakeFiles/processor_selection.dir/processor_selection.cpp.o"
  "CMakeFiles/processor_selection.dir/processor_selection.cpp.o.d"
  "processor_selection"
  "processor_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processor_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
