# Empty dependencies file for processor_selection.
# This may be replaced when dependencies are built.
