/* cl_ext.h — this project's simulation extensions to the cl API.
 *
 * The substrate (`simcl`) keeps a discrete-event virtual clock; all times the
 * benchmarks report are read from it.  The extension must be part of the
 * dispatchable API because in CheCL mode the clock lives in the API proxy
 * process and the query has to cross the same RPC boundary as any other call.
 */
#ifndef CHECL_CL_EXT_H
#define CHECL_CL_EXT_H

#include "checl/cl.h"

#ifdef __cplusplus
extern "C" {
#endif

/* checl_proxyd typed reject errors.  Negative codes in a range cl.h leaves
 * unassigned; a multi-tenant daemon returns these instead of generic CL
 * errors so clients (and tests) can tell policy rejections from API misuse.
 */
#define CL_CHECL_FOREIGN_HANDLE -1101    /* handle owned by another client  */
#define CL_CHECL_DAEMON_FULL -1102       /* attach refused: max-clients cap */
#define CL_CHECL_MEM_CAP_EXCEEDED -1103  /* per-client device-memory cap    */
#define CL_CHECL_INFLIGHT_CAP_EXCEEDED -1104 /* per-client queued-frame cap */

/* Virtual host-timeline time in nanoseconds. */
cl_int clSimGetHostTimeNS(cl_ulong* time_ns);

/* Advance the virtual host timeline (models host-side compute between API
 * calls; transfers/kernels/file-IO are charged internally). */
cl_int clSimAdvanceHostNS(cl_ulong delta_ns);

#ifdef __cplusplus
}
#endif

#endif /* CHECL_CL_EXT_H */
