// dispatch.h — the switchable routing layer standing in for the paper's
// libOpenCL.so swap.
//
// Every `cl*` symbol in include/checl/cl.h is implemented once (src/binding)
// as a trampoline through a process-global DispatchTable.  Two tables exist:
//   * simcl::dispatch_table()  — the "native OpenCL" path (vendor substrate)
//   * checl::dispatch_table()  — the CheCL wrapper path (API proxy + CPR)
// Selecting a table is the moral equivalent of installing/renaming the CheCL
// shared object in the paper; it can be flipped per-run so one binary can
// measure both sides (Figure 4).
#pragma once

#include "checl/cl.h"

namespace checl_api {

struct DispatchTable {
  cl_int (*GetPlatformIDs)(cl_uint, cl_platform_id*, cl_uint*);
  cl_int (*GetPlatformInfo)(cl_platform_id, cl_platform_info, size_t, void*, size_t*);
  cl_int (*GetDeviceIDs)(cl_platform_id, cl_device_type, cl_uint, cl_device_id*, cl_uint*);
  cl_int (*GetDeviceInfo)(cl_device_id, cl_device_info, size_t, void*, size_t*);

  cl_context (*CreateContext)(const cl_context_properties*, cl_uint, const cl_device_id*,
                              void (*)(const char*, const void*, size_t, void*), void*, cl_int*);
  cl_int (*RetainContext)(cl_context);
  cl_int (*ReleaseContext)(cl_context);
  cl_int (*GetContextInfo)(cl_context, cl_context_info, size_t, void*, size_t*);

  cl_command_queue (*CreateCommandQueue)(cl_context, cl_device_id, cl_command_queue_properties, cl_int*);
  cl_int (*RetainCommandQueue)(cl_command_queue);
  cl_int (*ReleaseCommandQueue)(cl_command_queue);
  cl_int (*GetCommandQueueInfo)(cl_command_queue, cl_command_queue_info, size_t, void*, size_t*);
  cl_int (*Flush)(cl_command_queue);
  cl_int (*Finish)(cl_command_queue);

  cl_mem (*CreateBuffer)(cl_context, cl_mem_flags, size_t, void*, cl_int*);
  cl_mem (*CreateImage2D)(cl_context, cl_mem_flags, const cl_image_format*, size_t, size_t,
                          size_t, void*, cl_int*);
  cl_int (*RetainMemObject)(cl_mem);
  cl_int (*ReleaseMemObject)(cl_mem);
  cl_int (*GetMemObjectInfo)(cl_mem, cl_mem_info, size_t, void*, size_t*);
  cl_int (*GetImageInfo)(cl_mem, cl_image_info, size_t, void*, size_t*);

  cl_sampler (*CreateSampler)(cl_context, cl_bool, cl_addressing_mode, cl_filter_mode, cl_int*);
  cl_int (*RetainSampler)(cl_sampler);
  cl_int (*ReleaseSampler)(cl_sampler);
  cl_int (*GetSamplerInfo)(cl_sampler, cl_sampler_info, size_t, void*, size_t*);

  cl_program (*CreateProgramWithSource)(cl_context, cl_uint, const char**, const size_t*, cl_int*);
  cl_program (*CreateProgramWithBinary)(cl_context, cl_uint, const cl_device_id*, const size_t*,
                                        const unsigned char**, cl_int*, cl_int*);
  cl_int (*RetainProgram)(cl_program);
  cl_int (*ReleaseProgram)(cl_program);
  cl_int (*BuildProgram)(cl_program, cl_uint, const cl_device_id*, const char*,
                         void (*)(cl_program, void*), void*);
  cl_int (*GetProgramInfo)(cl_program, cl_program_info, size_t, void*, size_t*);
  cl_int (*GetProgramBuildInfo)(cl_program, cl_device_id, cl_program_build_info, size_t, void*, size_t*);

  cl_kernel (*CreateKernel)(cl_program, const char*, cl_int*);
  cl_int (*CreateKernelsInProgram)(cl_program, cl_uint, cl_kernel*, cl_uint*);
  cl_int (*RetainKernel)(cl_kernel);
  cl_int (*ReleaseKernel)(cl_kernel);
  cl_int (*SetKernelArg)(cl_kernel, cl_uint, size_t, const void*);
  cl_int (*GetKernelInfo)(cl_kernel, cl_kernel_info, size_t, void*, size_t*);
  cl_int (*GetKernelWorkGroupInfo)(cl_kernel, cl_device_id, cl_kernel_work_group_info, size_t, void*, size_t*);

  cl_int (*WaitForEvents)(cl_uint, const cl_event*);
  cl_int (*GetEventInfo)(cl_event, cl_event_info, size_t, void*, size_t*);
  cl_int (*RetainEvent)(cl_event);
  cl_int (*ReleaseEvent)(cl_event);
  cl_int (*GetEventProfilingInfo)(cl_event, cl_profiling_info, size_t, void*, size_t*);

  cl_int (*EnqueueReadBuffer)(cl_command_queue, cl_mem, cl_bool, size_t, size_t, void*,
                              cl_uint, const cl_event*, cl_event*);
  cl_int (*EnqueueWriteBuffer)(cl_command_queue, cl_mem, cl_bool, size_t, size_t, const void*,
                               cl_uint, const cl_event*, cl_event*);
  cl_int (*EnqueueCopyBuffer)(cl_command_queue, cl_mem, cl_mem, size_t, size_t, size_t,
                              cl_uint, const cl_event*, cl_event*);
  cl_int (*EnqueueNDRangeKernel)(cl_command_queue, cl_kernel, cl_uint, const size_t*,
                                 const size_t*, const size_t*, cl_uint, const cl_event*, cl_event*);
  cl_int (*EnqueueTask)(cl_command_queue, cl_kernel, cl_uint, const cl_event*, cl_event*);
  cl_int (*EnqueueMarker)(cl_command_queue, cl_event*);
  cl_int (*EnqueueBarrier)(cl_command_queue);
  cl_int (*EnqueueWaitForEvents)(cl_command_queue, cl_uint, const cl_event*);

  // Simulation extensions (see include/checl/cl_ext.h).
  cl_int (*SimGetHostTimeNS)(cl_ulong*);
  cl_int (*SimAdvanceHostNS)(cl_ulong);
};

// Install a table; passing nullptr restores the default (native simcl).
void set_dispatch(const DispatchTable* table) noexcept;

// Currently installed table; never nullptr after first use.
const DispatchTable& dispatch() noexcept;

}  // namespace checl_api
