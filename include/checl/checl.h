/* checl.h — the CheCL control surface for applications and tools.
 *
 * OpenCL applications need none of this: linking and running with the CheCL
 * binding active is enough (transparent checkpointing).  Schedulers, tests,
 * and the benchmark harness use this header to pick nodes, trigger
 * checkpoints, restart, and read cost breakdowns.
 */
#pragma once

#include "core/cpr.h"        // PhaseTimes, RestartBreakdown, Engine
#include "core/migration.h"  // Tm = alpha*M + Tr + beta
#include "core/node.h"       // NodeConfig, nvidia_node()/amd_node()/dual_node()
#include "core/runtime.h"    // CheclRuntime, bind_checl()/bind_native()
