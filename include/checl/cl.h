/* cl.h — vendor-neutral OpenCL 1.0-style C API used throughout this repo.
 *
 * This is this project's own header (not the Khronos one): an API-compatible
 * subset of OpenCL 1.0 large enough to run the NVIDIA-SDK/SHOC/Parboil-style
 * workload suite.  Handles are opaque struct pointers, exactly as in CL/cl.h,
 * which is what makes CheCL's handle-wrapping transparent to applications.
 */
#ifndef CHECL_CL_H
#define CHECL_CL_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* ---- scalar types ----------------------------------------------------- */
typedef int8_t   cl_char;
typedef uint8_t  cl_uchar;
typedef int16_t  cl_short;
typedef uint16_t cl_ushort;
typedef int32_t  cl_int;
typedef uint32_t cl_uint;
typedef int64_t  cl_long;
typedef uint64_t cl_ulong;
typedef float    cl_float;
typedef double   cl_double;

typedef cl_uint   cl_bool;
typedef cl_ulong  cl_bitfield;
typedef cl_bitfield cl_device_type;
typedef cl_bitfield cl_mem_flags;
typedef cl_bitfield cl_command_queue_properties;
typedef cl_uint   cl_platform_info;
typedef cl_uint   cl_device_info;
typedef cl_uint   cl_context_info;
typedef cl_uint   cl_command_queue_info;
typedef cl_uint   cl_mem_info;
typedef cl_uint   cl_image_info;
typedef cl_uint   cl_sampler_info;
typedef cl_uint   cl_program_info;
typedef cl_uint   cl_program_build_info;
typedef cl_uint   cl_build_status;
typedef cl_uint   cl_kernel_info;
typedef cl_uint   cl_kernel_work_group_info;
typedef cl_uint   cl_event_info;
typedef cl_uint   cl_profiling_info;
typedef cl_uint   cl_addressing_mode;
typedef cl_uint   cl_filter_mode;
typedef cl_uint   cl_channel_order;
typedef cl_uint   cl_channel_type;
typedef intptr_t  cl_context_properties;

/* ---- opaque handles ---------------------------------------------------- */
typedef struct _cl_platform_id*   cl_platform_id;
typedef struct _cl_device_id*     cl_device_id;
typedef struct _cl_context*       cl_context;
typedef struct _cl_command_queue* cl_command_queue;
typedef struct _cl_mem*           cl_mem;
typedef struct _cl_sampler*       cl_sampler;
typedef struct _cl_program*       cl_program;
typedef struct _cl_kernel*        cl_kernel;
typedef struct _cl_event*         cl_event;

typedef struct cl_image_format {
  cl_channel_order image_channel_order;
  cl_channel_type  image_channel_data_type;
} cl_image_format;

/* ---- error codes ------------------------------------------------------- */
#define CL_SUCCESS                              0
#define CL_DEVICE_NOT_FOUND                    -1
#define CL_DEVICE_NOT_AVAILABLE                -2
#define CL_COMPILER_NOT_AVAILABLE              -3
#define CL_MEM_OBJECT_ALLOCATION_FAILURE       -4
#define CL_OUT_OF_RESOURCES                    -5
#define CL_OUT_OF_HOST_MEMORY                  -6
#define CL_PROFILING_INFO_NOT_AVAILABLE        -7
#define CL_MEM_COPY_OVERLAP                    -8
#define CL_IMAGE_FORMAT_MISMATCH               -9
#define CL_IMAGE_FORMAT_NOT_SUPPORTED          -10
#define CL_BUILD_PROGRAM_FAILURE               -11
#define CL_MAP_FAILURE                         -12
#define CL_INVALID_VALUE                       -30
#define CL_INVALID_DEVICE_TYPE                 -31
#define CL_INVALID_PLATFORM                    -32
#define CL_INVALID_DEVICE                      -33
#define CL_INVALID_CONTEXT                     -34
#define CL_INVALID_QUEUE_PROPERTIES            -35
#define CL_INVALID_COMMAND_QUEUE               -36
#define CL_INVALID_HOST_PTR                    -37
#define CL_INVALID_MEM_OBJECT                  -38
#define CL_INVALID_IMAGE_FORMAT_DESCRIPTOR     -39
#define CL_INVALID_IMAGE_SIZE                  -40
#define CL_INVALID_SAMPLER                     -41
#define CL_INVALID_BINARY                      -42
#define CL_INVALID_BUILD_OPTIONS               -43
#define CL_INVALID_PROGRAM                     -44
#define CL_INVALID_PROGRAM_EXECUTABLE          -45
#define CL_INVALID_KERNEL_NAME                 -46
#define CL_INVALID_KERNEL_DEFINITION           -47
#define CL_INVALID_KERNEL                      -48
#define CL_INVALID_ARG_INDEX                   -49
#define CL_INVALID_ARG_VALUE                   -50
#define CL_INVALID_ARG_SIZE                    -51
#define CL_INVALID_KERNEL_ARGS                 -52
#define CL_INVALID_WORK_DIMENSION              -53
#define CL_INVALID_WORK_GROUP_SIZE             -54
#define CL_INVALID_WORK_ITEM_SIZE              -55
#define CL_INVALID_GLOBAL_OFFSET               -56
#define CL_INVALID_EVENT_WAIT_LIST             -57
#define CL_INVALID_EVENT                       -58
#define CL_INVALID_OPERATION                   -59
#define CL_INVALID_BUFFER_SIZE                 -61
#define CL_INVALID_GLOBAL_WORK_SIZE            -63

#define CL_FALSE 0
#define CL_TRUE  1

/* ---- device types ------------------------------------------------------ */
#define CL_DEVICE_TYPE_DEFAULT     (1 << 0)
#define CL_DEVICE_TYPE_CPU         (1 << 1)
#define CL_DEVICE_TYPE_GPU         (1 << 2)
#define CL_DEVICE_TYPE_ACCELERATOR (1 << 3)
#define CL_DEVICE_TYPE_ALL         0xFFFFFFFF

/* ---- platform / device info -------------------------------------------- */
#define CL_PLATFORM_PROFILE    0x0900
#define CL_PLATFORM_VERSION    0x0901
#define CL_PLATFORM_NAME       0x0902
#define CL_PLATFORM_VENDOR     0x0903
#define CL_PLATFORM_EXTENSIONS 0x0904

#define CL_DEVICE_TYPE                     0x1000
#define CL_DEVICE_VENDOR_ID                0x1001
#define CL_DEVICE_MAX_COMPUTE_UNITS        0x1002
#define CL_DEVICE_MAX_WORK_ITEM_DIMENSIONS 0x1003
#define CL_DEVICE_MAX_WORK_GROUP_SIZE      0x1004
#define CL_DEVICE_MAX_WORK_ITEM_SIZES      0x1005
#define CL_DEVICE_MAX_CLOCK_FREQUENCY      0x100C
#define CL_DEVICE_GLOBAL_MEM_SIZE          0x101F
#define CL_DEVICE_LOCAL_MEM_SIZE           0x1023
#define CL_DEVICE_MAX_MEM_ALLOC_SIZE       0x1010
#define CL_DEVICE_NAME                     0x102B
#define CL_DEVICE_VENDOR                   0x102C
#define CL_DEVICE_VERSION                  0x102F
#define CL_DEVICE_PLATFORM                 0x1031
#define CL_DEVICE_AVAILABLE                0x1027
#define CL_DEVICE_COMPILER_AVAILABLE       0x1028

/* ---- context info ------------------------------------------------------ */
#define CL_CONTEXT_REFERENCE_COUNT 0x1080
#define CL_CONTEXT_DEVICES         0x1081
#define CL_CONTEXT_PROPERTIES      0x1082
#define CL_CONTEXT_PLATFORM        0x1084

/* ---- command queue ------------------------------------------------------ */
#define CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE (1 << 0)
#define CL_QUEUE_PROFILING_ENABLE              (1 << 1)
#define CL_QUEUE_CONTEXT          0x1090
#define CL_QUEUE_DEVICE           0x1091
#define CL_QUEUE_REFERENCE_COUNT  0x1092
#define CL_QUEUE_PROPERTIES       0x1093

/* ---- memory flags -------------------------------------------------------- */
#define CL_MEM_READ_WRITE     (1 << 0)
#define CL_MEM_WRITE_ONLY     (1 << 1)
#define CL_MEM_READ_ONLY      (1 << 2)
#define CL_MEM_USE_HOST_PTR   (1 << 3)
#define CL_MEM_ALLOC_HOST_PTR (1 << 4)
#define CL_MEM_COPY_HOST_PTR  (1 << 5)

#define CL_MEM_TYPE            0x1100
#define CL_MEM_FLAGS           0x1101
#define CL_MEM_SIZE            0x1102
#define CL_MEM_HOST_PTR        0x1103
#define CL_MEM_REFERENCE_COUNT 0x1105
#define CL_MEM_CONTEXT         0x1106

#define CL_MEM_OBJECT_BUFFER  0x10F0
#define CL_MEM_OBJECT_IMAGE2D 0x10F1

#define CL_IMAGE_FORMAT       0x1110
#define CL_IMAGE_ELEMENT_SIZE 0x1111
#define CL_IMAGE_ROW_PITCH    0x1112
#define CL_IMAGE_WIDTH        0x1114
#define CL_IMAGE_HEIGHT       0x1115

/* channel orders / types (subset) */
#define CL_R    0x10B0
#define CL_RG   0x10B1
#define CL_RGBA 0x10B5
#define CL_FLOAT         0x10DE
#define CL_UNSIGNED_INT8 0x10DA
#define CL_UNSIGNED_INT32 0x10DC

/* ---- sampler ------------------------------------------------------------ */
#define CL_ADDRESS_NONE          0x1130
#define CL_ADDRESS_CLAMP_TO_EDGE 0x1131
#define CL_ADDRESS_CLAMP         0x1132
#define CL_ADDRESS_REPEAT        0x1133
#define CL_FILTER_NEAREST        0x1140
#define CL_FILTER_LINEAR         0x1141
#define CL_SAMPLER_REFERENCE_COUNT 0x1150
#define CL_SAMPLER_CONTEXT         0x1151
#define CL_SAMPLER_NORMALIZED_COORDS 0x1152
#define CL_SAMPLER_ADDRESSING_MODE 0x1153
#define CL_SAMPLER_FILTER_MODE     0x1154

/* ---- program ------------------------------------------------------------- */
#define CL_PROGRAM_REFERENCE_COUNT 0x1160
#define CL_PROGRAM_CONTEXT         0x1161
#define CL_PROGRAM_NUM_DEVICES     0x1162
#define CL_PROGRAM_DEVICES         0x1163
#define CL_PROGRAM_SOURCE          0x1164
#define CL_PROGRAM_BINARY_SIZES    0x1165
#define CL_PROGRAM_BINARIES        0x1166
#define CL_PROGRAM_BUILD_STATUS    0x1181
#define CL_PROGRAM_BUILD_OPTIONS   0x1182
#define CL_PROGRAM_BUILD_LOG       0x1183
#define CL_BUILD_SUCCESS           0
#define CL_BUILD_NONE              -1
#define CL_BUILD_ERROR             -2
#define CL_BUILD_IN_PROGRESS       -3

/* ---- kernel -------------------------------------------------------------- */
#define CL_KERNEL_FUNCTION_NAME   0x1190
#define CL_KERNEL_NUM_ARGS        0x1191
#define CL_KERNEL_REFERENCE_COUNT 0x1192
#define CL_KERNEL_CONTEXT         0x1193
#define CL_KERNEL_PROGRAM         0x1194
#define CL_KERNEL_WORK_GROUP_SIZE 0x11B0

/* ---- event ---------------------------------------------------------------- */
#define CL_EVENT_COMMAND_QUEUE            0x11D0
#define CL_EVENT_COMMAND_TYPE             0x11D1
#define CL_EVENT_REFERENCE_COUNT          0x11D2
#define CL_EVENT_COMMAND_EXECUTION_STATUS 0x11D3

#define CL_COMPLETE  0x0
#define CL_RUNNING   0x1
#define CL_SUBMITTED 0x2
#define CL_QUEUED    0x3

#define CL_COMMAND_NDRANGE_KERNEL 0x11F0
#define CL_COMMAND_TASK           0x11F1
#define CL_COMMAND_READ_BUFFER    0x11F3
#define CL_COMMAND_WRITE_BUFFER   0x11F4
#define CL_COMMAND_COPY_BUFFER    0x11F5
#define CL_COMMAND_MARKER         0x11FE

#define CL_PROFILING_COMMAND_QUEUED 0x1280
#define CL_PROFILING_COMMAND_SUBMIT 0x1281
#define CL_PROFILING_COMMAND_START  0x1282
#define CL_PROFILING_COMMAND_END    0x1283

/* ==== API functions ======================================================== */

cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id* platforms,
                        cl_uint* num_platforms);
cl_int clGetPlatformInfo(cl_platform_id platform, cl_platform_info param_name,
                         size_t param_value_size, void* param_value,
                         size_t* param_value_size_ret);

cl_int clGetDeviceIDs(cl_platform_id platform, cl_device_type device_type,
                      cl_uint num_entries, cl_device_id* devices,
                      cl_uint* num_devices);
cl_int clGetDeviceInfo(cl_device_id device, cl_device_info param_name,
                       size_t param_value_size, void* param_value,
                       size_t* param_value_size_ret);

cl_context clCreateContext(const cl_context_properties* properties,
                           cl_uint num_devices, const cl_device_id* devices,
                           void (*pfn_notify)(const char*, const void*, size_t, void*),
                           void* user_data, cl_int* errcode_ret);
cl_int clRetainContext(cl_context context);
cl_int clReleaseContext(cl_context context);
cl_int clGetContextInfo(cl_context context, cl_context_info param_name,
                        size_t param_value_size, void* param_value,
                        size_t* param_value_size_ret);

cl_command_queue clCreateCommandQueue(cl_context context, cl_device_id device,
                                      cl_command_queue_properties properties,
                                      cl_int* errcode_ret);
cl_int clRetainCommandQueue(cl_command_queue command_queue);
cl_int clReleaseCommandQueue(cl_command_queue command_queue);
cl_int clGetCommandQueueInfo(cl_command_queue command_queue,
                             cl_command_queue_info param_name,
                             size_t param_value_size, void* param_value,
                             size_t* param_value_size_ret);
cl_int clFlush(cl_command_queue command_queue);
cl_int clFinish(cl_command_queue command_queue);

cl_mem clCreateBuffer(cl_context context, cl_mem_flags flags, size_t size,
                      void* host_ptr, cl_int* errcode_ret);
cl_mem clCreateImage2D(cl_context context, cl_mem_flags flags,
                       const cl_image_format* image_format, size_t image_width,
                       size_t image_height, size_t image_row_pitch,
                       void* host_ptr, cl_int* errcode_ret);
cl_int clRetainMemObject(cl_mem memobj);
cl_int clReleaseMemObject(cl_mem memobj);
cl_int clGetMemObjectInfo(cl_mem memobj, cl_mem_info param_name,
                          size_t param_value_size, void* param_value,
                          size_t* param_value_size_ret);
cl_int clGetImageInfo(cl_mem image, cl_image_info param_name,
                      size_t param_value_size, void* param_value,
                      size_t* param_value_size_ret);

cl_sampler clCreateSampler(cl_context context, cl_bool normalized_coords,
                           cl_addressing_mode addressing_mode,
                           cl_filter_mode filter_mode, cl_int* errcode_ret);
cl_int clRetainSampler(cl_sampler sampler);
cl_int clReleaseSampler(cl_sampler sampler);
cl_int clGetSamplerInfo(cl_sampler sampler, cl_sampler_info param_name,
                        size_t param_value_size, void* param_value,
                        size_t* param_value_size_ret);

cl_program clCreateProgramWithSource(cl_context context, cl_uint count,
                                     const char** strings,
                                     const size_t* lengths,
                                     cl_int* errcode_ret);
cl_program clCreateProgramWithBinary(cl_context context, cl_uint num_devices,
                                     const cl_device_id* device_list,
                                     const size_t* lengths,
                                     const unsigned char** binaries,
                                     cl_int* binary_status,
                                     cl_int* errcode_ret);
cl_int clRetainProgram(cl_program program);
cl_int clReleaseProgram(cl_program program);
cl_int clBuildProgram(cl_program program, cl_uint num_devices,
                      const cl_device_id* device_list, const char* options,
                      void (*pfn_notify)(cl_program, void*), void* user_data);
cl_int clGetProgramInfo(cl_program program, cl_program_info param_name,
                        size_t param_value_size, void* param_value,
                        size_t* param_value_size_ret);
cl_int clGetProgramBuildInfo(cl_program program, cl_device_id device,
                             cl_program_build_info param_name,
                             size_t param_value_size, void* param_value,
                             size_t* param_value_size_ret);

cl_kernel clCreateKernel(cl_program program, const char* kernel_name,
                         cl_int* errcode_ret);
cl_int clCreateKernelsInProgram(cl_program program, cl_uint num_kernels,
                                cl_kernel* kernels, cl_uint* num_kernels_ret);
cl_int clRetainKernel(cl_kernel kernel);
cl_int clReleaseKernel(cl_kernel kernel);
cl_int clSetKernelArg(cl_kernel kernel, cl_uint arg_index, size_t arg_size,
                      const void* arg_value);
cl_int clGetKernelInfo(cl_kernel kernel, cl_kernel_info param_name,
                       size_t param_value_size, void* param_value,
                       size_t* param_value_size_ret);
cl_int clGetKernelWorkGroupInfo(cl_kernel kernel, cl_device_id device,
                                cl_kernel_work_group_info param_name,
                                size_t param_value_size, void* param_value,
                                size_t* param_value_size_ret);

cl_int clWaitForEvents(cl_uint num_events, const cl_event* event_list);
cl_int clGetEventInfo(cl_event event, cl_event_info param_name,
                      size_t param_value_size, void* param_value,
                      size_t* param_value_size_ret);
cl_int clRetainEvent(cl_event event);
cl_int clReleaseEvent(cl_event event);
cl_int clGetEventProfilingInfo(cl_event event, cl_profiling_info param_name,
                               size_t param_value_size, void* param_value,
                               size_t* param_value_size_ret);

cl_int clEnqueueReadBuffer(cl_command_queue command_queue, cl_mem buffer,
                           cl_bool blocking_read, size_t offset, size_t cb,
                           void* ptr, cl_uint num_events_in_wait_list,
                           const cl_event* event_wait_list, cl_event* event);
cl_int clEnqueueWriteBuffer(cl_command_queue command_queue, cl_mem buffer,
                            cl_bool blocking_write, size_t offset, size_t cb,
                            const void* ptr, cl_uint num_events_in_wait_list,
                            const cl_event* event_wait_list, cl_event* event);
cl_int clEnqueueCopyBuffer(cl_command_queue command_queue, cl_mem src_buffer,
                           cl_mem dst_buffer, size_t src_offset,
                           size_t dst_offset, size_t cb,
                           cl_uint num_events_in_wait_list,
                           const cl_event* event_wait_list, cl_event* event);
cl_int clEnqueueNDRangeKernel(cl_command_queue command_queue, cl_kernel kernel,
                              cl_uint work_dim, const size_t* global_work_offset,
                              const size_t* global_work_size,
                              const size_t* local_work_size,
                              cl_uint num_events_in_wait_list,
                              const cl_event* event_wait_list, cl_event* event);
cl_int clEnqueueTask(cl_command_queue command_queue, cl_kernel kernel,
                     cl_uint num_events_in_wait_list,
                     const cl_event* event_wait_list, cl_event* event);
cl_int clEnqueueMarker(cl_command_queue command_queue, cl_event* event);
cl_int clEnqueueBarrier(cl_command_queue command_queue);
cl_int clEnqueueWaitForEvents(cl_command_queue command_queue,
                              cl_uint num_events, const cl_event* event_list);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* CHECL_CL_H */
